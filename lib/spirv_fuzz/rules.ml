(** Per-type preconditions and effects for every transformation in the
    catalogue.

    Each transformation type contributes one [pre_*] function deciding
    applicability (Definition 2.4) and one [apply_*] function performing the
    effect; {!Registry} binds them together into the catalogue table and is
    the only dispatcher — this module deliberately contains no match over
    the whole {!Transformation.t} type.  A handful of CFG transformations
    (MoveBlockDown, ReplaceBranchWithKill) fold "the result still respects
    the dominance ordering rules" into the precondition by validating the
    candidate module, exactly as spirv-fuzz's IsApplicable checks do.

    Every [pre_*]/[apply_*] function handles exactly one constructor and
    treats any other transformation as inapplicable ([false] / identity);
    {!Registry} guarantees they are only ever called with their own type.
    The [apply_*] functions expect the transformation's fresh ids to have
    been claimed already ({!Registry.apply} does it). *)

open Spirv_ir
open Transformation

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                      *)

let module_of (ctx : Context.t) = ctx.Context.m

let lookup_block ctx ~fn ~block = Edit.find_block_in (module_of ctx) ~fn ~block

let all_fresh ctx t = List.for_all (Context.is_fresh ctx) (fresh_ids t)

let type_of_id ctx id = Module_ir.type_of_id (module_of ctx) id

let type_struct ctx id = Option.bind (type_of_id ctx id) (Module_ir.find_type (module_of ctx))

(* Availability of [id] as an operand at [offset] of [block] in [fn]. *)
let available ctx ~fn ~block ~offset id =
  match Module_ir.find_function (module_of ctx) fn with
  | None -> false
  | Some f ->
      let a = Analysis.make (module_of ctx) f in
      Analysis.available_at a ~block ~index:offset id

let point_offset ctx ~fn ~block point =
  match lookup_block ctx ~fn ~block with
  | None -> None
  | Some (_, b) -> (
      match resolve_point b point with
      | Some o when o >= Edit.phi_count b -> Some o
      | Some _ | None -> None)

(* Is a constant with boolean value [v]? *)
let is_bool_constant ctx id v =
  match Module_ir.find_constant (module_of ctx) id with
  | Some { Module_ir.cd_value = Constant.Bool b; _ } -> Bool.equal b v
  | Some _ | None -> false

let validates m = Validate.is_valid m

(* Find the instruction and its offset designated by a use site. *)
let resolve_use_site ctx (site : use_site) =
  match lookup_block ctx ~fn:site.us_fn ~block:site.us_block with
  | None -> None
  | Some (_, b) -> (
      match site.us_anchor with
      | Terminator ->
          let uses = Block.terminator_used_ids b.Block.terminator in
          if site.us_operand >= 0 && site.us_operand < List.length uses then
            Some (b, `Terminator)
          else None
      | Result_id r ->
          let rec go idx = function
            | [] -> None
            | (i : Instr.t) :: rest ->
                if i.Instr.result = Some r then
                  if site.us_operand >= 0 && site.us_operand < List.length (Instr.used_ids i)
                  then Some (b, `Instr (idx, i))
                  else None
                else go (idx + 1) rest
          in
          go 0 b.Block.instrs
      | Nth_instr n -> (
          match List.nth_opt b.Block.instrs n with
          | Some i when site.us_operand >= 0 && site.us_operand < List.length (Instr.used_ids i)
            ->
              Some (b, `Instr (n, i))
          | Some _ | None -> None))

(* The id currently occupying the use site's operand slot. *)
let use_site_operand ctx site =
  match resolve_use_site ctx site with
  | None -> None
  | Some (b, `Terminator) ->
      List.nth_opt (Block.terminator_used_ids b.Block.terminator) site.us_operand
  | Some (_, `Instr (_, i)) -> List.nth_opt (Instr.used_ids i) site.us_operand

(* Where availability of a replacement must be checked for a use site: at the
   instruction itself, except φ value slots, which are checked at the end of
   the corresponding predecessor block. *)
let use_site_check_position ctx site =
  match resolve_use_site ctx site with
  | None -> None
  | Some (b, `Terminator) -> Some (b.Block.label, List.length b.Block.instrs + 1)
  | Some (b, `Instr (idx, i)) -> (
      match i.Instr.op with
      | Instr.Phi incoming ->
          if site.us_operand mod 2 = 0 then
            match List.nth_opt incoming (site.us_operand / 2) with
            | Some (_, pred) -> Some (pred, max_int)
            | None -> None
          else None (* φ labels are not replaceable *)
      | _ -> Some (b.Block.label, idx))

(* Substitute the operand of a use site with [new_id]. *)
let substitute_use_site ctx site new_id =
  let m = module_of ctx in
  match resolve_use_site ctx site with
  | None -> m
  | Some (b, `Terminator) ->
      let term =
        match b.Block.terminator with
        | Block.BranchConditional (_, t, f) when site.us_operand = 0 ->
            Block.BranchConditional (new_id, t, f)
        | Block.ReturnValue _ when site.us_operand = 0 -> Block.ReturnValue new_id
        | other -> other
      in
      Edit.update_block m ~fn:site.us_fn ~block:site.us_block ~f:(fun b ->
          { b with Block.terminator = term })
  | Some (_, `Instr (idx, i)) -> (
      match Instr.substitute_nth_use ~n:site.us_operand ~new_id i with
      | Some i' -> Edit.replace_instr m ~fn:site.us_fn ~block:site.us_block ~offset:idx i'
      | None -> m)

(* Can the use-site operand be replaced at all (φ labels / call callees are
   excluded)? *)
let use_site_replaceable ctx site =
  match resolve_use_site ctx site with
  | None -> false
  | Some (_, `Terminator) -> true
  | Some (_, `Instr (_, i)) -> (
      match i.Instr.op with
      | Instr.FunctionCall _ -> site.us_operand >= 1
      | Instr.Phi _ -> site.us_operand mod 2 = 0
      | Instr.AccessChain _ ->
          (* indices may be required to be constants (struct members); only
             the base pointer slot is safely replaceable *)
          site.us_operand = 0
      | _ -> true)

(* No call path from [callee] back to [caller] (recursion guard for
   FunctionCall). *)
let call_cannot_reach m ~callee ~target =
  let rec visit seen fn_id =
    if Id.equal fn_id target then false
    else if Id.Set.mem fn_id seen then true
    else
      match Module_ir.find_function m fn_id with
      | None -> true
      | Some f ->
          let callees =
            Func.all_instrs f
            |> List.filter_map (fun (i : Instr.t) ->
                   match i.Instr.op with
                   | Instr.FunctionCall (g, _) -> Some g
                   | _ -> None)
          in
          List.for_all (visit (Id.Set.add fn_id seen)) callees
  in
  visit Id.Set.empty callee

(* Remap helper for AddFunction / InlineFunction: substitute ids through an
   association list (identity when absent). *)
let remap_id map id = match List.assoc_opt id map with Some id' -> id' | None -> id

let remap_instr map (i : Instr.t) =
  let s = remap_id map in
  let op =
    match i.Instr.op with
    | Instr.Binop (b, x, y) -> Instr.Binop (b, s x, s y)
    | Instr.Unop (u, x) -> Instr.Unop (u, s x)
    | Instr.Select (c, t, f) -> Instr.Select (s c, s t, s f)
    | Instr.CompositeConstruct xs -> Instr.CompositeConstruct (List.map s xs)
    | Instr.CompositeExtract (c, p) -> Instr.CompositeExtract (s c, p)
    | Instr.CompositeInsert (o, c, p) -> Instr.CompositeInsert (s o, s c, p)
    | Instr.Load p -> Instr.Load (s p)
    | Instr.Store (p, v) -> Instr.Store (s p, s v)
    | Instr.AccessChain (b, idxs) -> Instr.AccessChain (s b, List.map s idxs)
    | Instr.FunctionCall (f, args) -> Instr.FunctionCall (s f, List.map s args)
    | Instr.Phi inc -> Instr.Phi (List.map (fun (v, b) -> (s v, s b)) inc)
    | Instr.CopyObject x -> Instr.CopyObject (s x)
    | (Instr.Variable _ | Instr.Undef | Instr.Nop) as op -> op
  in
  {
    Instr.result = Option.map s i.Instr.result;
    Instr.ty = Option.map s i.Instr.ty;
    Instr.op;
  }

let remap_block map (b : Block.t) =
  let s = remap_id map in
  let terminator =
    match b.Block.terminator with
    | Block.Branch t -> Block.Branch (s t)
    | Block.BranchConditional (c, t, f) -> Block.BranchConditional (s c, s t, s f)
    | Block.ReturnValue v -> Block.ReturnValue (s v)
    | (Block.Return | Block.Kill | Block.Unreachable) as t -> t
  in
  { Block.label = s b.Block.label; instrs = List.map (remap_instr map) b.Block.instrs; terminator }

let has_syntactic_successor (f : Func.t) block =
  let rec go = function
    | [] | [ _ ] -> false
    | (b : Block.t) :: next :: rest ->
        Id.equal b.Block.label block || go (next :: rest)
  in
  go f.Func.blocks

(* ------------------------------------------------------------------ *)
(* Module-level effect helpers shared between a precondition (which
   validates the candidate module) and the corresponding apply           *)

let replace_branch_with_kill_m ctx ~fn ~block =
  let m = module_of ctx in
  match lookup_block ctx ~fn ~block with
  | None -> m
  | Some (f, b) ->
      let succs = Block.successors b in
      (* remove this block's φ entries from former successors *)
      let f =
        List.fold_left
          (fun f succ ->
            match Func.find_block f succ with
            | None -> f
            | Some sb ->
                let instrs =
                  List.map
                    (fun (i : Instr.t) ->
                      match i.Instr.op with
                      | Instr.Phi inc ->
                          {
                            i with
                            Instr.op =
                              Instr.Phi
                                (List.filter (fun (_, blk) -> not (Id.equal blk block)) inc);
                          }
                      | _ -> i)
                    sb.Block.instrs
                in
                Func.replace_block f { sb with Block.instrs })
          f succs
      in
      let f = Func.replace_block f { b with Block.terminator = Block.Kill } in
      Module_ir.replace_function m f

let move_block_down_m ctx ~fn ~block =
  let m = module_of ctx in
  Edit.update_function m ~fn ~f:(fun f ->
      let rec swap = function
        | (b : Block.t) :: next :: rest when Id.equal b.Block.label block ->
            next :: b :: rest
        | b :: rest -> b :: swap rest
        | [] -> []
      in
      { f with Func.blocks = swap f.Func.blocks })

(* ------------------------------------------------------------------ *)
(* Preconditions, one function per transformation type                 *)

let pre_add_type ctx = function
  | Add_type { ty; fresh = _ } -> (
      let m = module_of ctx in
      Module_ir.find_type_id m ty = None
      &&
      (* component ids must already be declared *)
      match ty with
      | Ty.Void | Ty.Bool | Ty.Int | Ty.Float -> true
      | Ty.Vector (c, n) -> Module_ir.find_type m c <> None && n >= 2 && n <= 4
      | Ty.Matrix (c, n) -> Module_ir.find_type m c <> None && n >= 2 && n <= 4
      | Ty.Struct ms -> List.for_all (fun c -> Module_ir.find_type m c <> None) ms
      | Ty.Array (c, n) -> Module_ir.find_type m c <> None && n >= 1
      | Ty.Pointer (_, p) -> Module_ir.find_type m p <> None
      | Ty.Func (r, ps) ->
          Module_ir.find_type m r <> None
          && List.for_all (fun c -> Module_ir.find_type m c <> None) ps)
  | _ -> false

let pre_add_constant ctx = function
  | Add_constant { ty; value; fresh = _ } -> (
      let m = module_of ctx in
      Module_ir.find_constant_id m ~ty ~value = None
      &&
      match (Module_ir.find_type m ty, value) with
      | Some Ty.Bool, Constant.Bool _ -> true
      | Some Ty.Int, Constant.Int _ -> true
      | Some Ty.Float, Constant.Float _ -> true
      | Some tystruct, Constant.Null -> (
          match tystruct with Ty.Void | Ty.Func _ | Ty.Pointer _ -> false | _ -> true)
      | Some _, Constant.Composite parts -> (
          match Module_ir.composite_arity m ty with
          | Some n when List.length parts = n ->
              List.for_all
                (fun (idx, part) ->
                  match (Module_ir.find_constant m part, Module_ir.component_ty m ty idx) with
                  | Some c, Some expected -> Id.equal c.Module_ir.cd_ty expected
                  | _ -> false)
                (List.mapi (fun idx p -> (idx, p)) parts)
          | Some _ | None -> false)
      | _ -> false)
  | _ -> false

let pre_add_global_variable ctx = function
  | Add_global_variable { pointee; _ } -> (
      match Module_ir.find_type (module_of ctx) pointee with
      | Some (Ty.Void | Ty.Func _ | Ty.Pointer _) | None -> false
      | Some _ -> true)
  | _ -> false

let pre_add_uniform ctx = function
  | Add_uniform { pointee; name; value; _ } -> (
      let m = module_of ctx in
      (* the name must be unused in both the module and the input, and the
         recorded value must inhabit the pointee type *)
      (not
         (List.exists
            (fun (g : Module_ir.global_decl) -> String.equal g.Module_ir.gd_name name)
            m.Module_ir.globals))
      && Input.find_uniform ctx.Context.input name = None
      &&
      match (Module_ir.find_type m pointee, value) with
      | Some Ty.Bool, Value.VBool _ -> true
      | Some Ty.Int, Value.VInt _ -> true
      | Some Ty.Float, Value.VFloat _ -> true
      | _ -> false)
  | _ -> false

let pre_add_local_variable ctx = function
  | Add_local_variable { fn; pointee; _ } -> (
      let m = module_of ctx in
      Module_ir.find_function m fn <> None
      &&
      match Module_ir.find_type m pointee with
      | Some (Ty.Void | Ty.Func _ | Ty.Pointer _) | None -> false
      | Some _ -> true)
  | _ -> false

let pre_add_nop ctx = function
  | Add_nop { fn; block; point } -> point_offset ctx ~fn ~block point <> None
  | _ -> false

let pre_split_block ctx = function
  | Split_block { fn; block; point; fresh = _ } -> (
      match lookup_block ctx ~fn ~block with
      | None -> false
      | Some (f, b) -> (
          match resolve_point b point with
          | None -> false
          | Some o ->
              (* cannot split in the φ region *)
              o >= Edit.phi_count b
              (* in the entry block, allocations must stay put *)
              && (not (Id.equal (Func.entry_block f).Block.label block)
                 || List.for_all
                      (fun (i : Instr.t) ->
                        match i.Instr.op with Instr.Variable _ -> false | _ -> true)
                      (List.filteri (fun idx _ -> idx >= o) b.Block.instrs))))
  | _ -> false

let pre_add_dead_block ctx = function
  | Add_dead_block { fn; existing; fresh = _; cond } -> (
      is_bool_constant ctx cond true
      &&
      match lookup_block ctx ~fn ~block:existing with
      | None -> false
      | Some (f, b) -> (
          match b.Block.terminator with
          | Block.Branch succ -> (
              match Func.find_block f succ with
              | Some s -> Edit.phi_count s = 0
              | None -> false)
          | _ -> false))
  | _ -> false

let pre_replace_branch_with_kill ctx = function
  | Replace_branch_with_kill { fn; block } ->
      Fact_manager.is_dead_block ctx.Context.facts block
      && (match lookup_block ctx ~fn ~block with
         | Some (_, b) -> Block.successors b <> []
         | None -> false)
      && validates (replace_branch_with_kill_m ctx ~fn ~block)
  | _ -> false

let pre_move_block_down ctx = function
  | Move_block_down { fn; block } -> (
      match Module_ir.find_function (module_of ctx) fn with
      | None -> false
      | Some f -> (
          match f.Func.blocks with
          | [] -> false
          | entry :: _ ->
              (not (Id.equal entry.Block.label block))
              && has_syntactic_successor f block
              && validates (move_block_down_m ctx ~fn ~block)))
  | _ -> false

let pre_wrap_region_in_selection ctx = function
  | Wrap_region_in_selection { fn; block; cond; branch_on_true; _ } -> (
      is_bool_constant ctx cond branch_on_true
      &&
      match lookup_block ctx ~fn ~block with
      | None -> false
      | Some (f, b) ->
          let cfg = Cfg.of_func f in
          (* after wrapping, the untaken header->merge edge means [block] no
             longer dominates its former successors, so nothing defined in
             [block] may be used outside it — not even by its own
             terminator, which moves to the merge block *)
          let defined_in_block =
            List.filter_map (fun (i : Instr.t) -> i.Instr.result) b.Block.instrs
          in
          let used_outside =
            List.exists
              (fun id ->
                List.mem id (Block.terminator_used_ids b.Block.terminator)
                || List.exists
                     (fun (b' : Block.t) ->
                       (not (Id.equal b'.Block.label block))
                       && (List.exists
                             (fun (i : Instr.t) -> List.mem id (Instr.used_ids i))
                             b'.Block.instrs
                          || List.mem id (Block.terminator_used_ids b'.Block.terminator)))
                     f.Func.blocks)
              defined_in_block
          in
          (not used_outside)
          && (not (Id.equal (Func.entry_block f).Block.label block))
          && List.length (Cfg.predecessors cfg block) = 1
          && (not (List.mem block (Cfg.predecessors cfg block)))
          && Edit.phi_count b = 0
          && List.for_all
               (fun (i : Instr.t) ->
                 match i.Instr.op with Instr.Variable _ -> false | _ -> true)
               b.Block.instrs)
  | _ -> false

let pre_invert_branch_condition ctx = function
  | Invert_branch_condition { fn; block; fresh = _ } -> (
      match lookup_block ctx ~fn ~block with
      | Some (_, b) -> (
          match b.Block.terminator with
          | Block.BranchConditional _ -> true
          | _ -> false)
      | None -> false)
  | _ -> false

let pre_propagate_instruction_up ctx = function
  | Propagate_instruction_up { fn; block; fresh_per_pred } -> (
      let m = module_of ctx in
      match lookup_block ctx ~fn ~block with
      | None -> false
      | Some (f, b) -> (
          let cfg = Cfg.of_func f in
          let preds = Cfg.predecessors cfg block in
          let n_phis = Edit.phi_count b in
          match List.nth_opt b.Block.instrs n_phis with
          | None -> false
          | Some (i : Instr.t) -> (
              let movable =
                match i.Instr.op with
                | Instr.Binop _ | Instr.Unop _ | Instr.Select _
                | Instr.CompositeConstruct _ | Instr.CompositeExtract _
                | Instr.CompositeInsert _ | Instr.CopyObject _ | Instr.Load _ ->
                    true
                | _ -> false
              in
              movable
              && Cfg.is_reachable cfg block
              && preds <> []
              && (not (List.mem block preds))
              && List.sort_uniq Id.compare (List.map fst fresh_per_pred)
                 = List.sort_uniq Id.compare preds
              && List.length fresh_per_pred = List.length preds
              &&
              (* each operand must be available at the end of every predecessor,
                 after substituting φ values for that predecessor *)
              let analysis = Analysis.make m f in
              let phi_incoming_for pred op =
                List.find_map
                  (fun (p : Instr.t) ->
                    match (p.Instr.result, p.Instr.op) with
                    | Some r, Instr.Phi inc when Id.equal r op ->
                        List.find_map
                          (fun (v, blk) -> if Id.equal blk pred then Some v else None)
                          inc
                    | _ -> None)
                  (Block.phis b)
              in
              List.for_all
                (fun pred ->
                  List.for_all
                    (fun op ->
                      let op' = Option.value ~default:op (phi_incoming_for pred op) in
                      Analysis.available_at_end analysis ~block:pred op')
                    (Instr.used_ids i))
                preds)))
  | _ -> false

let pre_permute_phi_entries ctx = function
  | Permute_phi_entries { fn; block; phi; rotation } -> (
      rotation >= 0
      &&
      match lookup_block ctx ~fn ~block with
      | None -> false
      | Some (_, b) ->
          List.exists
            (fun (i : Instr.t) ->
              i.Instr.result = Some phi
              && (match i.Instr.op with Instr.Phi inc -> List.length inc >= 2 | _ -> false))
            b.Block.instrs)
  | _ -> false

let pre_swap_commutative_operands ctx = function
  | Swap_commutative_operands { fn; block; instr } -> (
      match lookup_block ctx ~fn ~block with
      | None -> false
      | Some (_, b) ->
          List.exists
            (fun (i : Instr.t) ->
              i.Instr.result = Some instr
              &&
              match i.Instr.op with
              | Instr.Binop
                  ( ( Instr.IAdd | Instr.IMul | Instr.FAdd | Instr.FMul
                    | Instr.LogicalAnd | Instr.LogicalOr | Instr.IEqual
                    | Instr.INotEqual | Instr.FOrdEqual | Instr.FOrdNotEqual
                    | Instr.SLessThan | Instr.SLessThanEqual
                    | Instr.SGreaterThan | Instr.SGreaterThanEqual
                    | Instr.FOrdLessThan | Instr.FOrdLessThanEqual
                    | Instr.FOrdGreaterThan | Instr.FOrdGreaterThanEqual ),
                    _, _ ) ->
                  true
              | _ -> false)
            b.Block.instrs)
  | _ -> false

let pre_add_load ctx = function
  | Add_load { fn; block; point; fresh = _; pointer } -> (
      match point_offset ctx ~fn ~block point with
      | None -> false
      | Some o -> (
          available ctx ~fn ~block ~offset:o pointer
          && match type_struct ctx pointer with Some (Ty.Pointer _) -> true | _ -> false))
  | _ -> false

let pre_add_store ctx = function
  | Add_store { fn; block; point; pointer; value } -> (
      match point_offset ctx ~fn ~block point with
      | None -> false
      | Some o -> (
          let facts = ctx.Context.facts in
          (Fact_manager.is_dead_block facts block
          || Fact_manager.is_irrelevant_pointee facts pointer)
          && available ctx ~fn ~block ~offset:o pointer
          && available ctx ~fn ~block ~offset:o value
          &&
          match type_struct ctx pointer with
          | Some (Ty.Pointer ((Ty.Function | Ty.Private | Ty.Output), pointee)) ->
              type_of_id ctx value = Some pointee
          | _ -> false))
  | _ -> false

let pre_add_copy_object ctx = function
  | Add_copy_object { fn; block; point; fresh = _; operand } -> (
      match point_offset ctx ~fn ~block point with
      | None -> false
      | Some o ->
          available ctx ~fn ~block ~offset:o operand && type_of_id ctx operand <> None)
  | _ -> false

let pre_add_arithmetic_synonym ctx = function
  | Add_arithmetic_synonym { fn; block; point; fresh = _; operand; kind; identity } -> (
      match point_offset ctx ~fn ~block point with
      | None -> false
      | Some o -> (
          available ctx ~fn ~block ~offset:o operand
          &&
          let operand_is tyv = type_struct ctx operand = Some tyv in
          let identity_is value =
            match Module_ir.find_constant (module_of ctx) identity with
            | Some { Module_ir.cd_value; _ } -> Constant.equal cd_value value
            | None -> false
          in
          match kind with
          | Add_zero_int | Mul_one_int ->
              operand_is Ty.Int
              && identity_is (Constant.Int (if kind = Add_zero_int then 0l else 1l))
          | Mul_one_float -> operand_is Ty.Float && identity_is (Constant.Float 1.0)
          | Sub_zero_float -> operand_is Ty.Float && identity_is (Constant.Float 0.0)
          | Or_false -> operand_is Ty.Bool && identity_is (Constant.Bool false)
          | And_true -> operand_is Ty.Bool && identity_is (Constant.Bool true)))
  | _ -> false

let pre_add_select_synonym ctx = function
  | Add_select_synonym { fn; block; point; fresh = _; cond; operand } -> (
      match point_offset ctx ~fn ~block point with
      | None -> false
      | Some o -> (
          available ctx ~fn ~block ~offset:o cond
          && available ctx ~fn ~block ~offset:o operand
          && type_struct ctx cond = Some Ty.Bool
          &&
          match type_struct ctx operand with
          | Some (Ty.Pointer _) | None -> false
          | Some _ -> true))
  | _ -> false

let pre_replace_id_with_synonym ctx = function
  | Replace_id_with_synonym { site; synonym } -> (
      use_site_replaceable ctx site
      &&
      match (use_site_operand ctx site, use_site_check_position ctx site) with
      | Some current, Some (check_block, check_idx) ->
          Fact_manager.are_synonymous ctx.Context.facts current synonym
          && type_of_id ctx current = type_of_id ctx synonym
          && type_of_id ctx current <> None
          && available ctx ~fn:site.us_fn ~block:check_block ~offset:check_idx synonym
      | _ -> false)
  | _ -> false

let pre_replace_bool_constant_with_binary ctx = function
  | Replace_bool_constant_with_binary { site; fresh = _; operand } -> (
      use_site_replaceable ctx site
      &&
      (* the current operand must be a boolean constant, the helper operand
         an available integer, and the site not a φ (the comparison is
         inserted right before the using instruction) *)
      (match resolve_use_site ctx site with
      | Some (_, `Instr (_, i)) -> not (Instr.is_phi i)
      | Some (_, `Terminator) -> true
      | None -> false)
      &&
      match (use_site_operand ctx site, use_site_check_position ctx site) with
      | Some current, Some (check_block, check_idx) -> (
          (match Module_ir.find_constant (module_of ctx) current with
          | Some { Module_ir.cd_value = Constant.Bool _; _ } -> true
          | Some _ | None -> false)
          && available ctx ~fn:site.us_fn ~block:check_block ~offset:check_idx operand
          && type_struct ctx operand = Some Ty.Int)
      | _ -> false)
  | _ -> false

let pre_replace_irrelevant_id ctx = function
  | Replace_irrelevant_id { site; replacement } -> (
      let m = module_of ctx in
      let facts = ctx.Context.facts in
      use_site_replaceable ctx site
      &&
      (* the slot is replaceable either because the id currently used is
         irrelevant, or because the slot feeds a function parameter that is
         irrelevant (the way AddParameter's fresh parameters are exploited,
         section 3.3) *)
      let slot_feeds_irrelevant_param =
        match resolve_use_site ctx site with
        | Some (_, `Instr (_, { Instr.op = Instr.FunctionCall (callee, _); _ })) -> (
            match Module_ir.find_function m callee with
            | Some g -> (
                match List.nth_opt g.Func.params (site.us_operand - 1) with
                | Some pa -> Fact_manager.is_irrelevant facts pa.Func.param_id
                | None -> false)
            | None -> false)
        | _ -> false
      in
      match (use_site_operand ctx site, use_site_check_position ctx site) with
      | Some current, Some (check_block, check_idx) -> (
          (Fact_manager.is_irrelevant facts current || slot_feeds_irrelevant_param)
          && type_of_id ctx current = type_of_id ctx replacement
          && type_of_id ctx current <> None
          && available ctx ~fn:site.us_fn ~block:check_block ~offset:check_idx replacement
          &&
          (* do not put pointers in arbitrary slots *)
          match type_struct ctx replacement with
          | Some (Ty.Pointer _) -> false
          | Some _ -> true
          | None -> false)
      | _ -> false)
  | _ -> false

let pre_replace_constant_with_uniform ctx = function
  | Replace_constant_with_uniform { site; fresh_load = _; uniform } -> (
      use_site_replaceable ctx site
      &&
      match resolve_use_site ctx site with
      | None -> false
      | Some (_, `Instr (_, i)) when Instr.is_phi i ->
          false (* would need the load in the predecessor; keep it simple *)
      | Some _ -> (
          match use_site_operand ctx site with
          | None -> false
          | Some current -> (
              match Edit.constant_value (module_of ctx) current with
              | None -> false
              | Some cv -> (
                  match
                    List.find_opt
                      (fun (gid, _, _) -> Id.equal gid uniform)
                      (Context.known_uniforms ctx)
                  with
                  | Some (_, pointee, uv) ->
                      Value.equal cv uv
                      && type_of_id ctx current = Some pointee
                  | None -> false))))
  | _ -> false

let pre_composite_construct ctx = function
  | Composite_construct { fn; block; point; fresh = _; ty; parts } -> (
      let m = module_of ctx in
      match point_offset ctx ~fn ~block point with
      | None -> false
      | Some o -> (
          match Module_ir.composite_arity m ty with
          | Some n when List.length parts = n ->
              List.for_all
                (fun (idx, part) ->
                  available ctx ~fn ~block ~offset:o part
                  && type_of_id ctx part = Module_ir.component_ty m ty idx)
                (List.mapi (fun idx p -> (idx, p)) parts)
          | Some _ | None -> false))
  | _ -> false

let pre_composite_extract ctx = function
  | Composite_extract { fn; block; point; fresh = _; composite; path } -> (
      match point_offset ctx ~fn ~block point with
      | None -> false
      | Some o -> (
          path <> []
          && available ctx ~fn ~block ~offset:o composite
          &&
          match type_of_id ctx composite with
          | Some cty -> Module_ir.ty_at_path (module_of ctx) cty path <> None
          | None -> false))
  | _ -> false

let pre_set_function_control ctx = function
  | Set_function_control { fn; control } -> (
      match Module_ir.find_function (module_of ctx) fn with
      | Some f -> not (Func.equal_control f.Func.control control)
      | None -> false)
  | _ -> false

let pre_function_call ctx = function
  | Function_call { fn; block; point; fresh = _; callee; args } -> (
      let m = module_of ctx in
      match point_offset ctx ~fn ~block point with
      | None -> false
      | Some o -> (
          match Module_ir.find_function m callee with
          | None -> false
          | Some g -> (
              (not (Id.equal fn callee))
              && call_cannot_reach m ~callee ~target:fn
              &&
              match Module_ir.find_type m g.Func.fn_ty with
              | Some (Ty.Func (ret, param_tys)) -> (
                  (match Module_ir.find_type m ret with
                  | Some Ty.Void -> false (* keep calls value-producing *)
                  | Some _ -> true
                  | None -> false)
                  && List.length args = List.length param_tys
                  && List.for_all2
                       (fun arg pty ->
                         available ctx ~fn ~block ~offset:o arg
                         && type_of_id ctx arg = Some pty)
                       args param_tys
                  &&
                  (* live-safe callees may be called from anywhere provided
                     pointer arguments are irrelevant; any callee may be
                     called from a dead block *)
                  let pointer_args_irrelevant =
                    List.for_all
                      (fun arg ->
                        match type_struct ctx arg with
                        | Some (Ty.Pointer _) ->
                            Fact_manager.is_irrelevant_pointee ctx.Context.facts arg
                        | Some _ -> true
                        | None -> false)
                      args
                  in
                  (Fact_manager.is_live_safe ctx.Context.facts callee
                   && pointer_args_irrelevant)
                  || Fact_manager.is_dead_block ctx.Context.facts block)
              | Some _ | None -> false)))
  | _ -> false

let pre_add_parameter ctx = function
  | Add_parameter { fn; fresh_param = _; fresh_fn_ty = _; default } -> (
      let m = module_of ctx in
      match Module_ir.find_function m fn with
      | None -> false
      | Some _ ->
          (not (Id.equal fn m.Module_ir.entry))
          && Module_ir.find_constant m default <> None)
  | _ -> false

let pre_add_function ctx = function
  | Add_function p ->
      let m = module_of ctx in
      (* the donor must be self-contained and manifestly safe: no calls, no
         kills, no stores outside its own locals *)
      let f = p.af_function in
      let structurally_safe =
        List.for_all
          (fun (b : Block.t) ->
            (match b.Block.terminator with Block.Kill -> false | _ -> true)
            && List.for_all
                 (fun (i : Instr.t) ->
                   match i.Instr.op with
                   | Instr.FunctionCall _ -> false
                   | Instr.Store (ptr, _) ->
                       (* the pointer must be a local of this function (its
                          definition appears among the donor's instructions) *)
                       List.exists
                         (fun (j : Instr.t) -> j.Instr.result = Some ptr)
                         (Func.all_instrs f)
                       || List.exists
                            (fun (j : Instr.t) ->
                              match j.Instr.op with
                              | Instr.AccessChain _ -> j.Instr.result = Some ptr
                              | _ -> false)
                            (Func.all_instrs f)
                   | _ -> true)
                 b.Block.instrs)
          f.Func.blocks
      in
      structurally_safe && f.Func.blocks <> [] && Module_ir.find_function m f.Func.id = None
  | _ -> false

let pre_inline_function ctx = function
  | Inline_function { fn; block; call_id; id_map } -> (
      let m = module_of ctx in
      match lookup_block ctx ~fn ~block with
      | None -> false
      | Some (_, b) -> (
          let call_instr =
            List.find_opt (fun (i : Instr.t) -> i.Instr.result = Some call_id) b.Block.instrs
          in
          match call_instr with
          | Some { Instr.op = Instr.FunctionCall (callee, _args); _ } -> (
              match Module_ir.find_function m callee with
              | None -> false
              | Some g -> (
                  (not (Func.equal_control g.Func.control Func.DontInline))
                  &&
                  match g.Func.blocks with
                  | [ body ] -> (
                      match body.Block.terminator with
                      | Block.ReturnValue _ ->
                          (* no allocations, no φs in a single-block callee *)
                          List.for_all
                            (fun (i : Instr.t) ->
                              match i.Instr.op with
                              | Instr.Variable _ | Instr.Phi _ -> false
                              | _ -> true)
                            body.Block.instrs
                          && (* the id map must cover exactly the callee's results *)
                          (let result_ids =
                             List.filter_map
                               (fun (i : Instr.t) -> i.Instr.result)
                               body.Block.instrs
                           in
                           List.sort_uniq Id.compare (List.map fst id_map)
                           = List.sort_uniq Id.compare result_ids)
                      | _ -> false)
                  | _ -> false))
          | Some _ | None -> false))
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Effects, one function per transformation type                       *)

let apply_add_type ctx = function
  | Add_type { fresh; ty } ->
      let m = module_of ctx in
      {
        ctx with
        Context.m =
          { m with Module_ir.types = m.Module_ir.types @ [ { Module_ir.td_id = fresh; td_ty = ty } ] };
      }
  | _ -> ctx

let apply_add_constant ctx = function
  | Add_constant { fresh; ty; value } ->
      let m = module_of ctx in
      {
        ctx with
        Context.m =
          {
            m with
            Module_ir.constants =
              m.Module_ir.constants @ [ { Module_ir.cd_id = fresh; cd_ty = ty; cd_value = value } ];
          };
      }
  | _ -> ctx

let apply_add_global_variable ctx = function
  | Add_global_variable { fresh; fresh_ptr_ty; pointee } ->
      let m = module_of ctx in
      let m, ptr_ty = Edit.intern_type_with m ~fresh:fresh_ptr_ty (Ty.Pointer (Ty.Private, pointee)) in
      let m =
        {
          m with
          Module_ir.globals =
            m.Module_ir.globals
            @ [ { Module_ir.gd_id = fresh; gd_ty = ptr_ty;
                  gd_name = Printf.sprintf "_g%d" fresh; gd_init = None } ];
        }
      in
      {
        ctx with
        Context.m = m;
        Context.facts = Fact_manager.add_irrelevant_pointee ctx.Context.facts fresh;
      }
  | _ -> ctx

let apply_add_uniform ctx = function
  | Add_uniform { fresh; fresh_ptr_ty; pointee; name; value } ->
      let m = module_of ctx in
      let m, ptr_ty = Edit.intern_type_with m ~fresh:fresh_ptr_ty (Ty.Pointer (Ty.Uniform, pointee)) in
      let m =
        {
          m with
          Module_ir.globals =
            m.Module_ir.globals
            @ [ { Module_ir.gd_id = fresh; gd_ty = ptr_ty; gd_name = name; gd_init = None } ];
        }
      in
      let input =
        {
          ctx.Context.input with
          Input.uniforms = ctx.Context.input.Input.uniforms @ [ (name, value) ];
        }
      in
      { ctx with Context.m = m; Context.input = input }
  | _ -> ctx

let apply_add_local_variable ctx = function
  | Add_local_variable { fresh; fresh_ptr_ty; fn; pointee } ->
      let m = module_of ctx in
      let m, ptr_ty = Edit.intern_type_with m ~fresh:fresh_ptr_ty (Ty.Pointer (Ty.Function, pointee)) in
      let m =
        Edit.update_function m ~fn ~f:(fun f ->
            match f.Func.blocks with
            | [] -> f
            | entry :: rest ->
                let var = Instr.make ~result:fresh ~ty:ptr_ty (Instr.Variable Ty.Function) in
                { f with Func.blocks = { entry with Block.instrs = var :: entry.Block.instrs } :: rest })
      in
      {
        ctx with
        Context.m = m;
        Context.facts = Fact_manager.add_irrelevant_pointee ctx.Context.facts fresh;
      }
  | _ -> ctx

let apply_add_nop ctx = function
  | Add_nop { fn; block; point } -> (
      match point_offset ctx ~fn ~block point with
      | None -> ctx
      | Some o ->
          Context.with_module ctx
            (Edit.insert_instr (module_of ctx) ~fn ~block ~offset:o (Instr.make_void Instr.Nop)))
  | _ -> ctx

let apply_split_block ctx = function
  | Split_block { fn; block; point; fresh } -> (
      let m = module_of ctx in
      let facts = ctx.Context.facts in
      match lookup_block ctx ~fn ~block with
      | None -> ctx
      | Some (f, b) -> (
          match resolve_point b point with
          | None -> ctx
          | Some o ->
              let before = List.filteri (fun i _ -> i < o) b.Block.instrs in
              let after = List.filteri (fun i _ -> i >= o) b.Block.instrs in
              let new_block =
                { Block.label = fresh; instrs = after; terminator = b.Block.terminator }
              in
              let f =
                Func.replace_block f
                  { b with Block.instrs = before; terminator = Block.Branch fresh }
              in
              let f = Func.insert_block_after f ~after:block new_block in
              (* successors' φ entries must now name the new block *)
              let f =
                List.fold_left
                  (fun f succ ->
                    match Func.find_block f succ with
                    | None -> f
                    | Some sb ->
                        let instrs =
                          List.map
                            (fun (i : Instr.t) ->
                              match i.Instr.op with
                              | Instr.Phi inc ->
                                  {
                                    i with
                                    Instr.op =
                                      Instr.Phi
                                        (List.map
                                           (fun (v, blk) ->
                                             if Id.equal blk block then (v, fresh) else (v, blk))
                                           inc);
                                  }
                              | _ -> i)
                            sb.Block.instrs
                        in
                        Func.replace_block f { sb with Block.instrs })
                  f
                  (Block.successors new_block)
              in
              let facts =
                if Fact_manager.is_dead_block facts block then
                  Fact_manager.add_dead_block facts fresh
                else facts
              in
              { ctx with Context.m = Module_ir.replace_function m f; Context.facts = facts }))
  | _ -> ctx

let apply_add_dead_block ctx = function
  | Add_dead_block { fn; existing; fresh; cond } -> (
      let m = module_of ctx in
      match lookup_block ctx ~fn ~block:existing with
      | None -> ctx
      | Some (f, b) -> (
          match b.Block.terminator with
          | Block.Branch succ ->
              let dead = { Block.label = fresh; instrs = []; terminator = Block.Branch succ } in
              let f =
                Func.replace_block f
                  { b with Block.terminator = Block.BranchConditional (cond, succ, fresh) }
              in
              let f = Func.insert_block_after f ~after:existing dead in
              {
                ctx with
                Context.m = Module_ir.replace_function m f;
                Context.facts = Fact_manager.add_dead_block ctx.Context.facts fresh;
              }
          | _ -> ctx))
  | _ -> ctx

let apply_replace_branch_with_kill ctx = function
  | Replace_branch_with_kill { fn; block } ->
      Context.with_module ctx (replace_branch_with_kill_m ctx ~fn ~block)
  | _ -> ctx

let apply_move_block_down ctx = function
  | Move_block_down { fn; block } ->
      Context.with_module ctx (move_block_down_m ctx ~fn ~block)
  | _ -> ctx

let apply_wrap_region_in_selection ctx = function
  | Wrap_region_in_selection { fn; block; fresh_header; fresh_merge; cond; branch_on_true } -> (
      let m = module_of ctx in
      match lookup_block ctx ~fn ~block with
      | None -> ctx
      | Some (f, b) ->
          let header_term =
            if branch_on_true then Block.BranchConditional (cond, block, fresh_merge)
            else Block.BranchConditional (cond, fresh_merge, block)
          in
          let header = { Block.label = fresh_header; instrs = []; terminator = header_term } in
          let merge =
            { Block.label = fresh_merge; instrs = []; terminator = b.Block.terminator }
          in
          let b' = { b with Block.terminator = Block.Branch fresh_merge } in
          (* redirect all edges into [block] to the header *)
          let f =
            {
              f with
              Func.blocks =
                List.map
                  (fun (blk : Block.t) ->
                    if Id.equal blk.Block.label block then blk
                    else Block.redirect_target ~old_target:block ~new_target:fresh_header blk)
                  f.Func.blocks;
            }
          in
          (* install header before [block], merge right after *)
          let f = Func.replace_block f b' in
          let f =
            {
              f with
              Func.blocks =
                List.concat_map
                  (fun (blk : Block.t) ->
                    if Id.equal blk.Block.label block then [ header; blk ] else [ blk ])
                  f.Func.blocks;
            }
          in
          let f = Func.insert_block_after f ~after:block merge in
          (* φs in the original successors must now name the merge block *)
          let f =
            List.fold_left
              (fun f succ ->
                match Func.find_block f succ with
                | None -> f
                | Some sb ->
                    let instrs =
                      List.map
                        (fun (i : Instr.t) ->
                          match i.Instr.op with
                          | Instr.Phi inc ->
                              {
                                i with
                                Instr.op =
                                  Instr.Phi
                                    (List.map
                                       (fun (v, blk) ->
                                         if Id.equal blk block then (v, fresh_merge) else (v, blk))
                                       inc);
                              }
                          | _ -> i)
                        sb.Block.instrs
                    in
                    Func.replace_block f { sb with Block.instrs })
              f (Block.successors merge)
          in
          Context.with_module ctx (Module_ir.replace_function m f))
  | _ -> ctx

let apply_invert_branch_condition ctx = function
  | Invert_branch_condition { fn; block; fresh } -> (
      let m = module_of ctx in
      match lookup_block ctx ~fn ~block with
      | None -> ctx
      | Some (f, b) -> (
          match b.Block.terminator with
          | Block.BranchConditional (c, tt, ff) ->
              let bool_ty =
                match Module_ir.type_of_id m c with Some t -> t | None -> 0
              in
              let neg = Instr.make ~result:fresh ~ty:bool_ty (Instr.Unop (Instr.LogicalNot, c)) in
              let b =
                {
                  b with
                  Block.instrs = b.Block.instrs @ [ neg ];
                  Block.terminator = Block.BranchConditional (fresh, ff, tt);
                }
              in
              Context.with_module ctx (Module_ir.replace_function m (Func.replace_block f b))
          | _ -> ctx))
  | _ -> ctx

let apply_propagate_instruction_up ctx = function
  | Propagate_instruction_up { fn; block; fresh_per_pred } -> (
      let m = module_of ctx in
      match lookup_block ctx ~fn ~block with
      | None -> ctx
      | Some (f, b) -> (
          let n_phis = Edit.phi_count b in
          match List.nth_opt b.Block.instrs n_phis with
          | None -> ctx
          | Some (i : Instr.t) ->
              let phi_incoming_for pred op =
                List.find_map
                  (fun (p : Instr.t) ->
                    match (p.Instr.result, p.Instr.op) with
                    | Some r, Instr.Phi inc when Id.equal r op ->
                        List.find_map
                          (fun (v, blk) -> if Id.equal blk pred then Some v else None)
                          inc
                    | _ -> None)
                  (Block.phis b)
              in
              (* copy [i] (with φ substitution) at the end of each pred *)
              let f =
                List.fold_left
                  (fun f (pred, fresh) ->
                    match Func.find_block f pred with
                    | None -> f
                    | Some pb ->
                        let subst =
                          List.filter_map
                            (fun op ->
                              match phi_incoming_for pred op with
                              | Some v -> Some (op, v)
                              | None -> None)
                            (Instr.used_ids i)
                        in
                        let copied = remap_instr subst { i with Instr.result = i.Instr.result } in
                        let copied = { copied with Instr.result = Some fresh } in
                        Func.replace_block f
                          { pb with Block.instrs = pb.Block.instrs @ [ copied ] })
                  f fresh_per_pred
              in
              (* replace [i] with a φ over the copies *)
              let phi =
                {
                  i with
                  Instr.op = Instr.Phi (List.map (fun (pred, fresh) -> (fresh, pred)) fresh_per_pred);
                }
              in
              let f =
                Edit.update_block_in_function f ~block ~f:(fun b ->
                    {
                      b with
                      Block.instrs =
                        List.mapi (fun idx x -> if idx = n_phis then phi else x) b.Block.instrs;
                    })
              in
              Context.with_module ctx (Module_ir.replace_function m f)))
  | _ -> ctx

let apply_swap_commutative_operands ctx = function
  | Swap_commutative_operands { fn; block; instr } ->
      Context.with_module ctx
        (Edit.update_block (module_of ctx) ~fn ~block ~f:(fun b ->
             {
               b with
               Block.instrs =
                 List.map
                   (fun (i : Instr.t) ->
                     if i.Instr.result <> Some instr then i
                     else
                       let mirror op x y =
                         { i with Instr.op = Instr.Binop (op, y, x) }
                       in
                       match i.Instr.op with
                       | Instr.Binop
                           ( ( Instr.IAdd | Instr.IMul | Instr.FAdd | Instr.FMul
                             | Instr.LogicalAnd | Instr.LogicalOr | Instr.IEqual
                             | Instr.INotEqual | Instr.FOrdEqual | Instr.FOrdNotEqual )
                             as op, x, y ) ->
                           mirror op x y
                       | Instr.Binop (Instr.SLessThan, x, y) ->
                           mirror Instr.SGreaterThan x y
                       | Instr.Binop (Instr.SLessThanEqual, x, y) ->
                           mirror Instr.SGreaterThanEqual x y
                       | Instr.Binop (Instr.SGreaterThan, x, y) ->
                           mirror Instr.SLessThan x y
                       | Instr.Binop (Instr.SGreaterThanEqual, x, y) ->
                           mirror Instr.SLessThanEqual x y
                       | Instr.Binop (Instr.FOrdLessThan, x, y) ->
                           mirror Instr.FOrdGreaterThan x y
                       | Instr.Binop (Instr.FOrdLessThanEqual, x, y) ->
                           mirror Instr.FOrdGreaterThanEqual x y
                       | Instr.Binop (Instr.FOrdGreaterThan, x, y) ->
                           mirror Instr.FOrdLessThan x y
                       | Instr.Binop (Instr.FOrdGreaterThanEqual, x, y) ->
                           mirror Instr.FOrdLessThanEqual x y
                       | _ -> i)
                   b.Block.instrs;
             }))
  | _ -> ctx

let apply_permute_phi_entries ctx = function
  | Permute_phi_entries { fn; block; phi; rotation } ->
      let rotate n xs =
        let len = List.length xs in
        if len = 0 then xs
        else
          let k = n mod len in
          List.filteri (fun i _ -> i >= k) xs @ List.filteri (fun i _ -> i < k) xs
      in
      Context.with_module ctx
        (Edit.update_block (module_of ctx) ~fn ~block ~f:(fun b ->
             {
               b with
               Block.instrs =
                 List.map
                   (fun (i : Instr.t) ->
                     if i.Instr.result = Some phi then
                       match i.Instr.op with
                       | Instr.Phi inc -> { i with Instr.op = Instr.Phi (rotate rotation inc) }
                       | _ -> i
                     else i)
                   b.Block.instrs;
             }))
  | _ -> ctx

let apply_add_load ctx = function
  | Add_load { fn; block; point; fresh; pointer } -> (
      match point_offset ctx ~fn ~block point with
      | None -> ctx
      | Some o ->
          let pointee =
            match type_struct ctx pointer with
            | Some (Ty.Pointer (_, p)) -> p
            | _ -> 0
          in
          Context.with_module ctx
            (Edit.insert_instr (module_of ctx) ~fn ~block ~offset:o
               (Instr.make ~result:fresh ~ty:pointee (Instr.Load pointer))))
  | _ -> ctx

let apply_add_store ctx = function
  | Add_store { fn; block; point; pointer; value } -> (
      match point_offset ctx ~fn ~block point with
      | None -> ctx
      | Some o ->
          Context.with_module ctx
            (Edit.insert_instr (module_of ctx) ~fn ~block ~offset:o
               (Instr.make_void (Instr.Store (pointer, value)))))
  | _ -> ctx

let apply_add_copy_object ctx = function
  | Add_copy_object { fn; block; point; fresh; operand } -> (
      match point_offset ctx ~fn ~block point with
      | None -> ctx
      | Some o ->
          let ty = Option.value ~default:0 (type_of_id ctx operand) in
          let m =
            Edit.insert_instr (module_of ctx) ~fn ~block ~offset:o
              (Instr.make ~result:fresh ~ty (Instr.CopyObject operand))
          in
          {
            ctx with
            Context.m = m;
            Context.facts = Fact_manager.add_id_synonym ctx.Context.facts fresh operand;
          })
  | _ -> ctx

let apply_add_arithmetic_synonym ctx = function
  | Add_arithmetic_synonym { fn; block; point; fresh; operand; kind; identity } -> (
      match point_offset ctx ~fn ~block point with
      | None -> ctx
      | Some o ->
          let ty = Option.value ~default:0 (type_of_id ctx operand) in
          let op =
            match kind with
            | Add_zero_int -> Instr.Binop (Instr.IAdd, operand, identity)
            | Mul_one_int -> Instr.Binop (Instr.IMul, operand, identity)
            | Mul_one_float -> Instr.Binop (Instr.FMul, operand, identity)
            | Sub_zero_float -> Instr.Binop (Instr.FSub, operand, identity)
            | Or_false -> Instr.Binop (Instr.LogicalOr, operand, identity)
            | And_true -> Instr.Binop (Instr.LogicalAnd, operand, identity)
          in
          let m =
            Edit.insert_instr (module_of ctx) ~fn ~block ~offset:o (Instr.make ~result:fresh ~ty op)
          in
          {
            ctx with
            Context.m = m;
            Context.facts = Fact_manager.add_id_synonym ctx.Context.facts fresh operand;
          })
  | _ -> ctx

let apply_add_select_synonym ctx = function
  | Add_select_synonym { fn; block; point; fresh; cond; operand } -> (
      match point_offset ctx ~fn ~block point with
      | None -> ctx
      | Some o ->
          let ty = Option.value ~default:0 (type_of_id ctx operand) in
          let m =
            Edit.insert_instr (module_of ctx) ~fn ~block ~offset:o
              (Instr.make ~result:fresh ~ty (Instr.Select (cond, operand, operand)))
          in
          {
            ctx with
            Context.m = m;
            Context.facts = Fact_manager.add_id_synonym ctx.Context.facts fresh operand;
          })
  | _ -> ctx

let apply_replace_id_with_synonym ctx = function
  | Replace_id_with_synonym { site; synonym } ->
      Context.with_module ctx (substitute_use_site ctx site synonym)
  | _ -> ctx

let apply_replace_bool_constant_with_binary ctx = function
  | Replace_bool_constant_with_binary { site; fresh; operand } -> (
      let m = module_of ctx in
      match resolve_use_site ctx site with
      | None -> ctx
      | Some (b, where) ->
          let value =
            match use_site_operand ctx site with
            | Some current -> (
                match Module_ir.find_constant m current with
                | Some { Module_ir.cd_value = Constant.Bool v; _ } -> v
                | Some _ | None -> true)
            | None -> true
          in
          let bool_ty =
            match Module_ir.find_type_id m Ty.Bool with Some t -> t | None -> 0
          in
          let cmp_op = if value then Instr.IEqual else Instr.INotEqual in
          let cmp =
            Instr.make ~result:fresh ~ty:bool_ty (Instr.Binop (cmp_op, operand, operand))
          in
          let insert_offset =
            match where with
            | `Terminator -> List.length b.Block.instrs
            | `Instr (idx, _) -> idx
          in
          let m =
            Edit.insert_instr m ~fn:site.us_fn ~block:site.us_block ~offset:insert_offset cmp
          in
          let site' =
            match site.us_anchor with
            | Nth_instr n -> { site with us_anchor = Nth_instr (n + 1) }
            | Result_id _ | Terminator -> site
          in
          let ctx = Context.with_module ctx m in
          Context.with_module ctx (substitute_use_site ctx site' fresh))
  | _ -> ctx

let apply_replace_irrelevant_id ctx = function
  | Replace_irrelevant_id { site; replacement } ->
      Context.with_module ctx (substitute_use_site ctx site replacement)
  | _ -> ctx

let apply_replace_constant_with_uniform ctx = function
  | Replace_constant_with_uniform { site; fresh_load; uniform } -> (
      match resolve_use_site ctx site with
      | None -> ctx
      | Some (b, where) ->
          let pointee =
            match type_struct ctx uniform with
            | Some (Ty.Pointer (_, p)) -> p
            | _ -> 0
          in
          let load = Instr.make ~result:fresh_load ~ty:pointee (Instr.Load uniform) in
          let insert_offset =
            match where with
            | `Terminator -> List.length b.Block.instrs
            | `Instr (idx, _) -> idx
          in
          let m =
            Edit.insert_instr (module_of ctx) ~fn:site.us_fn ~block:site.us_block
              ~offset:insert_offset load
          in
          (* re-resolve in the updated module; Nth_instr anchors shifted *)
          let site' =
            match site.us_anchor with
            | Nth_instr n -> { site with us_anchor = Nth_instr (n + 1) }
            | Result_id _ | Terminator -> site
          in
          let ctx = Context.with_module ctx m in
          Context.with_module ctx (substitute_use_site ctx site' fresh_load))
  | _ -> ctx

let apply_composite_construct ctx = function
  | Composite_construct { fn; block; point; fresh; ty; parts } -> (
      match point_offset ctx ~fn ~block point with
      | None -> ctx
      | Some o ->
          let m =
            Edit.insert_instr (module_of ctx) ~fn ~block ~offset:o
              (Instr.make ~result:fresh ~ty (Instr.CompositeConstruct parts))
          in
          let facts =
            List.fold_left
              (fun facts (idx, part) ->
                Fact_manager.add_synonym facts (fresh, [ idx ]) (part, []))
              ctx.Context.facts
              (List.mapi (fun idx p -> (idx, p)) parts)
          in
          { ctx with Context.m = m; Context.facts = facts })
  | _ -> ctx

let apply_composite_extract ctx = function
  | Composite_extract { fn; block; point; fresh; composite; path } -> (
      let m = module_of ctx in
      match point_offset ctx ~fn ~block point with
      | None -> ctx
      | Some o ->
          let result_ty =
            match type_of_id ctx composite with
            | Some cty -> Option.value ~default:0 (Module_ir.ty_at_path m cty path)
            | None -> 0
          in
          let m =
            Edit.insert_instr m ~fn ~block ~offset:o
              (Instr.make ~result:fresh ~ty:result_ty (Instr.CompositeExtract (composite, path)))
          in
          let facts = Fact_manager.add_synonym ctx.Context.facts (fresh, []) (composite, path) in
          (* bridge to whole-object synonyms where the component is known *)
          let facts =
            List.fold_left
              (fun facts other -> Fact_manager.add_id_synonym facts fresh other)
              facts
              (Fact_manager.component_synonyms facts ~composite ~path)
          in
          { ctx with Context.m = m; Context.facts = facts })
  | _ -> ctx

let apply_set_function_control ctx = function
  | Set_function_control { fn; control } ->
      Context.with_module ctx
        (Edit.update_function (module_of ctx) ~fn ~f:(fun f -> { f with Func.control }))
  | _ -> ctx

let apply_function_call ctx = function
  | Function_call { fn; block; point; fresh; callee; args } -> (
      let m = module_of ctx in
      match point_offset ctx ~fn ~block point with
      | None -> ctx
      | Some o ->
          let ret_ty =
            match Module_ir.find_function m callee with
            | Some g -> (
                match Module_ir.find_type m g.Func.fn_ty with
                | Some (Ty.Func (ret, _)) -> ret
                | Some _ | None -> 0)
            | None -> 0
          in
          Context.with_module ctx
            (Edit.insert_instr m ~fn ~block ~offset:o
               (Instr.make ~result:fresh ~ty:ret_ty (Instr.FunctionCall (callee, args)))))
  | _ -> ctx

let apply_add_parameter ctx = function
  | Add_parameter { fn; fresh_param; fresh_fn_ty; default } -> (
      let m = module_of ctx in
      match Module_ir.find_function m fn with
      | None -> ctx
      | Some f -> (
          let param_ty =
            match Module_ir.find_constant m default with
            | Some c -> c.Module_ir.cd_ty
            | None -> 0
          in
          match Module_ir.find_type m f.Func.fn_ty with
          | Some (Ty.Func (ret, param_tys)) ->
              let m, new_fn_ty =
                Edit.intern_type_with m ~fresh:fresh_fn_ty
                  (Ty.Func (ret, param_tys @ [ param_ty ]))
              in
              let f =
                {
                  f with
                  Func.fn_ty = new_fn_ty;
                  Func.params =
                    f.Func.params @ [ { Func.param_id = fresh_param; Func.param_ty = param_ty } ];
                }
              in
              let m = Module_ir.replace_function m f in
              (* extend every call site with the default constant *)
              let extend_calls (g : Func.t) =
                {
                  g with
                  Func.blocks =
                    List.map
                      (fun (b : Block.t) ->
                        {
                          b with
                          Block.instrs =
                            List.map
                              (fun (i : Instr.t) ->
                                match i.Instr.op with
                                | Instr.FunctionCall (callee, args) when Id.equal callee fn ->
                                    { i with Instr.op = Instr.FunctionCall (callee, args @ [ default ]) }
                                | _ -> i)
                              b.Block.instrs;
                        })
                      g.Func.blocks;
                }
              in
              let m = { m with Module_ir.functions = List.map extend_calls m.Module_ir.functions } in
              {
                ctx with
                Context.m = m;
                Context.facts = Fact_manager.add_irrelevant ctx.Context.facts fresh_param;
              }
          | Some _ | None -> ctx))
  | _ -> ctx

let apply_add_function ctx = function
  | Add_function p ->
      let m = module_of ctx in
      (* intern donated types with structural dedupe, building a remap *)
      let m, ty_map =
        List.fold_left
          (fun (m, map) (id, ty) ->
            let ty_remapped =
              match ty with
              | Ty.Vector (c, n) -> Ty.Vector (remap_id map c, n)
              | Ty.Matrix (c, n) -> Ty.Matrix (remap_id map c, n)
              | Ty.Struct ms -> Ty.Struct (List.map (remap_id map) ms)
              | Ty.Array (c, n) -> Ty.Array (remap_id map c, n)
              | Ty.Pointer (sc, pt) -> Ty.Pointer (sc, remap_id map pt)
              | Ty.Func (r, ps) -> Ty.Func (remap_id map r, List.map (remap_id map) ps)
              | (Ty.Void | Ty.Bool | Ty.Int | Ty.Float) as s -> s
            in
            let m, actual = Edit.intern_type_with m ~fresh:id ty_remapped in
            (m, if Id.equal actual id then map else (id, actual) :: map))
          (m, []) p.af_types
      in
      (* intern donated constants likewise *)
      let m, full_map =
        List.fold_left
          (fun (m, map) (id, ty, value) ->
            let value_remapped =
              match value with
              | Constant.Composite parts -> Constant.Composite (List.map (remap_id map) parts)
              | (Constant.Bool _ | Constant.Int _ | Constant.Float _ | Constant.Null) as v -> v
            in
            let m, actual =
              Edit.intern_constant_with m ~fresh:id ~ty:(remap_id map ty) value_remapped
            in
            (m, if Id.equal actual id then map else (id, actual) :: map))
          (m, ty_map) p.af_constants
      in
      let f =
        {
          p.af_function with
          Func.fn_ty = remap_id full_map p.af_function.Func.fn_ty;
          Func.params =
            List.map
              (fun (pa : Func.param) -> { pa with Func.param_ty = remap_id full_map pa.Func.param_ty })
              p.af_function.Func.params;
          Func.blocks = List.map (remap_block full_map) p.af_function.Func.blocks;
        }
      in
      let m = { m with Module_ir.functions = m.Module_ir.functions @ [ f ] } in
      let facts =
        if p.af_live_safe then Fact_manager.add_live_safe ctx.Context.facts f.Func.id
        else ctx.Context.facts
      in
      { ctx with Context.m = m; Context.facts = facts }
  | _ -> ctx

let apply_inline_function ctx = function
  | Inline_function { fn; block; call_id; id_map } -> (
      let m = module_of ctx in
      match lookup_block ctx ~fn ~block with
      | None -> ctx
      | Some (f, b) -> (
          let call_instr =
            List.find_opt (fun (i : Instr.t) -> i.Instr.result = Some call_id) b.Block.instrs
          in
          match call_instr with
          | Some ({ Instr.op = Instr.FunctionCall (callee, args); _ } as ci) -> (
              match Module_ir.find_function m callee with
              | Some ({ Func.blocks = [ body ]; _ } as g) -> (
                  match body.Block.terminator with
                  | Block.ReturnValue ret_val ->
                      let param_map =
                        List.map2
                          (fun (pa : Func.param) arg -> (pa.Func.param_id, arg))
                          g.Func.params args
                      in
                      let full_map = param_map @ id_map in
                      let inlined =
                        List.map (remap_instr full_map) body.Block.instrs
                      in
                      let epilogue =
                        {
                          Instr.result = Some call_id;
                          Instr.ty = ci.Instr.ty;
                          Instr.op = Instr.CopyObject (remap_id full_map ret_val);
                        }
                      in
                      let instrs =
                        List.concat_map
                          (fun (i : Instr.t) ->
                            if i.Instr.result = Some call_id then inlined @ [ epilogue ]
                            else [ i ])
                          b.Block.instrs
                      in
                      Context.with_module ctx
                        (Module_ir.replace_function m
                           (Func.replace_block f { b with Block.instrs = instrs }))
                  | _ -> ctx)
              | Some _ | None -> ctx)
          | Some _ | None -> ctx))
  | _ -> ctx
