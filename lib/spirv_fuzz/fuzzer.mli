(** The fuzzer main loop (section 3.2 of the paper).

    Starting from a context whose module renders a known image, the fuzzer
    repeatedly runs {!Pass}es, each sweeping the module for opportunities to
    apply one kind of {!Transformation} and probabilistically taking some.
    After each pass the tool decides probabilistically whether to continue,
    and stops definitely at the transformation cap.

    Passes are sampled by {!Registry} weight: each pass's effective weight
    is its registry default scaled by the per-family multipliers in
    {!config.weights}.  With the default (empty) overrides every pass weighs
    1 and the draw degenerates to the historical uniform choice — the
    recorded streams are bit-identical (property-tested).

    With {!config.use_recommendations} enabled (the default), the next pass
    is chosen with the weighted draw either at random or from a queue of
    follow-on passes pushed after each pass run — the "recommendations
    strategy"; disabling it yields the "spirv-fuzz-simple" configuration
    that Table 3 compares against. *)

open Spirv_ir

type config = {
  max_transformations : int;
      (** hard cap on recorded transformations (the paper's tool stops at
          2000; the default here is campaign-sized) *)
  max_passes : int;  (** safety cap on pass executions *)
  continue_probability : int;
      (** percent chance of running another pass after each one *)
  use_recommendations : bool;
  donors : Module_ir.t list;
      (** modules whose functions AddFunction may transplant *)
  check_contracts : bool;
      (** debug mode: run the {!Contract} checker after every applied
          transformation.  Never changes the recorded stream — the checker
          consumes no randomness (property-tested) — it only turns a
          contract breach into a loud {!Contract.Violation}. *)
  weights : (Registry.family * int) list;
      (** per-family sampling-weight multipliers applied on top of the
          registry's per-type defaults; [[]] (the default) keeps the
          uniform draw.  A family weighted 0 is never drawn (its passes may
          still run via recommendations). *)
}

val default_config : config

type result = {
  final : Context.t;
      (** the fuzzed variant: module, (possibly extended) input, and facts *)
  transformations : Transformation.t list;
      (** the recorded sequence; replaying it from the original context with
          {!Lang.replay} reproduces [final] exactly *)
  passes_run : string list;  (** pass names, in execution order *)
  counters : (string * int * int) list;
      (** per-type (type_id, proposed, applied) tallies from the emitter,
          sorted by type_id; proposals that failed their precondition are
          counted but not applied *)
}

val run : ?config:config -> seed:int -> Context.t -> result
(** [run ~seed ctx] fuzzes deterministically: equal seeds and contexts give
    equal results.  The variant is guaranteed (and property-tested) to
    validate and to render the same image as the original. *)
