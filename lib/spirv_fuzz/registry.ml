(** The transformation registry: one declarative table, one record per
    transformation type, driving every consumer.

    Each {!entry} bundles what previously lived in four manually-synced
    places: the stable [type_id] (deduplication, section 3.5), the family
    the type belongs to, the sweep pass that proposes it (section 3.2), the
    precondition/apply hooks of the transformation contract (Definition
    2.4, implemented per-type in {!Rules}), the contract flags
    (image-preserving, dedup-relevant), a default sampling weight for the
    scheduler, and an opportunity generator used by the property suites to
    manufacture valid instances on demand.

    {!Pass.all} is derived from this table, {!Fuzzer.fuzz} samples passes by
    the weights recorded here, {!Contract} and {!Dedup} read the flags, and
    the [tbct transformations] CLI renders the catalogue — so adding a
    transformation family is a data change in this file.

    Determinism: with every weight at its default of [1] the weighted
    sampler degenerates to a uniform draw over {!pass_names} (one RNG call,
    same index arithmetic as [Rng.choose]), so default-weight campaigns
    reproduce the pre-registry streams bit-for-bit.  The opportunity
    generators below are used only by tests and the CLI, never by the
    fuzzing loop, so they may consume randomness freely. *)

open Spirv_ir

(* ------------------------------------------------------------------ *)
(* Families and entries                                                *)

type family =
  | Supporting    (** id/type/constant/variable plumbing; dedup-ignored *)
  | Control_flow  (** block splitting, dead blocks, selection wrapping, ... *)
  | Data          (** loads/stores, synonyms, composites *)
  | Function_ops  (** outlining, calls, parameters, inlining *)
  | Obfuscation   (** constants via uniforms / tautological comparisons *)

let family_to_string = function
  | Supporting -> "supporting"
  | Control_flow -> "control_flow"
  | Data -> "data"
  | Function_ops -> "function"
  | Obfuscation -> "obfuscation"

let family_of_string = function
  | "supporting" -> Some Supporting
  | "control_flow" -> Some Control_flow
  | "data" -> Some Data
  | "function" -> Some Function_ops
  | "obfuscation" -> Some Obfuscation
  | _ -> None

let families = [ Supporting; Control_flow; Data; Function_ops; Obfuscation ]

type gen = Context.t -> Tbct.Rng.t -> (Context.t * Transformation.t) option

type entry = {
  type_id : string;        (** stable name, equal to {!Transformation.type_id} *)
  family : family;
  pass : string option;    (** the sweep pass proposing this type, if any *)
  precondition : Context.t -> Transformation.t -> bool;
  apply : Context.t -> Transformation.t -> Context.t;
  image_preserving : bool; (** the Definition 2.4 contract flag *)
  dedup_relevant : bool;   (** participates in Figure 6 signature sets *)
  weight : int;            (** default sampling weight (uniform = 1) *)
  gen : gen;               (** opportunity generator for the property suites *)
}

(* ------------------------------------------------------------------ *)
(* Generator helpers                                                   *)

let fresh1 ctx =
  let m, id = Module_ir.fresh ctx.Context.m in
  (Context.with_module ctx m, id)

let fresh2 ctx =
  let ctx, a = fresh1 ctx in
  let ctx, b = fresh1 ctx in
  (ctx, a, b)

let freshn ctx n =
  let m, ids = Module_ir.fresh_many ctx.Context.m n in
  (Context.with_module ctx m, ids)

let blocks_of ctx =
  List.concat_map
    (fun (f : Func.t) -> List.map (fun (b : Block.t) -> (f, b)) f.Func.blocks)
    ctx.Context.m.Module_ir.functions

let scalar_type_ids ctx =
  List.filter_map
    (fun (d : Module_ir.type_decl) ->
      match d.Module_ir.td_ty with
      | Ty.Int | Ty.Float | Ty.Bool -> Some d.Module_ir.td_id
      | _ -> None)
    ctx.Context.m.Module_ir.types

(* ids with their type ids plausibly usable inside [f]; generated
   candidates are re-checked by the precondition, so over-approximation is
   fine (the same contract as Pass.candidate_values) *)
let values_in ctx (f : Func.t) =
  let m = ctx.Context.m in
  let consts =
    List.map
      (fun (d : Module_ir.const_decl) -> (d.Module_ir.cd_id, d.Module_ir.cd_ty))
      m.Module_ir.constants
  in
  let params =
    List.map (fun (p : Func.param) -> (p.Func.param_id, p.Func.param_ty)) f.Func.params
  in
  let results =
    List.filter_map
      (fun (i : Instr.t) ->
        match (i.Instr.result, i.Instr.ty) with Some r, Some t -> Some (r, t) | _ -> None)
      (Func.all_instrs f)
  in
  consts @ params @ results

let pointers_in ctx (f : Func.t) =
  let m = ctx.Context.m in
  let is_ptr ty =
    match Module_ir.find_type m ty with Some (Ty.Pointer _) -> true | _ -> false
  in
  let globals =
    List.map
      (fun (g : Module_ir.global_decl) -> (g.Module_ir.gd_id, g.Module_ir.gd_ty))
      m.Module_ir.globals
  in
  List.filter (fun (_, ty) -> is_ptr ty) (globals @ values_in ctx f)

(* enumerate the use sites of [id] within [f] *)
let use_sites_in (f : Func.t) id =
  let sites = ref [] in
  List.iter
    (fun (b : Block.t) ->
      List.iteri
        (fun idx (i : Instr.t) ->
          List.iteri
            (fun op_idx u ->
              if Id.equal u id then
                let anchor =
                  match i.Instr.result with
                  | Some r -> Transformation.Result_id r
                  | None -> Transformation.Nth_instr idx
                in
                sites :=
                  {
                    Transformation.us_fn = f.Func.id;
                    us_block = b.Block.label;
                    us_anchor = anchor;
                    us_operand = op_idx;
                  }
                  :: !sites)
            (Instr.used_ids i))
        b.Block.instrs;
      List.iteri
        (fun op_idx u ->
          if Id.equal u id then
            sites :=
              {
                Transformation.us_fn = f.Func.id;
                us_block = b.Block.label;
                us_anchor = Transformation.Terminator;
                us_operand = op_idx;
              }
              :: !sites)
        (Block.terminator_used_ids b.Block.terminator))
    f.Func.blocks;
  !sites

let cap n xs = List.filteri (fun i _ -> i < n) xs

(* Try the candidate thunks starting at a random rotation; accept the first
   whose result clears both the fresh-id discipline and the precondition. *)
let search precondition rng cands =
  let n = List.length cands in
  if n = 0 then None
  else
    let start = Tbct.Rng.int rng n in
    let rec go k =
      if k >= n then None
      else
        match (List.nth cands ((start + k) mod n)) () with
        | Some (ctx, t) when Rules.all_fresh ctx t && precondition ctx t -> Some (ctx, t)
        | _ -> go (k + 1)
    in
    go 0

(* ------------------------------------------------------------------ *)
(* Opportunity generators, one per transformation type                 *)

let gen_add_type ctx rng =
  let m = ctx.Context.m in
  let missing_scalars =
    List.filter (fun ty -> Module_ir.find_type_id m ty = None) [ Ty.Bool; Ty.Int; Ty.Float ]
  in
  let built =
    List.concat_map
      (fun c -> [ Ty.Vector (c, 2); Ty.Array (c, 2); Ty.Pointer (Ty.Function, c) ])
      (scalar_type_ids ctx)
  in
  let cands =
    List.map
      (fun ty () ->
        let ctx, fresh = fresh1 ctx in
        Some (ctx, Transformation.Add_type { fresh; ty }))
      (missing_scalars @ built)
  in
  search Rules.pre_add_type rng cands

let gen_add_constant ctx rng =
  let m = ctx.Context.m in
  let k = Tbct.Rng.int rng 1000 in
  let cands =
    List.filter_map
      (fun (d : Module_ir.type_decl) ->
        let value =
          match d.Module_ir.td_ty with
          | Ty.Int -> Some (Constant.Int (Int32.of_int k))
          | Ty.Float -> Some (Constant.Float (float_of_int k /. 8.0))
          | Ty.Bool -> Some (Constant.Bool (k mod 2 = 0))
          | _ -> None
        in
        Option.map
          (fun value () ->
            let ctx, fresh = fresh1 ctx in
            Some (ctx, Transformation.Add_constant { fresh; ty = d.Module_ir.td_id; value }))
          value)
      m.Module_ir.types
  in
  search Rules.pre_add_constant rng cands

let gen_add_global_variable ctx rng =
  let cands =
    List.map
      (fun pointee () ->
        let ctx, fresh, fresh_ptr_ty = fresh2 ctx in
        Some (ctx, Transformation.Add_global_variable { fresh; fresh_ptr_ty; pointee }))
      (scalar_type_ids ctx)
  in
  search Rules.pre_add_global_variable rng cands

let gen_add_uniform ctx rng =
  let m = ctx.Context.m in
  let k = Tbct.Rng.int rng 100 in
  let cands =
    List.filter_map
      (fun (d : Module_ir.type_decl) ->
        let value =
          match d.Module_ir.td_ty with
          | Ty.Int -> Some (Value.VInt (Int32.of_int k))
          | Ty.Float -> Some (Value.VFloat (float_of_int k))
          | Ty.Bool -> Some (Value.VBool (k mod 2 = 0))
          | _ -> None
        in
        Option.map
          (fun value () ->
            let ctx, fresh, fresh_ptr_ty = fresh2 ctx in
            Some
              ( ctx,
                Transformation.Add_uniform
                  {
                    fresh;
                    fresh_ptr_ty;
                    pointee = d.Module_ir.td_id;
                    name = Printf.sprintf "_u%d" fresh;
                    value;
                  } ))
          value)
      m.Module_ir.types
  in
  search Rules.pre_add_uniform rng cands

let gen_add_local_variable ctx rng =
  let cands =
    List.concat_map
      (fun (f : Func.t) ->
        List.map
          (fun pointee () ->
            let ctx, fresh, fresh_ptr_ty = fresh2 ctx in
            Some
              ( ctx,
                Transformation.Add_local_variable
                  { fresh; fresh_ptr_ty; fn = f.Func.id; pointee } ))
          (scalar_type_ids ctx))
      ctx.Context.m.Module_ir.functions
  in
  search Rules.pre_add_local_variable rng cands

let gen_add_nop ctx rng =
  let cands =
    List.map
      (fun ((f : Func.t), (b : Block.t)) () ->
        Some
          ( ctx,
            Transformation.Add_nop
              { fn = f.Func.id; block = b.Block.label; point = Transformation.At_end } ))
      (blocks_of ctx)
  in
  search Rules.pre_add_nop rng cands

let gen_split_block ctx rng =
  let cands =
    List.map
      (fun ((f : Func.t), (b : Block.t)) () ->
        let ctx, fresh = fresh1 ctx in
        Some
          ( ctx,
            Transformation.Split_block
              { fn = f.Func.id; block = b.Block.label; point = Transformation.At_end; fresh }
          ))
      (blocks_of ctx)
  in
  search Rules.pre_split_block rng cands

let gen_add_dead_block ctx rng =
  match Edit.find_true_constant ctx.Context.m with
  | None -> None
  | Some cond ->
      let cands =
        List.map
          (fun ((f : Func.t), (b : Block.t)) () ->
            let ctx, fresh = fresh1 ctx in
            Some
              ( ctx,
                Transformation.Add_dead_block
                  { fn = f.Func.id; existing = b.Block.label; fresh; cond } ))
          (blocks_of ctx)
      in
      search Rules.pre_add_dead_block rng cands

let gen_replace_branch_with_kill ctx rng =
  let facts = ctx.Context.facts in
  let cands =
    List.filter_map
      (fun ((f : Func.t), (b : Block.t)) ->
        if Fact_manager.is_dead_block facts b.Block.label then
          Some
            (fun () ->
              Some
                ( ctx,
                  Transformation.Replace_branch_with_kill
                    { fn = f.Func.id; block = b.Block.label } ))
        else None)
      (blocks_of ctx)
  in
  search Rules.pre_replace_branch_with_kill rng cands

let gen_move_block_down ctx rng =
  let cands =
    List.map
      (fun ((f : Func.t), (b : Block.t)) () ->
        Some (ctx, Transformation.Move_block_down { fn = f.Func.id; block = b.Block.label }))
      (blocks_of ctx)
  in
  search Rules.pre_move_block_down rng cands

let gen_wrap_region_in_selection ctx rng =
  let m = ctx.Context.m in
  let conds =
    List.filter_map
      (fun branch_on_true ->
        Option.map
          (fun cond -> (cond, branch_on_true))
          (Edit.find_bool_constant m branch_on_true))
      [ true; false ]
  in
  let cands =
    List.concat_map
      (fun ((f : Func.t), (b : Block.t)) ->
        List.map
          (fun (cond, branch_on_true) () ->
            let ctx, fresh_header, fresh_merge = fresh2 ctx in
            Some
              ( ctx,
                Transformation.Wrap_region_in_selection
                  {
                    fn = f.Func.id;
                    block = b.Block.label;
                    fresh_header;
                    fresh_merge;
                    cond;
                    branch_on_true;
                  } ))
          conds)
      (blocks_of ctx)
  in
  search Rules.pre_wrap_region_in_selection rng cands

let gen_invert_branch_condition ctx rng =
  let cands =
    List.map
      (fun ((f : Func.t), (b : Block.t)) () ->
        let ctx, fresh = fresh1 ctx in
        Some
          ( ctx,
            Transformation.Invert_branch_condition
              { fn = f.Func.id; block = b.Block.label; fresh } ))
      (blocks_of ctx)
  in
  search Rules.pre_invert_branch_condition rng cands

let gen_propagate_instruction_up ctx rng =
  let cands =
    List.map
      (fun ((f : Func.t), (b : Block.t)) () ->
        let cfg = Cfg.of_func f in
        match Cfg.predecessors cfg b.Block.label with
        | [] -> None
        | preds ->
            let ctx, ids = freshn ctx (List.length preds) in
            Some
              ( ctx,
                Transformation.Propagate_instruction_up
                  {
                    fn = f.Func.id;
                    block = b.Block.label;
                    fresh_per_pred = List.combine preds ids;
                  } ))
      (blocks_of ctx)
  in
  search Rules.pre_propagate_instruction_up rng cands

let gen_permute_phi_entries ctx rng =
  let cands =
    List.concat_map
      (fun ((f : Func.t), (b : Block.t)) ->
        List.filter_map
          (fun (i : Instr.t) ->
            match (i.Instr.result, i.Instr.op) with
            | Some phi, Instr.Phi inc when List.length inc >= 2 ->
                Some
                  (fun () ->
                    Some
                      ( ctx,
                        Transformation.Permute_phi_entries
                          { fn = f.Func.id; block = b.Block.label; phi; rotation = 1 } ))
            | _ -> None)
          b.Block.instrs)
      (blocks_of ctx)
  in
  search Rules.pre_permute_phi_entries rng cands

let gen_swap_commutative_operands ctx rng =
  let cands =
    List.concat_map
      (fun ((f : Func.t), (b : Block.t)) ->
        List.filter_map
          (fun (i : Instr.t) ->
            match (i.Instr.result, i.Instr.op) with
            | Some instr, Instr.Binop _ ->
                Some
                  (fun () ->
                    Some
                      ( ctx,
                        Transformation.Swap_commutative_operands
                          { fn = f.Func.id; block = b.Block.label; instr } ))
            | _ -> None)
          b.Block.instrs)
      (blocks_of ctx)
  in
  search Rules.pre_swap_commutative_operands rng cands

let gen_add_load ctx rng =
  let cands =
    List.concat_map
      (fun ((f : Func.t), (b : Block.t)) ->
        List.map
          (fun (pointer, _) () ->
            let ctx, fresh = fresh1 ctx in
            Some
              ( ctx,
                Transformation.Add_load
                  {
                    fn = f.Func.id;
                    block = b.Block.label;
                    point = Transformation.At_end;
                    fresh;
                    pointer;
                  } ))
          (pointers_in ctx f))
      (blocks_of ctx)
  in
  search Rules.pre_add_load rng (cap 256 cands)

let gen_add_store ctx rng =
  let m = ctx.Context.m in
  let cands =
    List.concat_map
      (fun ((f : Func.t), (b : Block.t)) ->
        let values = values_in ctx f in
        List.concat_map
          (fun (pointer, ptr_ty) ->
            match Module_ir.find_type m ptr_ty with
            | Some (Ty.Pointer (_, pointee)) ->
                List.filter_map
                  (fun (value, ty) ->
                    if Id.equal ty pointee then
                      Some
                        (fun () ->
                          Some
                            ( ctx,
                              Transformation.Add_store
                                {
                                  fn = f.Func.id;
                                  block = b.Block.label;
                                  point = Transformation.At_end;
                                  pointer;
                                  value;
                                } ))
                    else None)
                  values
            | _ -> [])
          (pointers_in ctx f))
      (blocks_of ctx)
  in
  search Rules.pre_add_store rng (cap 256 cands)

let gen_add_copy_object ctx rng =
  let cands =
    List.concat_map
      (fun ((f : Func.t), (b : Block.t)) ->
        List.map
          (fun (operand, _) () ->
            let ctx, fresh = fresh1 ctx in
            Some
              ( ctx,
                Transformation.Add_copy_object
                  {
                    fn = f.Func.id;
                    block = b.Block.label;
                    point = Transformation.At_end;
                    fresh;
                    operand;
                  } ))
          (values_in ctx f))
      (blocks_of ctx)
  in
  search Rules.pre_add_copy_object rng (cap 256 cands)

let gen_add_arithmetic_synonym ctx rng =
  let m = ctx.Context.m in
  let kind, want_ty, id_value =
    match Tbct.Rng.int rng 6 with
    | 0 -> (Transformation.Add_zero_int, Ty.Int, Constant.Int 0l)
    | 1 -> (Transformation.Mul_one_int, Ty.Int, Constant.Int 1l)
    | 2 -> (Transformation.Mul_one_float, Ty.Float, Constant.Float 1.0)
    | 3 -> (Transformation.Sub_zero_float, Ty.Float, Constant.Float 0.0)
    | 4 -> (Transformation.Or_false, Ty.Bool, Constant.Bool false)
    | _ -> (Transformation.And_true, Ty.Bool, Constant.Bool true)
  in
  match Module_ir.find_type_id m want_ty with
  | None -> None
  | Some tid -> (
      match Module_ir.find_constant_id m ~ty:tid ~value:id_value with
      | None -> None
      | Some identity ->
          let cands =
            List.concat_map
              (fun ((f : Func.t), (b : Block.t)) ->
                List.filter_map
                  (fun (operand, ty) ->
                    if Id.equal ty tid then
                      Some
                        (fun () ->
                          let ctx, fresh = fresh1 ctx in
                          Some
                            ( ctx,
                              Transformation.Add_arithmetic_synonym
                                {
                                  fn = f.Func.id;
                                  block = b.Block.label;
                                  point = Transformation.At_end;
                                  fresh;
                                  operand;
                                  kind;
                                  identity;
                                } ))
                    else None)
                  (values_in ctx f))
              (blocks_of ctx)
          in
          search Rules.pre_add_arithmetic_synonym rng (cap 256 cands))

let gen_add_select_synonym ctx rng =
  let m = ctx.Context.m in
  let cands =
    List.concat_map
      (fun ((f : Func.t), (b : Block.t)) ->
        let values = values_in ctx f in
        let bools =
          List.filter (fun (_, ty) -> Module_ir.find_type m ty = Some Ty.Bool) values
        in
        List.concat_map
          (fun (cond, _) ->
            List.map
              (fun (operand, _) () ->
                let ctx, fresh = fresh1 ctx in
                Some
                  ( ctx,
                    Transformation.Add_select_synonym
                      {
                        fn = f.Func.id;
                        block = b.Block.label;
                        point = Transformation.At_end;
                        fresh;
                        cond;
                        operand;
                      } ))
              values)
          bools)
      (blocks_of ctx)
  in
  search Rules.pre_add_select_synonym rng (cap 256 cands)

let gen_replace_id_with_synonym ctx rng =
  let facts = ctx.Context.facts in
  let cands =
    List.concat_map
      (fun (f : Func.t) ->
        List.concat_map
          (fun (id, _) ->
            match Fact_manager.id_synonyms facts id with
            | [] -> []
            | syns ->
                List.concat_map
                  (fun site ->
                    List.map
                      (fun synonym () ->
                        Some (ctx, Transformation.Replace_id_with_synonym { site; synonym }))
                      syns)
                  (use_sites_in f id))
          (values_in ctx f))
      ctx.Context.m.Module_ir.functions
  in
  search Rules.pre_replace_id_with_synonym rng (cap 256 cands)

let gen_replace_bool_constant_with_binary ctx rng =
  let m = ctx.Context.m in
  let bool_constants =
    List.filter_map
      (fun (d : Module_ir.const_decl) ->
        match d.Module_ir.cd_value with
        | Constant.Bool _ -> Some d.Module_ir.cd_id
        | _ -> None)
      m.Module_ir.constants
  in
  let cands =
    List.concat_map
      (fun (f : Func.t) ->
        let ints =
          List.filter
            (fun (_, ty) -> Module_ir.find_type m ty = Some Ty.Int)
            (values_in ctx f)
        in
        List.concat_map
          (fun c ->
            List.concat_map
              (fun site ->
                List.map
                  (fun (operand, _) () ->
                    let ctx, fresh = fresh1 ctx in
                    Some
                      ( ctx,
                        Transformation.Replace_bool_constant_with_binary
                          { site; fresh; operand } ))
                  ints)
              (use_sites_in f c))
          bool_constants)
      m.Module_ir.functions
  in
  search Rules.pre_replace_bool_constant_with_binary rng (cap 256 cands)

let gen_replace_irrelevant_id ctx rng =
  let facts = ctx.Context.facts in
  let cands =
    List.concat_map
      (fun (f : Func.t) ->
        let values = values_in ctx f in
        List.concat_map
          (fun (id, ty) ->
            if Fact_manager.is_irrelevant facts id then
              List.concat_map
                (fun site ->
                  List.filter_map
                    (fun (replacement, rty) ->
                      if Id.equal rty ty && not (Id.equal replacement id) then
                        Some
                          (fun () ->
                            Some
                              ( ctx,
                                Transformation.Replace_irrelevant_id { site; replacement }
                              ))
                      else None)
                    values)
                (use_sites_in f id)
            else [])
          values)
      ctx.Context.m.Module_ir.functions
  in
  search Rules.pre_replace_irrelevant_id rng (cap 256 cands)

let gen_replace_constant_with_uniform ctx rng =
  let m = ctx.Context.m in
  let cands =
    List.concat_map
      (fun (gid, pointee, uv) ->
        let matching =
          List.filter_map
            (fun (d : Module_ir.const_decl) ->
              if
                Id.equal d.Module_ir.cd_ty pointee
                && Value.equal (Module_ir.const_value m d.Module_ir.cd_id) uv
              then Some d.Module_ir.cd_id
              else None)
            m.Module_ir.constants
        in
        List.concat_map
          (fun (f : Func.t) ->
            List.concat_map
              (fun c ->
                List.map
                  (fun site () ->
                    let ctx, fresh_load = fresh1 ctx in
                    Some
                      ( ctx,
                        Transformation.Replace_constant_with_uniform
                          { site; fresh_load; uniform = gid } ))
                  (use_sites_in f c))
              matching)
          m.Module_ir.functions)
      (Context.known_uniforms ctx)
  in
  search Rules.pre_replace_constant_with_uniform rng (cap 256 cands)

let gen_composite_construct ctx rng =
  let m = ctx.Context.m in
  let composite_tys =
    List.filter_map
      (fun (d : Module_ir.type_decl) ->
        match d.Module_ir.td_ty with
        | Ty.Vector _ | Ty.Struct _ | Ty.Array _ -> Some d.Module_ir.td_id
        | _ -> None)
      m.Module_ir.types
  in
  let cands =
    List.concat_map
      (fun ((f : Func.t), (b : Block.t)) ->
        let values = values_in ctx f in
        List.filter_map
          (fun ty ->
            match Module_ir.composite_arity m ty with
            | None -> None
            | Some n ->
                let parts =
                  List.init n (fun idx ->
                      match Module_ir.component_ty m ty idx with
                      | None -> None
                      | Some want ->
                          List.find_map
                            (fun (v, t) -> if Id.equal t want then Some v else None)
                            values)
                in
                if List.for_all Option.is_some parts then
                  Some
                    (fun () ->
                      let ctx, fresh = fresh1 ctx in
                      Some
                        ( ctx,
                          Transformation.Composite_construct
                            {
                              fn = f.Func.id;
                              block = b.Block.label;
                              point = Transformation.At_end;
                              fresh;
                              ty;
                              parts = List.map Option.get parts;
                            } ))
                else None)
          composite_tys)
      (blocks_of ctx)
  in
  search Rules.pre_composite_construct rng (cap 256 cands)

let gen_composite_extract ctx rng =
  let m = ctx.Context.m in
  let cands =
    List.concat_map
      (fun ((f : Func.t), (b : Block.t)) ->
        List.filter_map
          (fun (composite, ty) ->
            if Module_ir.ty_at_path m ty [ 0 ] <> None then
              Some
                (fun () ->
                  let ctx, fresh = fresh1 ctx in
                  Some
                    ( ctx,
                      Transformation.Composite_extract
                        {
                          fn = f.Func.id;
                          block = b.Block.label;
                          point = Transformation.At_end;
                          fresh;
                          composite;
                          path = [ 0 ];
                        } ))
            else None)
          (values_in ctx f))
      (blocks_of ctx)
  in
  search Rules.pre_composite_extract rng (cap 256 cands)

let gen_set_function_control ctx rng =
  let cands =
    List.concat_map
      (fun (f : Func.t) ->
        List.filter_map
          (fun control ->
            if Func.equal_control f.Func.control control then None
            else
              Some
                (fun () ->
                  Some (ctx, Transformation.Set_function_control { fn = f.Func.id; control })))
          [ Func.CNone; Func.DontInline; Func.AlwaysInline ])
      ctx.Context.m.Module_ir.functions
  in
  search Rules.pre_set_function_control rng cands

let gen_function_call ctx rng =
  let m = ctx.Context.m in
  let cands =
    List.concat_map
      (fun ((f : Func.t), (b : Block.t)) ->
        let values = values_in ctx f in
        List.filter_map
          (fun (g : Func.t) ->
            if Id.equal g.Func.id f.Func.id then None
            else
              match Module_ir.find_type m g.Func.fn_ty with
              | Some (Ty.Func (_, param_tys)) ->
                  let args =
                    List.map
                      (fun pty ->
                        List.find_map
                          (fun (v, t) -> if Id.equal t pty then Some v else None)
                          values)
                      param_tys
                  in
                  if List.for_all Option.is_some args then
                    Some
                      (fun () ->
                        let ctx, fresh = fresh1 ctx in
                        Some
                          ( ctx,
                            Transformation.Function_call
                              {
                                fn = f.Func.id;
                                block = b.Block.label;
                                point = Transformation.At_end;
                                fresh;
                                callee = g.Func.id;
                                args = List.map Option.get args;
                              } ))
                  else None
              | _ -> None)
          m.Module_ir.functions)
      (blocks_of ctx)
  in
  search Rules.pre_function_call rng (cap 256 cands)

let gen_add_parameter ctx rng =
  let m = ctx.Context.m in
  let cands =
    List.concat_map
      (fun (f : Func.t) ->
        List.map
          (fun (d : Module_ir.const_decl) () ->
            let ctx, fresh_param, fresh_fn_ty = fresh2 ctx in
            Some
              ( ctx,
                Transformation.Add_parameter
                  { fn = f.Func.id; fresh_param; fresh_fn_ty; default = d.Module_ir.cd_id }
              ))
          m.Module_ir.constants)
      m.Module_ir.functions
  in
  search Rules.pre_add_parameter rng (cap 128 cands)

(* a minimal donor-free payload: a one-block function returning an int
   constant; all declarations carry fresh ids and are interned on apply *)
let gen_add_function ctx rng =
  let cand () =
    let ctx, ids = freshn ctx 5 in
    match ids with
    | [ int_ty; fn_ty; c; fn_id; lbl ] ->
        Some
          ( ctx,
            Transformation.Add_function
              {
                Transformation.af_function =
                  {
                    Func.id = fn_id;
                    Func.name = Printf.sprintf "_reg_donor%d" fn_id;
                    Func.fn_ty = fn_ty;
                    Func.control = Func.CNone;
                    Func.params = [];
                    Func.blocks =
                      [
                        {
                          Block.label = lbl;
                          Block.instrs = [];
                          Block.terminator = Block.ReturnValue c;
                        };
                      ];
                  };
                af_types = [ (int_ty, Ty.Int); (fn_ty, Ty.Func (int_ty, [])) ];
                af_constants = [ (c, int_ty, Constant.Int 7l) ];
                af_live_safe = true;
              } )
    | _ -> None
  in
  search Rules.pre_add_function rng [ cand ]

let gen_inline_function ctx rng =
  let m = ctx.Context.m in
  let cands =
    List.concat_map
      (fun ((f : Func.t), (b : Block.t)) ->
        List.filter_map
          (fun (i : Instr.t) ->
            match (i.Instr.result, i.Instr.op) with
            | Some call_id, Instr.FunctionCall (callee, _) -> (
                match Module_ir.find_function m callee with
                | Some { Func.blocks = [ body ]; _ } ->
                    let result_ids =
                      List.filter_map (fun (j : Instr.t) -> j.Instr.result) body.Block.instrs
                    in
                    Some
                      (fun () ->
                        let ctx, ids = freshn ctx (List.length result_ids) in
                        Some
                          ( ctx,
                            Transformation.Inline_function
                              {
                                fn = f.Func.id;
                                block = b.Block.label;
                                call_id;
                                id_map = List.combine result_ids ids;
                              } ))
                | _ -> None)
            | _ -> None)
          b.Block.instrs)
      (blocks_of ctx)
  in
  search Rules.pre_inline_function rng cands

(* ------------------------------------------------------------------ *)
(* The table                                                           *)

(* Entry order is load-bearing for determinism: the first occurrence of
   each pass name, walking this list, must reproduce the historical pass
   sweep order — {!pass_names} (and hence [Pass.all] and the scheduler's
   uniform draw) is derived from it. *)
let all : entry list =
  let e type_id family pass ~dedup precondition apply gen =
    {
      type_id;
      family;
      pass;
      precondition;
      apply;
      image_preserving = true;
      dedup_relevant = dedup;
      weight = 1;
      gen;
    }
  in
  [
    e "AddType" Supporting None ~dedup:false Rules.pre_add_type Rules.apply_add_type
      gen_add_type;
    e "AddConstant" Supporting None ~dedup:false Rules.pre_add_constant
      Rules.apply_add_constant gen_add_constant;
    e "AddNop" Supporting None ~dedup:false Rules.pre_add_nop Rules.apply_add_nop
      gen_add_nop;
    e "SplitBlock" Control_flow (Some "split_blocks") ~dedup:false Rules.pre_split_block
      Rules.apply_split_block gen_split_block;
    e "AddDeadBlock" Control_flow (Some "add_dead_blocks") ~dedup:true
      Rules.pre_add_dead_block Rules.apply_add_dead_block gen_add_dead_block;
    e "AddLoad" Data (Some "add_loads") ~dedup:true Rules.pre_add_load Rules.apply_add_load
      gen_add_load;
    e "AddStore" Data (Some "add_stores") ~dedup:true Rules.pre_add_store
      Rules.apply_add_store gen_add_store;
    e "AddCopyObject" Data (Some "add_copy_objects") ~dedup:true Rules.pre_add_copy_object
      Rules.apply_add_copy_object gen_add_copy_object;
    e "AddArithmeticSynonym" Data (Some "add_arithmetic_synonyms") ~dedup:true
      Rules.pre_add_arithmetic_synonym Rules.apply_add_arithmetic_synonym
      gen_add_arithmetic_synonym;
    e "AddSelectSynonym" Data (Some "add_select_synonyms") ~dedup:true
      Rules.pre_add_select_synonym Rules.apply_add_select_synonym gen_add_select_synonym;
    e "ReplaceIdWithSynonym" Data (Some "apply_synonyms") ~dedup:false
      Rules.pre_replace_id_with_synonym Rules.apply_replace_id_with_synonym
      gen_replace_id_with_synonym;
    e "ReplaceConstantWithUniform" Obfuscation (Some "obfuscate_constants") ~dedup:true
      Rules.pre_replace_constant_with_uniform Rules.apply_replace_constant_with_uniform
      gen_replace_constant_with_uniform;
    e "CompositeConstruct" Data (Some "add_composites") ~dedup:true
      Rules.pre_composite_construct Rules.apply_composite_construct gen_composite_construct;
    e "CompositeExtract" Data (Some "add_composites") ~dedup:true
      Rules.pre_composite_extract Rules.apply_composite_extract gen_composite_extract;
    e "AddFunction" Function_ops (Some "add_functions") ~dedup:false Rules.pre_add_function
      Rules.apply_add_function gen_add_function;
    e "FunctionCall" Function_ops (Some "function_calls") ~dedup:true
      Rules.pre_function_call Rules.apply_function_call gen_function_call;
    e "InlineFunction" Function_ops (Some "inline_functions") ~dedup:true
      Rules.pre_inline_function Rules.apply_inline_function gen_inline_function;
    e "AddParameter" Function_ops (Some "add_parameters") ~dedup:true
      Rules.pre_add_parameter Rules.apply_add_parameter gen_add_parameter;
    e "ReplaceIrrelevantId" Obfuscation (Some "replace_irrelevant_ids") ~dedup:true
      Rules.pre_replace_irrelevant_id Rules.apply_replace_irrelevant_id
      gen_replace_irrelevant_id;
    e "SwapCommutativeOperands" Data (Some "swap_commutative_operands") ~dedup:true
      Rules.pre_swap_commutative_operands Rules.apply_swap_commutative_operands
      gen_swap_commutative_operands;
    e "ReplaceBooleanConstantWithBinary" Obfuscation (Some "obfuscate_bool_constants")
      ~dedup:true Rules.pre_replace_bool_constant_with_binary
      Rules.apply_replace_bool_constant_with_binary gen_replace_bool_constant_with_binary;
    e "MoveBlockDown" Control_flow (Some "move_blocks_down") ~dedup:true
      Rules.pre_move_block_down Rules.apply_move_block_down gen_move_block_down;
    e "WrapRegionInSelection" Control_flow (Some "wrap_regions") ~dedup:true
      Rules.pre_wrap_region_in_selection Rules.apply_wrap_region_in_selection
      gen_wrap_region_in_selection;
    e "InvertBranchCondition" Control_flow (Some "invert_conditions") ~dedup:true
      Rules.pre_invert_branch_condition Rules.apply_invert_branch_condition
      gen_invert_branch_condition;
    e "PropagateInstructionUp" Control_flow (Some "propagate_instructions_up") ~dedup:true
      Rules.pre_propagate_instruction_up Rules.apply_propagate_instruction_up
      gen_propagate_instruction_up;
    e "ReplaceBranchWithKill" Control_flow (Some "replace_branches_with_kill") ~dedup:true
      Rules.pre_replace_branch_with_kill Rules.apply_replace_branch_with_kill
      gen_replace_branch_with_kill;
    e "SetFunctionControl" Function_ops (Some "set_function_controls") ~dedup:true
      Rules.pre_set_function_control Rules.apply_set_function_control
      gen_set_function_control;
    e "PermutePhiEntries" Control_flow (Some "permute_phis") ~dedup:true
      Rules.pre_permute_phi_entries Rules.apply_permute_phi_entries gen_permute_phi_entries;
    e "AddGlobalVariable" Supporting (Some "add_variables") ~dedup:false
      Rules.pre_add_global_variable Rules.apply_add_global_variable gen_add_global_variable;
    e "AddLocalVariable" Supporting (Some "add_variables") ~dedup:false
      Rules.pre_add_local_variable Rules.apply_add_local_variable gen_add_local_variable;
    e "AddUniform" Supporting (Some "add_uniforms") ~dedup:false Rules.pre_add_uniform
      Rules.apply_add_uniform gen_add_uniform;
  ]

(* ------------------------------------------------------------------ *)
(* Lookups and derived views                                           *)

let by_id : (string, entry) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace tbl e.type_id e) all;
  tbl

let find type_id = Hashtbl.find_opt by_id type_id

let entry_of t =
  match find (Transformation.type_id t) with
  | Some e -> e
  | None ->
      invalid_arg ("Registry.entry_of: no entry for " ^ Transformation.type_id t)

(** The full transformation precondition: the fresh-id discipline plus the
    per-type check from the entry. *)
let precondition ctx t = Rules.all_fresh ctx t && (entry_of t).precondition ctx t

(** Apply a transformation whose precondition holds: claim its fresh ids,
    then run the per-type effect. *)
let apply ctx t =
  (entry_of t).apply (Context.claim ctx (Transformation.fresh_ids t)) t

let image_preserving t = (entry_of t).image_preserving

(** Types excluded from Figure 6 dedup signatures, derived from the
    [dedup_relevant] flags. *)
let dedup_ignored =
  Tbct.Dedup.String_set.of_list
    (List.filter_map (fun e -> if e.dedup_relevant then None else Some e.type_id) all)

(** Pass names in sweep order: first occurrence walking the table. *)
let pass_names =
  List.fold_left
    (fun acc e ->
      match e.pass with
      | Some p when not (List.mem p acc) -> acc @ [ p ]
      | _ -> acc)
    [] all

(** Follow-on recommendations (section 3.2): after running a pass, a random
    subset of these is pushed onto the recommendation queue. *)
let follow_ons = function
  | "add_functions" -> [ "function_calls" ]
  | "function_calls" -> [ "inline_functions"; "add_parameters" ]
  | "add_dead_blocks" ->
      [ "add_stores"; "replace_branches_with_kill"; "function_calls";
        "split_blocks"; "obfuscate_constants"; "obfuscate_bool_constants" ]
  | "add_copy_objects" | "add_arithmetic_synonyms" | "add_select_synonyms" ->
      [ "apply_synonyms" ]
  | "add_composites" -> [ "apply_synonyms" ]
  | "add_parameters" -> [ "replace_irrelevant_ids" ]
  | "add_variables" -> [ "add_stores"; "add_loads" ]
  | "add_uniforms" -> [ "obfuscate_constants" ]
  | "split_blocks" -> [ "add_dead_blocks" ]
  | "wrap_regions" -> [ "split_blocks"; "move_blocks_down" ]
  | "propagate_instructions_up" -> [ "move_blocks_down"; "permute_phis" ]
  | "move_blocks_down" -> [ "move_blocks_down" ]
  | "invert_conditions" -> [ "apply_synonyms" ]
  | "obfuscate_constants" -> [ "apply_synonyms" ]
  | "obfuscate_bool_constants" -> [ "replace_branches_with_kill"; "add_stores" ]
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Injected optimizer pass bugs                                        *)

(** The optimizer-hosted injected bugs, as (flag id, hosting pass,
    bug kind) string triples.  Metadata only: the authoritative catalogue
    with the enable/probe closures is [Compilers.Bug.all_pass_bugs] (a
    test keeps the two aligned), and keeping this table dependency-free —
    no [compilers] import, no {!entry} in {!all} — means campaign RNG
    streams and golden counts stay byte-identical while the CLI and the
    experiment reports can still render the roster from the registry
    alone. *)
let injected_pass_bugs =
  [
    ("bug_fold_div_crash", "Const_fold", "crash");
    ("bug_keep_stale_phi_entries", "Simplify_cfg", "invalid-ir");
    ("bug_fold_sub_zero", "Const_fold", "miscompile");
    ("bug_inline_swaps_const_args", "Inline", "miscompile");
    ("bug_hoist_loop_load", "Hoist_invariant", "miscompile");
    ("bug_forward_aliased_store", "Store_forward", "miscompile");
  ]

(* ------------------------------------------------------------------ *)
(* Weights                                                             *)

(** The effective sampling weight of a pass: the maximum over its member
    entries of [entry weight × family multiplier].  With no overrides every
    pass weighs 1 and the scheduler's draw is uniform. *)
let pass_weight ?(weights = []) name =
  let mult fam =
    match List.assoc_opt fam weights with Some n -> n | None -> 1
  in
  List.fold_left
    (fun acc e ->
      match e.pass with
      | Some p when String.equal p name -> max acc (e.weight * mult e.family)
      | _ -> acc)
    0 all

(** Parse a ["FAMILY=N,FAMILY=N"] weight override list (the [--weights]
    CLI syntax).  Weights must be non-negative; a weight of 0 disables the
    family's passes entirely. *)
let parse_weights s =
  let items =
    List.filter
      (fun item -> String.trim item <> "")
      (String.split_on_char ',' s)
  in
  List.fold_left
    (fun acc item ->
      Result.bind acc (fun ws ->
          match String.index_opt item '=' with
          | None -> Error (Printf.sprintf "expected FAMILY=N, got %S" item)
          | Some i -> (
              let fam_s = String.trim (String.sub item 0 i) in
              let n_s =
                String.trim (String.sub item (i + 1) (String.length item - i - 1))
              in
              match (family_of_string fam_s, int_of_string_opt n_s) with
              | Some fam, Some n when n >= 0 -> Ok (ws @ [ (fam, n) ])
              | None, _ ->
                  Error
                    (Printf.sprintf "unknown family %S (expected %s)" fam_s
                       (String.concat "|" (List.map family_to_string families)))
              | Some _, _ -> Error (Printf.sprintf "bad weight %S" n_s))))
    (Ok []) items
