(** The transformation-contract checker (debug mode).

    The paper's whole formulation rests on two contracts (Definitions 2.4
    and 3.1): a transformation may only be applied when its {e
    precondition} holds, and applying it must preserve the module's
    validity and rendered image.  This module turns every fuzzing campaign
    into a self-test of those contracts: after each applied transformation
    it re-asserts that the declared precondition held on the
    pre-application context, that the module still validates, that the
    {!Spirv_ir.Lint} error rules report nothing new, and that the variant
    still renders the original image.

    {b The checker consumes no randomness.}  Every check is a pure function
    of the before/after contexts, so a campaign records bit-identical
    transformation streams with checking on or off — reductions and
    deduplications of a hit found under [--check-contracts] replay exactly
    without it (see DESIGN.md §6). *)

open Spirv_ir

type violation = {
  v_transformation : string;  (** {!Transformation.type_id} of the culprit *)
  v_stage : string;  (** ["precondition"], ["validate"], ["lint"] or ["image"] *)
  v_detail : string;
}

exception Violation of violation

let violation_to_string v =
  Printf.sprintf "contract violation: %s failed the %s check: %s"
    v.v_transformation v.v_stage v.v_detail

let () =
  Printexc.register_printer (function
    | Violation v -> Some (violation_to_string v)
    | _ -> None)

type t = {
  baseline_image : Image.t option;
      (* None when the original render traps; image checks are skipped *)
  baseline_lint : (string, unit) Hashtbl.t;  (* fingerprints of lint errors *)
  mutable checked : int;
}

let lint_fingerprints m =
  List.map Lint.to_string (Lint.errors (Lint.check_module m))

let create (ctx : Context.t) =
  let baseline_image =
    match Interp.render ctx.Context.m ctx.Context.input with
    | Ok img -> Some img
    | Error _ -> None
  in
  let baseline_lint = Hashtbl.create 16 in
  List.iter
    (fun fp -> Hashtbl.replace baseline_lint fp ())
    (lint_fingerprints ctx.Context.m);
  { baseline_image; baseline_lint; checked = 0 }

let checked t = t.checked

(** Whether a transformation promises image preservation, read from its
    {!Registry} entry (today every catalogued type does; a future
    non-preserving type would opt out in its registry record). *)
let image_preserving = Registry.image_preserving

let check t ~(before : Context.t) (tr : Transformation.t)
    ~(after : Context.t) =
  let name = Transformation.type_id tr in
  let fail stage detail =
    raise (Violation { v_transformation = name; v_stage = stage; v_detail = detail })
  in
  (* 1. the declared precondition must have held on the pre-application
     context — [Pass.emit] guarantees this for fuzzer-proposed
     transformations, so a failure here means a precondition that is not a
     pure function of the context, or an apply path that bypassed it *)
  if not (Registry.precondition before tr) then
    fail "precondition" "the declared precondition does not hold on the \
                         pre-application context";
  (* 2. the transformed module must still validate *)
  (match Validate.check after.Context.m with
  | Ok () -> ()
  | Error (e :: _) -> fail "validate" (Validate.error_to_string e)
  | Error [] -> ());
  (* 3. lint (same shared Dataflow analyses) must report no new errors *)
  List.iter
    (fun fp -> if not (Hashtbl.mem t.baseline_lint fp) then fail "lint" fp)
    (lint_fingerprints after.Context.m);
  (* 4. the rendered image must be unchanged from the original — note
     [after]'s own input: AddUniform extends module and input in sync *)
  (if image_preserving tr then
     match t.baseline_image with
     | None -> ()
     | Some base -> (
         match Interp.render after.Context.m after.Context.input with
         | Ok img ->
             if not (Image.equal base img) then
               fail "image" "the rendered image differs from the original"
         | Error trap ->
             fail "image" ("the variant render trapped: " ^ Interp.trap_to_string trap)));
  t.checked <- t.checked + 1
