(** The transformation-contract checker (debug mode).

    After every applied transformation, assert the paper's core contract
    (Definitions 2.4 and 3.1): the declared precondition held on the
    pre-application context, the module still validates, the
    {!Spirv_ir.Lint} error rules report nothing new, and — for
    semantics-preserving transformation types, i.e. all of them — the
    module still renders the image of the {e original} context the checker
    was created from.

    {b RNG discipline.}  The checker consumes no randomness: every check
    is a pure function of the before/after contexts.  Campaigns therefore
    record bit-identical transformation streams with checking on or off
    (property-tested), so a hit found under [--check-contracts] reduces
    and deduplicates exactly like one found without it. *)

type violation = {
  v_transformation : string;  (** {!Transformation.type_id} of the culprit *)
  v_stage : string;  (** ["precondition"], ["validate"], ["lint"] or ["image"] *)
  v_detail : string;
}

exception Violation of violation

val violation_to_string : violation -> string

type t

val create : Context.t -> t
(** Capture the baseline: the original context's rendered image (image
    checks are skipped when the original itself traps) and its existing
    lint-error fingerprints. *)

val check : t -> before:Context.t -> Transformation.t -> after:Context.t -> unit
(** Check one applied transformation.
    @raise Violation naming the transformation type and the failed stage. *)

val checked : t -> int
(** How many transformations have passed the checks so far. *)

val image_preserving : Transformation.t -> bool
(** Whether the image-preservation check applies to this transformation
    type — [true] for the whole current catalogue. *)
