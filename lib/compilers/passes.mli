(** The optimizer passes (the spirv-opt analog).

    Every pass is semantics-preserving with {!no_bugs}; the [flags] record
    enables the optimizer-hosted injected bugs that the spirv-opt /
    spirv-opt-old / SwiftShader targets exhibit.  Correctness is covered by
    the test suite: each pass and the full pipeline preserve rendered images
    on the corpus, on random generated modules and on fuzzed variants. *)

open Spirv_ir

type flags = {
  bug_fold_div_crash : bool;
      (** crash when folding an integer division/modulo by constant zero *)
  bug_keep_stale_phi_entries : bool;
      (** constant-branch folding forgets to prune the untaken target's φ
          entry — emits invalid IR (the "emits illegal SPIR-V" bug class) *)
  bug_fold_sub_zero : bool;
      (** miscompile: fold [x -. 0.0] to [0.0] instead of [x] *)
  bug_inline_swaps_const_args : bool;
      (** miscompile: the inliner swaps the first two arguments of a call
          when both are same-typed constants *)
  bug_hoist_loop_load : bool;
      (** miscompile: loop-invariant code motion hoists a load whose cell
          {e is} stored inside the loop, when every such store sits later
          in the load's own block — each iteration then reads the stale
          pre-loop value *)
  bug_forward_aliased_store : bool;
      (** miscompile: store-to-load forwarding keys access-chain pointers
          by their syntactic (base, indices) pair and forwards across an
          intervening chain store with a different key, even though a
          dynamic index may name the forwarded cell.  The translation
          validator's symbolic memory model catches it on {e every}
          module; the render oracle only where the sampled grid drives the
          dynamic index onto the forwarded cell *)
}

val no_bugs : flags

val const_fold : flags -> Module_ir.t -> Module_ir.t
val copy_prop : Module_ir.t -> Module_ir.t
val dce : Module_ir.t -> Module_ir.t
val simplify_cfg : flags -> Module_ir.t -> Module_ir.t
val phi_simplify : Module_ir.t -> Module_ir.t
val cse : Module_ir.t -> Module_ir.t
val store_forward : flags -> Module_ir.t -> Module_ir.t
val dse : Module_ir.t -> Module_ir.t

val dse_cross_check : Module_ir.t -> string list
(** Violations of the Memory-backed DSE soundness check: stores that
    [dse] would delete (their pointer is in
    {!Spirv_ir.Dataflow.write_only_locals}) but that the independent
    {!Spirv_ir.Memory} def-use analysis still finds observable.  Empty on
    every module when both analyses are sound; {!Optimizer.run_checked}
    fails the Dse step otherwise. *)

val inline : flags -> Module_ir.t -> Module_ir.t

val hoist_invariant : flags -> Module_ir.t -> Module_ir.t
(** Loop-invariant code motion over the {!Spirv_ir.Loops} forest: pure
    instructions whose operands are all defined outside the loop — and
    loads of cells that provably cannot change inside it — move to the
    loop's preheader.  Loops without a unique fall-through preheader are
    left alone.  Not part of {!Optimizer.standard}; it exists to exercise
    the loop-aware validator (and hosts [bug_hoist_loop_load]). *)
