(** The optimizer passes (the spirv-opt analog).

    Every pass is semantics-preserving with {!no_bugs}; the [flags] record
    enables the optimizer-hosted injected bugs that the spirv-opt /
    spirv-opt-old / SwiftShader targets exhibit.  Correctness is covered by
    the test suite: each pass and the full pipeline preserve rendered images
    on the corpus, on random generated modules and on fuzzed variants. *)

open Spirv_ir

type flags = {
  bug_fold_div_crash : bool;
      (** crash when folding an integer division/modulo by constant zero *)
  bug_keep_stale_phi_entries : bool;
      (** constant-branch folding forgets to prune the untaken target's φ
          entry — emits invalid IR (the "emits illegal SPIR-V" bug class) *)
  bug_fold_sub_zero : bool;
      (** miscompile: fold [x -. 0.0] to [0.0] instead of [x] *)
  bug_inline_swaps_const_args : bool;
      (** miscompile: the inliner swaps the first two arguments of a call
          when both are same-typed constants *)
  bug_hoist_loop_load : bool;
      (** miscompile: loop-invariant code motion hoists a load whose cell
          {e is} stored inside the loop, when every such store sits later
          in the load's own block — each iteration then reads the stale
          pre-loop value *)
}

val no_bugs : flags

val const_fold : flags -> Module_ir.t -> Module_ir.t
val copy_prop : Module_ir.t -> Module_ir.t
val dce : Module_ir.t -> Module_ir.t
val simplify_cfg : flags -> Module_ir.t -> Module_ir.t
val phi_simplify : Module_ir.t -> Module_ir.t
val cse : Module_ir.t -> Module_ir.t
val store_forward : Module_ir.t -> Module_ir.t
val dse : Module_ir.t -> Module_ir.t
val inline : flags -> Module_ir.t -> Module_ir.t

val hoist_invariant : flags -> Module_ir.t -> Module_ir.t
(** Loop-invariant code motion over the {!Spirv_ir.Loops} forest: pure
    instructions whose operands are all defined outside the loop — and
    loads of cells that provably cannot change inside it — move to the
    loop's preheader.  Loops without a unique fall-through preheader are
    left alone.  Not part of {!Optimizer.standard}; it exists to exercise
    the loop-aware validator (and hosts [bug_hoist_loop_load]). *)
