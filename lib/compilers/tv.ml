open Spirv_ir

type witness = { w_slot : string; w_before : string; w_after : string }
[@@deriving show { with_path = false }, eq]

type verdict = Equivalent | Mismatch of witness | Abstained of string
[@@deriving show { with_path = false }, eq]

let check_pass (before : Module_ir.t) (after : Module_ir.t) : verdict =
  (* One shared context: hash-consing makes cross-module semantic equality
     a node-id comparison. *)
  let ctx = Symval.create () in
  try
    let s1 = Symval.summarize ctx before in
    let s2 = Symval.summarize ctx after in
    if not (Symval.equal_node s1.Symval.s_kill s2.Symval.s_kill) then
      Mismatch
        {
          w_slot = "kill";
          w_before = Symval.to_string s1.Symval.s_kill;
          w_after = Symval.to_string s2.Symval.s_kill;
        }
    else if Symval.is_const_true s1.Symval.s_kill then
      (* every fragment is killed on both sides: the output cell is never
         observed *)
      Equivalent
    else if not (Symval.equal_node s1.Symval.s_out s2.Symval.s_out) then
      Mismatch
        {
          w_slot = "output";
          w_before = Symval.to_string s1.Symval.s_out;
          w_after = Symval.to_string s2.Symval.s_out;
        }
    else Equivalent
  with
  | Symval.Abstain reason -> Abstained reason
  | exn ->
      (* soundness over completeness: an internal error is an abstention,
         never a finding *)
      Abstained ("internal: " ^ Printexc.to_string exn)

let verdict_to_string = function
  | Equivalent -> "equivalent"
  | Mismatch w ->
      Printf.sprintf "mismatch at %s: before %s, after %s" w.w_slot w.w_before
        w.w_after
  | Abstained r -> "abstained: " ^ r
