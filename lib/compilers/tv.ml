open Spirv_ir

type witness = { w_slot : string; w_before : string; w_after : string }
[@@deriving show { with_path = false }, eq]

type verdict = Equivalent | Mismatch of witness | Abstained of string
[@@deriving show { with_path = false }, eq]

let check_pass_counted (before : Module_ir.t) (after : Module_ir.t) :
    verdict * int =
  (* One shared context: hash-consing makes cross-module semantic equality
     a node-id comparison. *)
  let ctx = Symval.create () in
  let finish v = (v, Symval.mem_proofs ctx) in
  finish
  @@
  try
    let s1 = Symval.summarize ctx before in
    let s2 = Symval.summarize ctx after in
    let mismatch slot a b =
      (* A summary built under forced loop exits pruned branch arms the
         range analysis proved infeasible — but the two modules may have
         proved *different* bounds, so a divergence seen only then is not
         a trustworthy witness.  Equal summaries are still equal. *)
      if Symval.forced_exits ctx > 0 then
        Abstained
          (Symval.reason_label `Forced_unroll
          ^ ": summaries diverge at " ^ slot
          ^ " but were built under forced loop exits")
      else
        Mismatch
          { w_slot = slot; w_before = Symval.to_string a; w_after = Symval.to_string b }
    in
    if not (Symval.equal_node s1.Symval.s_kill s2.Symval.s_kill) then
      mismatch "kill" s1.Symval.s_kill s2.Symval.s_kill
    else if Symval.is_const_true s1.Symval.s_kill then
      (* every fragment is killed on both sides: the output cell is never
         observed *)
      Equivalent
    else if not (Symval.equal_node s1.Symval.s_out s2.Symval.s_out) then
      mismatch "output" s1.Symval.s_out s2.Symval.s_out
    else Equivalent
  with
  | Symval.Abstain (r, msg) -> Abstained (Symval.reason_label r ^ ": " ^ msg)
  | exn ->
      (* soundness over completeness: an internal error is an abstention,
         never a finding *)
      Abstained
        (Symval.reason_label `Internal ^ ": " ^ Printexc.to_string exn)

let check_pass before after = fst (check_pass_counted before after)

let abstain_label = function
  | Abstained r -> (
      match String.index_opt r ':' with
      | Some i -> Some (String.sub r 0 i)
      | None -> Some r)
  | Equivalent | Mismatch _ -> None

let verdict_to_string = function
  | Equivalent -> "equivalent"
  | Mismatch w ->
      Printf.sprintf "mismatch at %s: before %s, after %s" w.w_slot w.w_before
        w.w_after
  | Abstained r -> "abstained: " ^ r
