(** Injected compiler bugs.

    Each of the nine targets (Table 2) carries a roster of latent bugs.
    {b Crash bugs} are structural predicates over the module being compiled;
    when one fires the "compiler" aborts with a stable crash signature (what
    gfauto's signature extraction recovers from a crash report, paper
    section 3.4).  {b Miscompilation bugs} are rewrites applied to the
    optimized module before execution — wrong code emitted for particular
    program shapes.

    Triggers are chosen to be reachable from the transformations the
    fuzzers apply (dead blocks, φ-nodes, OpKill, block reordering, uniform
    obfuscation, donated functions, ...) while absent from the lowered
    reference corpus — mirroring how real driver bugs hide on paths everyday
    shaders never exercise.  The test suite checks that no crash trigger
    fires on any clean corpus program, raw or optimized. *)

open Spirv_ir

type phase =
  | Before_opt  (** checked on the module as submitted (front-end bugs) *)
  | After_opt   (** checked on the optimized module (back-end bugs) *)

type crash_spec = {
  bug_id : string;     (** ground-truth identity for the Table 4 study *)
  signature : string;  (** what the harness extracts and deduplicates *)
  phase : phase;
  trigger : Module_ir.t -> bool;
}

type miscompile_spec = {
  mc_bug_id : string;
  rewrite : Module_ir.t -> Module_ir.t;  (** identity when the shape is absent *)
}

(** {1 Structural probes} (exposed for tests and target design) *)

val has_donated_call : Module_ir.t -> bool
val has_dontinline_call : Module_ir.t -> bool
val max_phi_arity : Module_ir.t -> int
val has_kill : Module_ir.t -> bool
val max_blocks : Module_ir.t -> int
val max_params : Module_ir.t -> int
val output_store_count : Module_ir.t -> int
val max_copy_chain : Module_ir.t -> int
val has_deep_extract : Module_ir.t -> bool
val has_unreachable_block : Module_ir.t -> bool
val has_select_on_bool : Module_ir.t -> bool
val has_undef : Module_ir.t -> bool
val loop_count : Module_ir.t -> int
(** Retreating edges (branches to earlier-or-equal syntactic positions) —
    loops, whether source-level or created by block reordering. *)

val max_empty_chain : Module_ir.t -> int
val has_constant_condition : Module_ir.t -> bool
val non_fallthrough_count : Module_ir.t -> int
val has_uniform_fed_condition : Module_ir.t -> bool

(** {1 The catalogue} *)

val all_crash_bugs : crash_spec list
val find_crash_bug : string -> crash_spec option
val all_miscompile_bugs : miscompile_spec list
val find_miscompile_bug : string -> miscompile_spec option

(** {1 Optimizer-hosted pass bugs}

    The third bug population: bugs living {e inside} optimizer passes,
    enabled per target through {!Passes.flags}.  Unlike crash and
    miscompile specs they have a ground-truth guilty pass, which the
    translation validator ({!Optimizer.run_tv}) must recover — the Table 4
    blame-attribution experiments key on this catalogue.  The fuzzing
    registry mirrors it as dependency-free metadata
    ([Spirv_fuzz.Registry.injected_pass_bugs]); a test keeps the two in
    sync. *)

type pass_bug_kind =
  | Crashes      (** the pass aborts with a stable signature *)
  | Invalid_ir   (** the pass emits IR the validator/lint rejects *)
  | Miscompiles  (** the pass silently changes semantics *)

val pass_bug_kind_to_string : pass_bug_kind -> string
(** ["crash"], ["invalid-ir"] or ["miscompile"] — the registry metadata
    encoding. *)

type pass_bug_spec = {
  pb_id : string;  (** the flag's field name, e.g. ["bug_fold_sub_zero"] *)
  pb_pass : Optimizer.pass_name;  (** ground-truth guilty pass *)
  pb_kind : pass_bug_kind;
  pb_enable : Passes.flags -> Passes.flags;  (** set the flag *)
  pb_enabled : Passes.flags -> bool;  (** read the flag *)
}

val all_pass_bugs : pass_bug_spec list
val find_pass_bug : string -> pass_bug_spec option
