(** Pass pipelines for the compilers under test.

    [standard] is the [-O]-style sequence (run twice, like spirv-opt's
    iterated optimization loop); each of the nine targets combines a
    pipeline with a roster of injected bugs ({!Target}). *)

open Spirv_ir

type pass_name =
  | Const_fold      (** constant folding, incl. composite extraction *)
  | Copy_prop       (** copy propagation through [OpCopyObject] chains *)
  | Dce             (** dead pure-instruction elimination, to fixpoint *)
  | Simplify_cfg
      (** constant-branch folding, unreachable-block removal,
          straight-line block merging *)
  | Phi_simplify    (** single-entry and all-same φs become copies *)
  | Cse             (** block-local common-subexpression elimination *)
  | Inline          (** single-block callee inlining (honours DontInline) *)
  | Store_forward   (** block-local store-to-load forwarding *)
  | Dse             (** stores to never-read local variables *)

val pp_pass_name : Format.formatter -> pass_name -> unit
val show_pass_name : pass_name -> string
val equal_pass_name : pass_name -> pass_name -> bool

val run_pass : Passes.flags -> Module_ir.t -> pass_name -> Module_ir.t

val run : ?flags:Passes.flags -> pass_name list -> Module_ir.t -> Module_ir.t
(** Run a pipeline.  With the default (bug-free) flags every pass is
    semantics-preserving; the test suites check this on the corpus, on
    random modules and on fuzzed variants.
    @raise Opt_util.Compiler_crash when an enabled injected bug fires. *)

val run_checked :
  ?flags:Passes.flags ->
  pass_name list ->
  Module_ir.t ->
  (Module_ir.t, pass_name * string) result
(** Debug-mode pipeline: after every pass, re-validate the module and run
    the {!Spirv_ir.Lint} error rules — both built on the shared
    {!Spirv_ir.Dataflow} analyses — and report the first pass whose output
    is invalid or lint-dirty.  With clean flags this always returns [Ok];
    with an injected bug enabled it names the offending pass (tested). *)

val standard : pass_name list
(** The [-O] pipeline. *)

val optimize : Module_ir.t -> (Module_ir.t, string) result
(** [run standard] with clean flags, catching crashes — the "apply spirv-opt
    with the -O argument" step of the paper's test pipeline. *)
