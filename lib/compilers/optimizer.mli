(** Pass pipelines for the compilers under test.

    [standard] is the [-O]-style sequence (run twice, like spirv-opt's
    iterated optimization loop); each of the nine targets combines a
    pipeline with a roster of injected bugs ({!Target}). *)

open Spirv_ir

type pass_name =
  | Const_fold      (** constant folding, incl. composite extraction *)
  | Copy_prop       (** copy propagation through [OpCopyObject] chains *)
  | Dce             (** dead pure-instruction elimination, to fixpoint *)
  | Simplify_cfg
      (** constant-branch folding, unreachable-block removal,
          straight-line block merging *)
  | Phi_simplify    (** single-entry and all-same φs become copies *)
  | Cse             (** block-local common-subexpression elimination *)
  | Inline          (** single-block callee inlining (honours DontInline) *)
  | Store_forward   (** block-local store-to-load forwarding *)
  | Dse             (** stores to never-read local variables *)
  | Hoist_invariant
      (** loop-invariant code motion to the preheader ({!Passes}); kept
          out of [standard] so the [-O] baseline is unchanged *)

val pp_pass_name : Format.formatter -> pass_name -> unit
val show_pass_name : pass_name -> string
val equal_pass_name : pass_name -> pass_name -> bool

val run_pass : Passes.flags -> Module_ir.t -> pass_name -> Module_ir.t

val run : ?flags:Passes.flags -> pass_name list -> Module_ir.t -> Module_ir.t
(** Run a pipeline.  With the default (bug-free) flags every pass is
    semantics-preserving; the test suites check this on the corpus, on
    random modules and on fuzzed variants.
    @raise Opt_util.Compiler_crash when an enabled injected bug fires. *)

val run_checked :
  ?flags:Passes.flags ->
  pass_name list ->
  Module_ir.t ->
  (Module_ir.t, (pass_name * string) list) result
(** Debug-mode pipeline: after every pass, re-validate the module and run
    the {!Spirv_ir.Lint} error rules — both built on the shared
    {!Spirv_ir.Dataflow} analyses — and report {e every} pass whose output
    is invalid or lint-dirty (the pipeline keeps going on the offending
    module; the head of the list is the original culprit).  A pass that
    crashes outright ends the run with a ["crash: ..."] entry.  With clean
    flags this always returns [Ok]; with an injected bug enabled it names
    the offending pass (tested). *)

type tv_report = {
  tv_module : Module_ir.t;  (** the pipeline's final output *)
  tv_steps : (pass_name * Tv.verdict) list;  (** one verdict per pass run *)
  tv_guilty : pass_name option;  (** the first pass with a [Mismatch] *)
}

val run_tv :
  ?flags:Passes.flags ->
  ?check:(Module_ir.t -> Module_ir.t -> Tv.verdict) ->
  pass_name list ->
  Module_ir.t ->
  (tv_report, string) result
(** Translation-validated pipeline: run every pass and validate each
    before/after pair with [check] (default {!Tv.check_pass}; the harness
    engine passes its digest-memoized variant), naming the guilty pass of
    the first mismatch.  [Error] carries a crash signature when an
    injected crash bug fires mid-pipeline. *)

val standard : pass_name list
(** The [-O] pipeline. *)

val optimize : Module_ir.t -> (Module_ir.t, string) result
(** [run standard] with clean flags, catching crashes — the "apply spirv-opt
    with the -O argument" step of the paper's test pipeline. *)
