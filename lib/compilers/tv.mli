(** Translation validation: prove one optimizer pass semantics-preserving
    by comparing symbolic module summaries ({!Spirv_ir.Symval}).

    The validator is an {e input-independent} second miscompilation oracle:
    where the paper's dynamic oracle renders a fragment grid and diffs
    images (missing any miscompile that only manifests off the sampled
    grid), [check_pass] compares what the two modules compute on {e every}
    input — and, run between passes ({!Optimizer.run_tv}), it names the
    guilty pass, refining the paper's single shared miscompilation
    signature into per-pass buckets.

    Abstention discipline: [Abstained] means the analysis could not decide
    (a data-dependent loop, a dynamic index, an exhausted budget) and must
    {e never} be reported as a bug.  Only [Mismatch] is a finding. *)

open Spirv_ir

type witness = {
  w_slot : string;  (** the first diverging slot: ["kill"] or ["output"] *)
  w_before : string;  (** pretty-printed symbolic value before the pass *)
  w_after : string;
}
[@@deriving show { with_path = false }, eq]

type verdict =
  | Equivalent
  | Mismatch of witness
  | Abstained of string
[@@deriving show { with_path = false }, eq]

val check_pass : Module_ir.t -> Module_ir.t -> verdict
(** [check_pass before after] summarizes both modules in one shared
    hash-consing context and compares the kill conditions, then (when the
    fragment is not provably always killed) the output values.  Any
    internal error or analysis limit yields [Abstained], never a false
    [Mismatch].  The abstention payload is prefixed with the structured
    {!Spirv_ir.Symval.reason} label (["loop-unbounded: ..."], ["budget:
    ..."], …); a divergence witnessed only under forced loop exits
    (different proven trip bounds on the two sides) is downgraded to
    [Abstained "forced-unroll: ..."]. *)

val check_pass_counted : Module_ir.t -> Module_ir.t -> verdict * int
(** [check_pass] plus the number of dynamic access-chain indices the
    evaluator folded under a {!Spirv_ir.Memory} finite-range proof while
    building the two summaries ({!Spirv_ir.Symval.mem_proofs}) — the
    engine accumulates it as the [mem-proofs] counter on fresh (unmemoized)
    validations. *)

val abstain_label : verdict -> string option
(** The structured reason label of an abstention (the payload up to the
    first [':']), [None] for the other verdicts — the bucketing key for
    {!Harness.Engine} stats and [bench --perf]. *)

val verdict_to_string : verdict -> string
(** One-line rendering: ["equivalent"], ["mismatch at <slot>: ..."] or
    ["abstained: <reason>"]. *)
