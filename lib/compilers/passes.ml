(** The optimizer passes (the spirv-opt analog).

    Each pass is semantics-preserving by default; the [flags] record enables
    the injected optimizer bugs that the spirv-opt / spirv-opt-old targets
    exhibit.  Pass correctness is covered by the test suite (random modules
    and fuzzed variants must render identically before and after each
    pipeline). *)

open Spirv_ir

type flags = {
  bug_fold_div_crash : bool;
      (** crash when folding an integer division/modulo by constant zero *)
  bug_keep_stale_phi_entries : bool;
      (** when deleting unreachable blocks, forget to prune φ entries that
          referenced them — emits invalid IR (the "spirv-opt emits illegal
          SPIR-V" bug class of section 5) *)
  bug_fold_sub_zero : bool;
      (** miscompile: fold [x -. 0.0] to [0.0] instead of [x] *)
  bug_inline_swaps_const_args : bool;
      (** miscompile: the inliner swaps the first two arguments of a call
          when both are constants *)
  bug_hoist_loop_load : bool;
      (** miscompile: loop-invariant code motion treats a load as invariant
          when every in-loop store to its cell sits later in the load's own
          block — forgetting the block re-executes, so the hoisted load
          feeds every iteration the stale pre-loop value *)
  bug_forward_aliased_store : bool;
      (** miscompile: store-to-load forwarding keys access-chain pointers by
          their syntactic (base, indices) pair and forwards across an
          intervening chain store with a different key — forgetting that a
          dynamic index may alias the forwarded cell *)
}

let no_bugs =
  {
    bug_fold_div_crash = false;
    bug_keep_stale_phi_entries = false;
    bug_fold_sub_zero = false;
    bug_inline_swaps_const_args = false;
    bug_hoist_loop_load = false;
    bug_forward_aliased_store = false;
  }

(* ------------------------------------------------------------------ *)
(* Constant folding                                                    *)

let constant_of m id =
  match Module_ir.find_constant m id with
  | Some _ -> Some (Module_ir.const_value m id)
  | None -> None

let const_fold flags m =
  let folded = ref m in
  let fold_instr (i : Instr.t) =
    let m = !folded in
    match (i.Instr.result, i.Instr.ty, i.Instr.op) with
    | Some r, Some ty, Instr.Binop (op, a, b) -> (
        match (constant_of m a, constant_of m b) with
        | Some va, Some vb -> (
            (if flags.bug_fold_div_crash then
               match (op, vb) with
               | (Instr.SDiv | Instr.SMod), Value.VInt 0l ->
                   Opt_util.crash
                     "constant folder: integer division by zero (fold_binary_op)"
               | _ -> ());
            if flags.bug_fold_sub_zero && op = Instr.FSub && Value.equal vb (Value.VFloat 0.0)
            then begin
              (* wrong fold: x - 0.0 ~> 0.0 *)
              let m', zero = Opt_util.intern_value m ty (Value.VFloat 0.0) in
              folded := m';
              Instr.make ~result:r ~ty (Instr.CopyObject zero)
            end
            else
              match Ops.eval_binop op va vb with
              | v ->
                  let m', c = Opt_util.intern_value m ty v in
                  folded := m';
                  Instr.make ~result:r ~ty (Instr.CopyObject c)
              | exception Ops.Type_error _ -> i)
        | _ ->
            (* identity simplifications on one constant operand *)
            if flags.bug_fold_sub_zero && op = Instr.FSub
               && constant_of m b = Some (Value.VFloat 0.0)
            then begin
              let m', zero = Opt_util.intern_value m ty (Value.VFloat 0.0) in
              folded := m';
              Instr.make ~result:r ~ty (Instr.CopyObject zero)
            end
            else i)
    | Some r, Some ty, Instr.Unop (op, a) -> (
        match constant_of m a with
        | Some va -> (
            match Ops.eval_unop op va with
            | v ->
                let m', c = Opt_util.intern_value m ty v in
                folded := m';
                Instr.make ~result:r ~ty (Instr.CopyObject c)
            | exception Ops.Type_error _ -> i)
        | None -> i)
    | Some r, Some ty, Instr.Select (c, tv, fv) -> (
        match constant_of m c with
        | Some (Value.VBool b) ->
            Instr.make ~result:r ~ty (Instr.CopyObject (if b then tv else fv))
        | _ -> i)
    | Some r, Some ty, Instr.CompositeExtract (src, path) -> (
        match constant_of m src with
        | Some v ->
            let extracted = Value.extract_at_path v path in
            let m', c = Opt_util.intern_value m ty extracted in
            folded := m';
            Instr.make ~result:r ~ty (Instr.CopyObject c)
        | None -> i)
    | _ -> i
  in
  let m' = Opt_util.map_instrs m fold_instr in
  (* map_instrs consumed the original module; re-apply on the module that
     accumulated new constants *)
  let with_consts = { m' with Module_ir.constants = !folded.Module_ir.constants;
                              Module_ir.types = !folded.Module_ir.types;
                              Module_ir.id_bound = !folded.Module_ir.id_bound } in
  with_consts

(* ------------------------------------------------------------------ *)
(* Copy propagation                                                    *)

let copy_prop m =
  let table = Hashtbl.create 32 in
  List.iter
    (fun (fn : Func.t) ->
      List.iter
        (fun (i : Instr.t) ->
          match (i.Instr.result, i.Instr.op) with
          | Some r, Instr.CopyObject src -> Hashtbl.replace table r src
          | _ -> ())
        (Func.all_instrs fn))
    m.Module_ir.functions;
  (* resolve chains so a -> b -> c collapses to a -> c *)
  let resolved = Hashtbl.create 32 in
  Hashtbl.iter
    (fun r _ ->
      let rec chase id steps =
        if steps > 64 then id
        else
          match Hashtbl.find_opt table id with
          | Some next -> chase next (steps + 1)
          | None -> id
      in
      Hashtbl.replace resolved r (chase r 0))
    table;
  Opt_util.substitute_everywhere m resolved

(* ------------------------------------------------------------------ *)
(* Dead code elimination                                               *)

let removable (i : Instr.t) =
  match i.Instr.op with
  | Instr.Binop _ | Instr.Unop _ | Instr.Select _ | Instr.CompositeConstruct _
  | Instr.CompositeExtract _ | Instr.CompositeInsert _ | Instr.AccessChain _
  | Instr.Phi _ | Instr.CopyObject _ | Instr.Undef | Instr.Nop | Instr.Load _
  | Instr.Variable _ ->
      true
  | Instr.Store _ | Instr.FunctionCall _ -> false

let dce m =
  let rec iterate m =
    let used = Opt_util.used_value_ids m in
    let changed = ref false in
    let prune_block (b : Block.t) =
      {
        b with
        Block.instrs =
          List.filter
            (fun (i : Instr.t) ->
              match i.Instr.result with
              | Some r when removable i && not (Id.Set.mem r used) ->
                  changed := true;
                  false
              | _ -> ( match i.Instr.op with
                       | Instr.Nop -> changed := true; false
                       | _ -> true))
            b.Block.instrs;
      }
    in
    let m' =
      {
        m with
        Module_ir.functions =
          List.map
            (fun (fn : Func.t) ->
              { fn with Func.blocks = List.map prune_block fn.Func.blocks })
            m.Module_ir.functions;
      }
    in
    if !changed then iterate m' else m'
  in
  iterate m

(* ------------------------------------------------------------------ *)
(* CFG simplification                                                  *)

let remove_phi_entries_for ~pred (b : Block.t) =
  {
    b with
    Block.instrs =
      List.map
        (fun (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Phi inc ->
              { i with Instr.op = Instr.Phi (List.filter (fun (_, p) -> not (Id.equal p pred)) inc) }
          | _ -> i)
        b.Block.instrs;
  }

let fold_constant_branches flags m (fn : Func.t) =
  let changed = ref false in
  let blocks = ref fn.Func.blocks in
  let update_block label f =
    blocks := List.map (fun (b : Block.t) -> if Id.equal b.Block.label label then f b else b) !blocks
  in
  List.iter
    (fun (b : Block.t) ->
      match b.Block.terminator with
      | Block.BranchConditional (c, t, f) when not (Id.equal t f) -> (
          match Module_ir.find_constant m c with
          | Some { Module_ir.cd_value = Constant.Bool cond; _ } ->
              let taken, untaken = if cond then (t, f) else (f, t) in
              changed := true;
              update_block b.Block.label (fun blk ->
                  { blk with Block.terminator = Block.Branch taken });
              (* the stale-phi bug forgets to prune the untaken target's
                 φ entry for this predecessor, emitting invalid IR *)
              if not flags.bug_keep_stale_phi_entries then
                update_block untaken (remove_phi_entries_for ~pred:b.Block.label)
          | _ -> ())
      | Block.BranchConditional (c, t, f) when Id.equal t f ->
          ignore c;
          changed := true;
          update_block b.Block.label (fun blk ->
              { blk with Block.terminator = Block.Branch t })
      | _ -> ())
    fn.Func.blocks;
  ({ fn with Func.blocks = !blocks }, !changed)

let remove_unreachable_blocks flags (fn : Func.t) =
  let cfg = Cfg.of_func fn in
  let reachable = Cfg.reachable_labels cfg in
  let is_reachable l = List.mem l reachable in
  let dropped =
    List.filter (fun (b : Block.t) -> not (is_reachable b.Block.label)) fn.Func.blocks
  in
  if dropped = [] then (fn, false)
  else begin
    let dropped_labels = List.map (fun (b : Block.t) -> b.Block.label) dropped in
    let blocks = List.filter (fun (b : Block.t) -> is_reachable b.Block.label) fn.Func.blocks in
    let blocks =
      if flags.bug_keep_stale_phi_entries then blocks
      else
        List.map
          (fun (b : Block.t) ->
            List.fold_left (fun b pred -> remove_phi_entries_for ~pred b) b dropped_labels)
          blocks
    in
    ({ fn with Func.blocks }, true)
  end

let merge_straight_line (fn : Func.t) =
  let cfg = Cfg.of_func fn in
  (* find b -> c with c's single pred = b, no φs in c, c not entry *)
  let entry_label = (Func.entry_block fn).Block.label in
  let candidate =
    List.find_map
      (fun (b : Block.t) ->
        match b.Block.terminator with
        | Block.Branch c when not (Id.equal c b.Block.label) -> (
            match Func.find_block fn c with
            | Some cb
              when (not (Id.equal c entry_label))
                   && Cfg.predecessors cfg c = [ b.Block.label ]
                   && Edit_light.phi_count cb = 0
                   && not
                        (List.exists
                           (fun (i : Instr.t) ->
                             match i.Instr.op with Instr.Variable _ -> true | _ -> false)
                           cb.Block.instrs) ->
                Some (b, cb)
            | _ -> None)
        | _ -> None)
      fn.Func.blocks
  in
  match candidate with
  | None -> (fn, false)
  | Some (b, cb) ->
      let merged =
        {
          b with
          Block.instrs = b.Block.instrs @ cb.Block.instrs;
          Block.terminator = cb.Block.terminator;
        }
      in
      let blocks =
        List.filter_map
          (fun (blk : Block.t) ->
            if Id.equal blk.Block.label cb.Block.label then None
            else if Id.equal blk.Block.label b.Block.label then Some merged
            else Some blk)
          fn.Func.blocks
      in
      (* φs in c's successors must rename the pred c -> b *)
      let rename (blk : Block.t) =
        {
          blk with
          Block.instrs =
            List.map
              (fun (i : Instr.t) ->
                match i.Instr.op with
                | Instr.Phi inc ->
                    {
                      i with
                      Instr.op =
                        Instr.Phi
                          (List.map
                             (fun (value, p) ->
                               if Id.equal p cb.Block.label then (value, b.Block.label)
                               else (value, p))
                             inc);
                    }
                | _ -> i)
              blk.Block.instrs;
        }
      in
      ({ fn with Func.blocks = List.map rename blocks }, true)

let simplify_cfg flags m =
  let simplify_fn (fn : Func.t) =
    let rec fix fn budget =
      if budget = 0 then fn
      else begin
        let fn, c1 = fold_constant_branches flags m fn in
        let fn, c2 = remove_unreachable_blocks flags fn in
        let fn, c3 = merge_straight_line fn in
        if c1 || c2 || c3 then fix fn (budget - 1) else fn
      end
    in
    fix fn 64
  in
  { m with Module_ir.functions = List.map simplify_fn m.Module_ir.functions }

(* ------------------------------------------------------------------ *)
(* φ simplification                                                    *)

let phi_simplify m =
  Opt_util.map_instrs m (fun (i : Instr.t) ->
      match (i.Instr.result, i.Instr.ty, i.Instr.op) with
      | Some r, Some ty, Instr.Phi [ (v, _) ] ->
          Instr.make ~result:r ~ty (Instr.CopyObject v)
      | Some r, Some ty, Instr.Phi ((v0, _) :: rest)
        when List.for_all (fun (v, _) -> Id.equal v v0) rest ->
          Instr.make ~result:r ~ty (Instr.CopyObject v0)
      | _ -> i)

(* ------------------------------------------------------------------ *)
(* Local common subexpression elimination                              *)

let cse m =
  let cse_block (b : Block.t) =
    let seen : (string, Id.t) Hashtbl.t = Hashtbl.create 16 in
    let instrs =
      List.map
        (fun (i : Instr.t) ->
          match (i.Instr.result, i.Instr.ty, i.Instr.op) with
          | Some r, Some ty, op -> (
              let hashable =
                match op with
                | Instr.Binop _ | Instr.Unop _ | Instr.Select _
                | Instr.CompositeConstruct _ | Instr.CompositeExtract _
                | Instr.CompositeInsert _ ->
                    Some (Instr.show_op op ^ "@" ^ Id.to_string ty)
                | _ -> None
              in
              match hashable with
              | None -> i
              | Some key -> (
                  match Hashtbl.find_opt seen key with
                  | Some prior -> Instr.make ~result:r ~ty (Instr.CopyObject prior)
                  | None ->
                      Hashtbl.replace seen key r;
                      i))
          | _ -> i)
        b.Block.instrs
    in
    { b with Block.instrs }
  in
  {
    m with
    Module_ir.functions =
      List.map
        (fun (fn : Func.t) -> { fn with Func.blocks = List.map cse_block fn.Func.blocks })
        m.Module_ir.functions;
  }

(* ------------------------------------------------------------------ *)
(* Local store-to-load forwarding                                      *)

(* Forward [Store (p, v)] to subsequent [Load p] within a block, for direct
   (non-access-chain) pointers.  Conservatively invalidated by calls, by any
   store through an access chain, and per-pointer by overwrites.

   With [bug_forward_aliased_store] the pass additionally forwards through
   access-chain pointers, keyed by the chain's syntactic (base, indices)
   pair — and an intervening chain store with a {e different} key does not
   invalidate the fact, even though a dynamic index may name the same cell.
   Storing [a[0] := x] then [a[j] := y] and loading [a[0]] forwards [x]
   where [j = 0] would have produced [y].  Exactly the alias-blindness the
   {!Spirv_ir.Memory} analysis exists to expose: the render oracle only
   catches it when the sampled grid happens to drive [j] to 0. *)
let store_forward flags m =
  let access_chain_bases =
    List.concat_map
      (fun (fn : Func.t) ->
        List.filter_map
          (fun (i : Instr.t) ->
            match i.Instr.op with
            | Instr.AccessChain (base, _) -> Some base
            | _ -> None)
          (Func.all_instrs fn))
      m.Module_ir.functions
  in
  let forward_fn (fn : Func.t) =
    (* chain-pointer results and their syntactic keys, function-wide (the
       buggy forwarder looks keys up across the defining instruction) *)
    let chain_key : (Id.t, Id.t * Id.t list) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (i : Instr.t) ->
        match (i.Instr.result, i.Instr.op) with
        | Some r, Instr.AccessChain (base, idxs) ->
            Hashtbl.replace chain_key r (base, idxs)
        | _ -> ())
      (Func.all_instrs fn);
    let forward_block (b : Block.t) =
      let known : (Id.t, Id.t) Hashtbl.t = Hashtbl.create 8 in
      let chain_known : (Id.t * Id.t list, Id.t) Hashtbl.t = Hashtbl.create 8 in
      let drop_chain_facts_for base =
        let stale =
          Hashtbl.fold
            (fun ((b', _) as k) _ acc -> if Id.equal b' base then k :: acc else acc)
            chain_known []
        in
        List.iter (Hashtbl.remove chain_known) stale
      in
      let instrs =
        List.map
          (fun (i : Instr.t) ->
            match (i.Instr.result, i.Instr.ty, i.Instr.op) with
            | _, _, Instr.Store (p, v) ->
                (if flags.bug_forward_aliased_store then
                   match Hashtbl.find_opt chain_key p with
                   | Some key ->
                       (* BUG: records the fact under the syntactic key
                          without killing the other keys on the same base *)
                       Hashtbl.replace chain_known key v
                   | None -> drop_chain_facts_for p);
                if List.mem p access_chain_bases then Hashtbl.reset known
                else Hashtbl.replace known p v;
                i
            | _, _, Instr.FunctionCall _ ->
                Hashtbl.reset known;
                Hashtbl.reset chain_known;
                i
            | _, _, Instr.AccessChain _ ->
                (* a fresh interior pointer: drop everything about its base *)
                Hashtbl.reset known;
                i
            | Some r, Some ty, Instr.Load p -> (
                match Hashtbl.find_opt known p with
                | Some v when not (List.mem p access_chain_bases) ->
                    Instr.make ~result:r ~ty (Instr.CopyObject v)
                | _ -> (
                    if not flags.bug_forward_aliased_store then i
                    else
                      match
                        Option.bind (Hashtbl.find_opt chain_key p)
                          (Hashtbl.find_opt chain_known)
                      with
                      | Some v -> Instr.make ~result:r ~ty (Instr.CopyObject v)
                      | None -> i))
            | _ -> i)
          b.Block.instrs
      in
      { b with Block.instrs }
    in
    { fn with Func.blocks = List.map forward_block fn.Func.blocks }
  in
  { m with Module_ir.functions = List.map forward_fn m.Module_ir.functions }

(* ------------------------------------------------------------------ *)
(* Dead store elimination                                              *)

(* Remove stores to function-local variables that are never read: the
   variable's pointer is used only as the destination of stores. *)
let dse m =
  let eliminate_in (fn : Func.t) =
    (* the shared store-only-locals analysis: locals whose every use is as
       a store destination *)
    let write_only = Id.Set.elements (Dataflow.write_only_locals fn) in
    {
      fn with
      Func.blocks =
        List.map
          (fun (b : Block.t) ->
            {
              b with
              Block.instrs =
                List.filter
                  (fun (i : Instr.t) ->
                    match i.Instr.op with
                    | Instr.Store (p, _) -> not (List.mem p write_only)
                    | _ -> true)
                  b.Block.instrs;
            })
          fn.Func.blocks;
    }
  in
  { m with Module_ir.functions = List.map eliminate_in m.Module_ir.functions }

(* Memory-backed cross-check for DSE: every store the pass would delete —
   a store through a pointer in [write_only_locals] — must also be
   unobservable according to the independent {!Spirv_ir.Memory} def-use
   analysis ([observable_store] finds a reachable may-aliasing load).  The
   two analyses are built differently (syntactic use-scan vs. access-path
   reaching-stores), so agreement here is a real check, not a tautology;
   [Optimizer.run_checked] fails the Dse step on any violation. *)
let dse_cross_check m =
  List.concat_map
    (fun (fn : Func.t) ->
      let write_only = Dataflow.write_only_locals fn in
      if Id.Set.is_empty write_only then []
      else
        let avail = Dataflow.Availability.make m fn in
        let mem = Memory.analyze m fn ~avail in
        List.concat_map
          (fun (b : Block.t) ->
            List.concat
              (List.mapi
                 (fun idx (i : Instr.t) ->
                   match i.Instr.op with
                   | Instr.Store (p, _)
                     when Id.Set.mem p write_only
                          && Memory.observable_store mem ~block:b.Block.label
                               ~index:idx ->
                       [
                         Printf.sprintf
                           "dse would delete an observable store through %s \
                            in %s/%s"
                           (Id.to_string p)
                           (Id.to_string fn.Func.id)
                           (Id.to_string b.Block.label);
                       ]
                   | _ -> [])
                 b.Block.instrs))
          fn.Func.blocks)
    m.Module_ir.functions

(* ------------------------------------------------------------------ *)
(* Loop-invariant code motion                                          *)

(* Hoist loop-invariant instructions to the loop's preheader — the unique
   out-of-loop predecessor of the header, when it branches to the header
   unconditionally.  Pure value instructions hoist whenever every operand
   is defined outside the loop (in SSA such a definition necessarily
   dominates the preheader); loads additionally require that the cell
   provably cannot change inside the loop: a direct (never
   access-chained) pointer, no in-loop store to it, no in-loop call.  The
   loop forest and dominator tree come from the shared Dataflow analyses,
   and hoisting moves instructions without touching any terminator, so
   the CFG — and therefore the analysis — stays valid throughout. *)
let hoist_invariant flags m =
  let hoist_fn (fn : Func.t) =
    let av = Dataflow.Availability.make m fn in
    let cfg = Dataflow.Availability.cfg av in
    let dom = Dataflow.Availability.dominance av in
    let forest = Loops.analyze cfg dom in
    if forest.Loops.loops = [] then fn
    else begin
      let def_block : (Id.t, Id.t) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun (b : Block.t) ->
          List.iter
            (fun (i : Instr.t) ->
              match i.Instr.result with
              | Some r -> Hashtbl.replace def_block r b.Block.label
              | None -> ())
            b.Block.instrs)
        fn.Func.blocks;
      let access_chain_bases =
        List.filter_map
          (fun (i : Instr.t) ->
            match i.Instr.op with
            | Instr.AccessChain (base, _) -> Some base
            | _ -> None)
          (Func.all_instrs fn)
      in
      let blocks = ref fn.Func.blocks in
      let process (l : Loops.loop) =
        let preds = Cfg.predecessors cfg l.Loops.header in
        let outside =
          List.filter (fun p -> not (Id.Set.mem p l.Loops.blocks)) preds
        in
        let preheader =
          match outside with
          | [ ph ] -> (
              match
                List.find_opt
                  (fun (b : Block.t) -> Id.equal b.Block.label ph)
                  !blocks
              with
              | Some b -> (
                  match b.Block.terminator with
                  | Block.Branch _ -> Some ph
                  | _ -> None)
              | None -> None)
          | _ -> None
        in
        match preheader with
        | None -> ()
        | Some ph ->
            let in_loop_label lbl = Id.Set.mem lbl l.Loops.blocks in
            let defined_in_loop id =
              match Hashtbl.find_opt def_block id with
              | Some b -> in_loop_label b
              | None -> false (* constant / global / parameter *)
            in
            let loop_blocks () =
              List.filter
                (fun (b : Block.t) -> in_loop_label b.Block.label)
                !blocks
            in
            let loop_has_call =
              List.exists
                (fun (b : Block.t) ->
                  List.exists
                    (fun (i : Instr.t) ->
                      match i.Instr.op with
                      | Instr.FunctionCall _ -> true
                      | _ -> false)
                    b.Block.instrs)
                (loop_blocks ())
            in
            let in_loop_stores p =
              List.concat_map
                (fun (b : Block.t) ->
                  List.mapi (fun idx (i : Instr.t) -> (idx, i)) b.Block.instrs
                  |> List.filter_map (fun (idx, (i : Instr.t)) ->
                         match i.Instr.op with
                         | Instr.Store (q, _) when Id.equal q p ->
                             Some (b.Block.label, idx)
                         | _ -> None))
                (loop_blocks ())
            in
            let hoistable (b : Block.t) idx (i : Instr.t) =
              i.Instr.result <> None
              && (not (List.exists defined_in_loop (Instr.used_ids i)))
              &&
              match i.Instr.op with
              | Instr.Binop _ | Instr.Unop _ | Instr.Select _
              | Instr.CompositeConstruct _ | Instr.CompositeExtract _
              | Instr.CompositeInsert _ | Instr.CopyObject _ ->
                  true
              | Instr.Load p ->
                  (not (List.mem p access_chain_bases))
                  && (not loop_has_call)
                  && (match in_loop_stores p with
                     | [] -> true
                     | stores ->
                         (* the injected bug: a float load whose in-loop
                            stores all sit later in its own block "happens
                            after" them, so it looks invariant — wrong,
                            the block re-executes and rereads the
                            accumulator.  The broken legality check lives
                            in the float path only, so integer induction
                            variables keep the loop terminating. *)
                         flags.bug_hoist_loop_load
                         && (match i.Instr.ty with
                            | Some t ->
                                Module_ir.find_type m t = Some Ty.Float
                            | None -> false)
                         && List.for_all
                              (fun (bl, si) ->
                                Id.equal bl b.Block.label && si > idx)
                              stores)
              | _ -> false
            in
            (* Rounds with a per-round snapshot of the def-site table:
               chains of invariant instructions hoist over successive
               rounds, which also appends them to the preheader in
               dependency order. *)
            let changed = ref true in
            let rounds = ref 0 in
            while !changed && !rounds < 8 do
              incr rounds;
              changed := false;
              let pending = ref [] in
              blocks :=
                List.map
                  (fun (b : Block.t) ->
                    if not (in_loop_label b.Block.label) then b
                    else begin
                      let keep = ref [] in
                      List.iteri
                        (fun idx (i : Instr.t) ->
                          if hoistable b idx i then pending := i :: !pending
                          else keep := i :: !keep)
                        b.Block.instrs;
                      { b with Block.instrs = List.rev !keep }
                    end)
                  !blocks;
              match List.rev !pending with
              | [] -> ()
              | instrs ->
                  changed := true;
                  List.iter
                    (fun (i : Instr.t) ->
                      match i.Instr.result with
                      | Some r -> Hashtbl.replace def_block r ph
                      | None -> ())
                    instrs;
                  blocks :=
                    List.map
                      (fun (b : Block.t) ->
                        if Id.equal b.Block.label ph then
                          { b with Block.instrs = b.Block.instrs @ instrs }
                        else b)
                      !blocks
            done
      in
      List.iter process forest.Loops.loops;
      { fn with Func.blocks = !blocks }
    end
  in
  { m with Module_ir.functions = List.map hoist_fn m.Module_ir.functions }

(* ------------------------------------------------------------------ *)
(* Inlining                                                            *)

let inline flags m =
  let is_inlinable (g : Func.t) =
    (not (Func.equal_control g.Func.control Func.DontInline))
    &&
    match g.Func.blocks with
    | [ body ] -> (
        match body.Block.terminator with
        | Block.ReturnValue _ ->
            List.for_all
              (fun (i : Instr.t) ->
                match i.Instr.op with
                | Instr.Variable _ | Instr.Phi _ -> false
                | _ -> true)
              body.Block.instrs
        | _ -> false)
    | _ -> false
  in
  let bound = ref m.Module_ir.id_bound in
  let fresh () =
    let id = !bound in
    incr bound;
    id
  in
  let inline_into (fn : Func.t) =
    let inline_block (b : Block.t) =
      let instrs =
        List.concat_map
          (fun (i : Instr.t) ->
            match (i.Instr.result, i.Instr.op) with
            | Some call_id, Instr.FunctionCall (callee, args) -> (
                match Module_ir.find_function m callee with
                | Some g when is_inlinable g && not (Id.equal g.Func.id fn.Func.id) -> (
                    let args =
                      if
                        flags.bug_inline_swaps_const_args
                        && List.length args >= 2
                        &&
                        match args with
                        | a0 :: a1 :: _ ->
                            Module_ir.find_constant m a0 <> None
                            && Module_ir.find_constant m a1 <> None
                            && Module_ir.type_of_id m a0 = Module_ir.type_of_id m a1
                        | _ -> false
                      then
                        match args with
                        | a0 :: a1 :: rest -> a1 :: a0 :: rest
                        | _ -> args
                      else args
                    in
                    match g.Func.blocks with
                    | [ body ] -> (
                        match body.Block.terminator with
                        | Block.ReturnValue ret_val ->
                            let param_map =
                              List.map2
                                (fun (p : Func.param) a -> (p.Func.param_id, a))
                                g.Func.params args
                            in
                            let result_map =
                              List.filter_map
                                (fun (j : Instr.t) ->
                                  Option.map (fun r -> (r, fresh ())) j.Instr.result)
                                body.Block.instrs
                            in
                            let map = param_map @ result_map in
                            let remap id =
                              match List.assoc_opt id map with Some x -> x | None -> id
                            in
                            let body_instrs =
                              List.map
                                (fun (j : Instr.t) ->
                                  let j' =
                                    Instr.
                                      {
                                        result = Option.map remap j.result;
                                        ty = j.ty;
                                        op = j.op;
                                      }
                                  in
                                  (* remap operands *)
                                  List.fold_left
                                    (fun (acc : Instr.t) (old_id, new_id) ->
                                      Instr.substitute_uses ~old_id ~new_id acc)
                                    j' map)
                                body.Block.instrs
                            in
                            let epilogue =
                              {
                                Instr.result = Some call_id;
                                Instr.ty = i.Instr.ty;
                                Instr.op = Instr.CopyObject (remap ret_val);
                              }
                            in
                            body_instrs @ [ epilogue ]
                        | _ -> [ i ])
                    | _ -> [ i ])
                | _ -> [ i ])
            | _ -> [ i ])
          b.Block.instrs
      in
      { b with Block.instrs }
    in
    { fn with Func.blocks = List.map inline_block fn.Func.blocks }
  in
  let m' =
    { m with Module_ir.functions = List.map inline_into m.Module_ir.functions }
  in
  { m' with Module_ir.id_bound = !bound }
