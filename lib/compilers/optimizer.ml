(** Pass pipelines: the [-O]-style standard optimization sequence and the
    per-target pipelines. *)

open Spirv_ir

type pass_name =
  | Const_fold
  | Copy_prop
  | Dce
  | Simplify_cfg
  | Phi_simplify
  | Cse
  | Inline
  | Store_forward
  | Dse
  | Hoist_invariant
[@@deriving show { with_path = false }, eq]

let run_pass flags m = function
  | Const_fold -> Passes.const_fold flags m
  | Copy_prop -> Passes.copy_prop m
  | Dce -> Passes.dce m
  | Simplify_cfg -> Passes.simplify_cfg flags m
  | Phi_simplify -> Passes.phi_simplify m
  | Cse -> Passes.cse m
  | Inline -> Passes.inline flags m
  | Store_forward -> Passes.store_forward flags m
  | Dse -> Passes.dse m
  | Hoist_invariant -> Passes.hoist_invariant flags m

let run ?(flags = Passes.no_bugs) pipeline m =
  List.fold_left (run_pass flags) m pipeline

(* Debug-mode pipeline: after every pass, re-validate the module and lint
   it through the same shared Dataflow analyses the fuzzer's contract
   checker uses.  A pass that produces an invalid or lint-dirty module is a
   compiler bug even when no backend happens to miscompile the result.
   Validation failures are recorded and the pipeline keeps going on the
   offending module, so one run reports every failing pass (the head of the
   list is the original culprit); a pass that crashes outright ends the
   run, since there is no module left to continue with. *)
exception Checked_crash of (pass_name * string) list

let run_checked ?(flags = Passes.no_bugs) pipeline m =
  try
    let m, rev_failures =
      List.fold_left
      (fun (m, failures) pass ->
        match run_pass flags m pass with
        | m' ->
            let failure =
              match Validate.check m' with
              | Error (e :: _) ->
                  Some (pass, "validate: " ^ Validate.error_to_string e)
              | Ok () | Error [] -> (
                  match Lint.errors (Lint.check_module m') with
                  | fd :: _ -> Some (pass, "lint: " ^ Lint.to_string fd)
                  | [] -> (
                      (* Memory-backed DSE soundness: every store the pass
                         deleted must be unobservable to the independent
                         access-path def-use analysis too (checked on the
                         input module, where the stores still exist) *)
                      match pass with
                      | Dse -> (
                          match Passes.dse_cross_check m with
                          | v :: _ -> Some (pass, "memory: " ^ v)
                          | [] -> None)
                      | _ -> None))
            in
            let failures =
              match failure with Some f -> f :: failures | None -> failures
            in
            (m', failures)
          | exception Opt_util.Compiler_crash signature ->
              raise (Checked_crash ((pass, "crash: " ^ signature) :: failures)))
        (m, []) pipeline
    in
    match List.rev rev_failures with
    | [] -> Ok m
    | failures -> Error failures
  with Checked_crash failures -> Error (List.rev failures)

(** The standard [-O] pipeline, run twice like spirv-opt's iterated
    optimization loop. *)
let standard =
  let once =
    [ Inline; Const_fold; Copy_prop; Simplify_cfg; Phi_simplify; Copy_prop;
      Store_forward; Copy_prop; Cse; Copy_prop; Dse; Dce ]
  in
  once @ once

(** Optimize a module with default (bug-free) flags — the "apply spirv-opt
    with the -O argument" step of the paper's test pipeline. *)
let optimize m : (Module_ir.t, string) result =
  match run standard m with
  | m' -> Ok m'
  | exception Opt_util.Compiler_crash signature -> Error signature

(* Translation-validated pipeline: run the validator between every pair of
   consecutive pass outputs and name the guilty pass of the first
   mismatch.  [check] defaults to the unmemoized Tv.check_pass; the
   harness engine substitutes its digest-memoized variant. *)
type tv_report = {
  tv_module : Module_ir.t;
  tv_steps : (pass_name * Tv.verdict) list;
  tv_guilty : pass_name option;
}

let run_tv ?(flags = Passes.no_bugs) ?(check = Tv.check_pass) pipeline m :
    (tv_report, string) result =
  try
    let m', rev_steps =
      List.fold_left
        (fun (m, steps) pass ->
          let m' = run_pass flags m pass in
          (m', (pass, check m m') :: steps))
        (m, []) pipeline
    in
    let tv_steps = List.rev rev_steps in
    let tv_guilty =
      List.find_map
        (function p, Tv.Mismatch _ -> Some p | _ -> None)
        tv_steps
    in
    Ok { tv_module = m'; tv_steps; tv_guilty }
  with Opt_util.Compiler_crash signature -> Error signature
