(** Pass pipelines: the [-O]-style standard optimization sequence and the
    per-target pipelines. *)

open Spirv_ir

type pass_name =
  | Const_fold
  | Copy_prop
  | Dce
  | Simplify_cfg
  | Phi_simplify
  | Cse
  | Inline
  | Store_forward
  | Dse
[@@deriving show { with_path = false }, eq]

let run_pass flags m = function
  | Const_fold -> Passes.const_fold flags m
  | Copy_prop -> Passes.copy_prop m
  | Dce -> Passes.dce m
  | Simplify_cfg -> Passes.simplify_cfg flags m
  | Phi_simplify -> Passes.phi_simplify m
  | Cse -> Passes.cse m
  | Inline -> Passes.inline flags m
  | Store_forward -> Passes.store_forward m
  | Dse -> Passes.dse m

let run ?(flags = Passes.no_bugs) pipeline m =
  List.fold_left (run_pass flags) m pipeline

(* Debug-mode pipeline: after every pass, re-validate the module and lint
   it through the same shared Dataflow analyses the fuzzer's contract
   checker uses, reporting the first offending pass.  A pass that produces
   an invalid or lint-dirty module is a compiler bug even when no backend
   happens to miscompile the result. *)
let run_checked ?(flags = Passes.no_bugs) pipeline m =
  List.fold_left
    (fun acc pass ->
      match acc with
      | Error _ as e -> e
      | Ok m -> (
          let m' = run_pass flags m pass in
          match Validate.check m' with
          | Error (e :: _) ->
              Error (pass, "validate: " ^ Validate.error_to_string e)
          | Ok () | Error [] -> (
              match Lint.errors (Lint.check_module m') with
              | fd :: _ -> Error (pass, "lint: " ^ Lint.to_string fd)
              | [] -> Ok m')))
    (Ok m) pipeline

(** The standard [-O] pipeline, run twice like spirv-opt's iterated
    optimization loop. *)
let standard =
  let once =
    [ Inline; Const_fold; Copy_prop; Simplify_cfg; Phi_simplify; Copy_prop;
      Store_forward; Copy_prop; Cse; Copy_prop; Dse; Dce ]
  in
  once @ once

(** Optimize a module with default (bug-free) flags — the "apply spirv-opt
    with the -O argument" step of the paper's test pipeline. *)
let optimize m : (Module_ir.t, string) result =
  match run standard m with
  | m' -> Ok m'
  | exception Opt_util.Compiler_crash signature -> Error signature
