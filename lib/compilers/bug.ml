(** Injected compiler bugs.

    Each of the 9 targets (Table 2) carries a roster of latent bugs.  Crash
    bugs are structural predicates over the module being compiled; when one
    fires the "compiler" aborts with a stable crash signature (what gfauto's
    signature extraction would recover from a crash report).  Miscompilation
    bugs are rewrites applied to the optimized module before execution —
    wrong code emitted for particular program shapes.

    Triggers are chosen to be reachable from the transformations the fuzzers
    apply (dead blocks, φ-nodes, OpKill, block reordering, uniform
    obfuscation, ...) while being absent from the lowered reference corpus,
    mirroring how real driver bugs hide in paths that everyday shaders never
    exercise. *)

open Spirv_ir

type phase =
  | Before_opt  (** checked on the module as submitted (front-end bugs) *)
  | After_opt   (** checked on the optimized module (back-end bugs) *)

type crash_spec = {
  bug_id : string;
  signature : string;
  phase : phase;
  trigger : Module_ir.t -> bool;
}

type miscompile_spec = {
  mc_bug_id : string;
  rewrite : Module_ir.t -> Module_ir.t;  (** identity when the shape is absent *)
}

(* ------------------------------------------------------------------ *)
(* Structural probes                                                   *)

let exists_function m p = List.exists p m.Module_ir.functions

let exists_block m p =
  exists_function m (fun (f : Func.t) -> List.exists (p f) f.Func.blocks)

let exists_instr m p =
  exists_block m (fun _ (b : Block.t) -> List.exists p b.Block.instrs)

(* a call to a function transplanted from a donor module (AddFunction names
   them "*_donated"): drivers with lazy module linking mishandle such
   late-bound functions *)
let has_donated_call m =
  exists_instr m (fun (i : Instr.t) ->
      match i.Instr.op with
      | Instr.FunctionCall (callee, _) -> (
          match Module_ir.find_function m callee with
          | Some g ->
              let n = g.Func.name and suffix = "_donated" in
              String.length n >= String.length suffix
              && String.sub n (String.length n - String.length suffix)
                   (String.length suffix)
                 = suffix
          | None -> false)
      | _ -> false)

let has_dontinline_call m =
  exists_instr m (fun (i : Instr.t) ->
      match i.Instr.op with
      | Instr.FunctionCall (callee, _) -> (
          match Module_ir.find_function m callee with
          | Some g -> Func.equal_control g.Func.control Func.DontInline
          | None -> false)
      | _ -> false)

let max_phi_arity m =
  List.fold_left
    (fun acc (f : Func.t) ->
      List.fold_left
        (fun acc (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Phi inc -> max acc (List.length inc)
          | _ -> acc)
        acc (Func.all_instrs f))
    0 m.Module_ir.functions

let has_kill m =
  exists_block m (fun _ (b : Block.t) -> b.Block.terminator = Block.Kill)

let max_blocks m =
  List.fold_left
    (fun acc (f : Func.t) -> max acc (List.length f.Func.blocks))
    0 m.Module_ir.functions

let max_params m =
  List.fold_left
    (fun acc (f : Func.t) -> max acc (List.length f.Func.params))
    0 m.Module_ir.functions

let output_store_count m =
  let is_output_ptr id =
    match Module_ir.type_of_id m id with
    | Some ty -> (
        match Module_ir.find_type m ty with
        | Some (Ty.Pointer (Ty.Output, _)) -> true
        | _ -> false)
    | None -> false
  in
  List.fold_left
    (fun acc (f : Func.t) ->
      max acc
        (List.length
           (List.filter
              (fun (i : Instr.t) ->
                match i.Instr.op with
                | Instr.Store (p, _) -> is_output_ptr p
                | _ -> false)
              (Func.all_instrs f))))
    0 m.Module_ir.functions

let max_copy_chain m =
  let source = Hashtbl.create 16 in
  List.iter
    (fun (f : Func.t) ->
      List.iter
        (fun (i : Instr.t) ->
          match (i.Instr.result, i.Instr.op) with
          | Some r, Instr.CopyObject x -> Hashtbl.replace source r x
          | _ -> ())
        (Func.all_instrs f))
    m.Module_ir.functions;
  Hashtbl.fold
    (fun r _ acc ->
      let rec depth id n =
        if n > 64 then n
        else match Hashtbl.find_opt source id with Some x -> depth x (n + 1) | None -> n
      in
      max acc (depth r 0))
    source 0

let has_deep_extract m =
  exists_instr m (fun (i : Instr.t) ->
      match i.Instr.op with
      | Instr.CompositeExtract (_, path) -> List.length path >= 2
      | Instr.CompositeInsert (_, _, path) -> List.length path >= 2
      | _ -> false)

let has_unreachable_block m =
  exists_function m (fun (f : Func.t) ->
      let cfg = Cfg.of_func f in
      List.exists (fun (b : Block.t) -> not (Cfg.is_reachable cfg b.Block.label)) f.Func.blocks)

let has_select_on_bool m =
  exists_instr m (fun (i : Instr.t) ->
      match (i.Instr.op, i.Instr.ty) with
      | Instr.Select _, Some ty -> Module_ir.find_type m ty = Some Ty.Bool
      | _ -> false)

let has_undef m =
  exists_instr m (fun (i : Instr.t) -> i.Instr.op = Instr.Undef)

(* retreating edges: a branch to a block at an earlier or equal syntactic
   position — loops, whether source-level or fuzzer-created *)
let loop_count m =
  List.fold_left
    (fun acc (f : Func.t) ->
      let pos = Hashtbl.create 16 in
      List.iteri (fun i (b : Block.t) -> Hashtbl.replace pos b.Block.label i) f.Func.blocks;
      let edges =
        List.concat_map
          (fun (b : Block.t) ->
            List.map (fun t -> (b.Block.label, t)) (Block.successors b))
          f.Func.blocks
      in
      acc
      + List.length
          (List.filter
             (fun (u, v) ->
               match (Hashtbl.find_opt pos u, Hashtbl.find_opt pos v) with
               | Some pu, Some pv -> pv <= pu
               | _ -> false)
             edges))
    0 m.Module_ir.functions

(* length of the longest chain of empty, unconditionally-branching blocks:
   b1 -> b2 -> b3 with every bi instruction-free.  Reference shaders produce
   chains of at most two empty merge blocks; split/wrap transformations make
   longer ones. *)
let max_empty_chain m =
  List.fold_left
    (fun acc (f : Func.t) ->
      let is_empty_branch label =
        match Func.find_block f label with
        | Some b -> (
            match (b.Block.instrs, b.Block.terminator) with
            | [], Block.Branch next -> Some next
            | _ -> None)
        | None -> None
      in
      let rec chain label n =
        if n > 16 then n
        else
          match is_empty_branch label with
          | Some next -> chain next (n + 1)
          | None -> n
      in
      List.fold_left
        (fun acc (b : Block.t) -> max acc (chain b.Block.label 0))
        acc f.Func.blocks)
    0 m.Module_ir.functions

let has_constant_condition m =
  exists_block m (fun _ (b : Block.t) ->
      match b.Block.terminator with
      | Block.BranchConditional (c, _, _) -> Module_ir.find_constant m c <> None
      | _ -> false)

(* non-fallthrough layout: a block with successors none of which is the
   syntactically next block (the shape MoveBlockDown creates) *)
let non_fallthrough_blocks (f : Func.t) =
  let rec go acc = function
    | [] | [ _ ] -> List.rev acc
    | (b : Block.t) :: (next : Block.t) :: rest ->
        let succs = Block.successors b in
        let acc =
          if succs <> [] && not (List.mem next.Block.label succs) then b.Block.label :: acc
          else acc
        in
        go acc (next :: rest)
  in
  go [] f.Func.blocks

let non_fallthrough_count m =
  List.fold_left
    (fun acc f -> acc + List.length (non_fallthrough_blocks f))
    0 m.Module_ir.functions

(* a comparison fed directly by a load from a Uniform pointer — the shape
   ReplaceConstantWithUniform produces *)
let has_uniform_fed_condition m =
  exists_function m (fun (f : Func.t) ->
      let uniform_loads =
        List.filter_map
          (fun (i : Instr.t) ->
            match (i.Instr.result, i.Instr.op) with
            | Some r, Instr.Load p -> (
                match Module_ir.type_of_id m p with
                | Some ty -> (
                    match Module_ir.find_type m ty with
                    | Some (Ty.Pointer (Ty.Uniform, _)) -> Some r
                    | _ -> None)
                | None -> None)
            | _ -> None)
          (Func.all_instrs f)
      in
      List.length uniform_loads >= 2
      && List.exists
           (fun (b : Block.t) ->
             match b.Block.terminator with
             | Block.BranchConditional (c, _, _) ->
                 List.exists
                   (fun (i : Instr.t) ->
                     i.Instr.result = Some c
                     && List.length
                          (List.filter
                             (fun u -> List.mem u uniform_loads)
                             (Instr.used_ids i))
                        >= 2)
                   b.Block.instrs
             | _ -> false)
           f.Func.blocks)

(* ------------------------------------------------------------------ *)
(* Miscompilation rewrites                                             *)

let swap_branch (b : Block.t) =
  match b.Block.terminator with
  | Block.BranchConditional (c, t, f) when not (Id.equal t f) ->
      { b with Block.terminator = Block.BranchConditional (c, f, t) }
  | _ -> b

let map_functions m f = { m with Module_ir.functions = List.map f m.Module_ir.functions }

(** Figure 8b analog: the backend mis-lowers branches in blocks laid out
    without fallthrough — conditional branches take the wrong arm, and
    unconditional branches "fall through" into the syntactically next block
    (a missing-jump code layout bug). *)
let rewrite_block_order_sensitive m =
  map_functions m (fun (fn : Func.t) ->
      let bad = non_fallthrough_blocks fn in
      let next_of =
        let rec pairs = function
          | (a : Block.t) :: (b : Block.t) :: rest ->
              (a.Block.label, b.Block.label) :: pairs (b :: rest)
          | _ -> []
        in
        pairs fn.Func.blocks
      in
      {
        fn with
        Func.blocks =
          List.map
            (fun (b : Block.t) ->
              if not (List.mem b.Block.label bad) then b
              else
                match b.Block.terminator with
                | Block.BranchConditional _ -> swap_branch b
                | Block.Branch _ -> (
                    match List.assoc_opt b.Block.label next_of with
                    | Some next ->
                        { b with Block.terminator = Block.Branch next }
                    | None -> b)
                | Block.Return | Block.ReturnValue _ | Block.Kill
                | Block.Unreachable ->
                    b)
            fn.Func.blocks;
      })

(** Figure 8a analog: conditional branches whose condition is a φ (the shape
    PropagateInstructionUp creates) take the wrong arm. *)
let rewrite_phi_condition m =
  map_functions m (fun (fn : Func.t) ->
      {
        fn with
        Func.blocks =
          List.map
            (fun (b : Block.t) ->
              match b.Block.terminator with
              | Block.BranchConditional (c, _, _) ->
                  let cond_is_phi =
                    List.exists
                      (fun (i : Instr.t) -> i.Instr.result = Some c && Instr.is_phi i)
                      b.Block.instrs
                  in
                  if cond_is_phi then swap_branch b else b
              | _ -> b)
            fn.Func.blocks;
      })

(** Positional φ lowering: a 2-entry φ whose entries are not in CFG
    predecessor order reads the wrong slot (PermutePhiEntries trigger). *)
let rewrite_phi_positional m =
  map_functions m (fun (fn : Func.t) ->
      let cfg = Cfg.of_func fn in
      {
        fn with
        Func.blocks =
          List.map
            (fun (b : Block.t) ->
              let preds = Cfg.predecessors cfg b.Block.label in
              {
                b with
                Block.instrs =
                  List.map
                    (fun (i : Instr.t) ->
                      match i.Instr.op with
                      | Instr.Phi [ (v1, p1); (v2, p2) ]
                        when preds = [ p2; p1 ] && not (Id.equal p1 p2) ->
                          (* entries listed in the reverse of pred order:
                             the buggy backend reads positionally *)
                          { i with Instr.op = Instr.Phi [ (v2, p1); (v1, p2) ] }
                      | _ -> i)
                    b.Block.instrs;
              })
            fn.Func.blocks;
      })

(** Component indexing off-by-one for high vector components. *)
let rewrite_extract_high m =
  map_functions m (fun (fn : Func.t) ->
      {
        fn with
        Func.blocks =
          List.map
            (fun (b : Block.t) ->
              {
                b with
                Block.instrs =
                  List.map
                    (fun (i : Instr.t) ->
                      match i.Instr.op with
                      | Instr.CompositeExtract (src, [ k ]) when k >= 2 ->
                          { i with Instr.op = Instr.CompositeExtract (src, [ k - 1 ]) }
                      | _ -> i)
                    b.Block.instrs;
              })
            fn.Func.blocks;
      })

(** Conditions fed by direct uniform loads are evaluated inverted. *)
let rewrite_uniform_condition m =
  let uniform_load_results =
    List.concat_map
      (fun (fn : Func.t) ->
        List.filter_map
          (fun (i : Instr.t) ->
            match (i.Instr.result, i.Instr.op) with
            | Some r, Instr.Load p -> (
                match Module_ir.type_of_id m p with
                | Some ty -> (
                    match Module_ir.find_type m ty with
                    | Some (Ty.Pointer (Ty.Uniform, _)) -> Some r
                    | _ -> None)
                | None -> None)
            | _ -> None)
          (Func.all_instrs fn))
      m.Module_ir.functions
  in
  map_functions m (fun (fn : Func.t) ->
      {
        fn with
        Func.blocks =
          List.map
            (fun (b : Block.t) ->
              match b.Block.terminator with
              | Block.BranchConditional (c, _, _) ->
                  let fed_by_two_uniform_loads =
                    List.exists
                      (fun (i : Instr.t) ->
                        i.Instr.result = Some c
                        && List.length
                             (List.filter
                                (fun u -> List.mem u uniform_load_results)
                                (Instr.used_ids i))
                           >= 2)
                      b.Block.instrs
                  in
                  if fed_by_two_uniform_loads then swap_branch b else b
              | _ -> b)
            fn.Func.blocks;
      })

(* ------------------------------------------------------------------ *)
(* The catalogue                                                       *)

let crash ~id ~signature ~phase trigger =
  { bug_id = id; signature; phase; trigger }

let all_crash_bugs =
  [
    crash ~id:"donated-call"
      ~signature:"linker: unresolved import in late-bound module"
      ~phase:Before_opt has_donated_call;
    crash ~id:"dontinline-call"
      ~signature:"fatal: emitCall: callee marked noinline was not inlined"
      ~phase:After_opt has_dontinline_call;
    crash ~id:"phi-arity-3"
      ~signature:"assertion failed: phi->NumOperands() <= 2 in SsaRewriter::FinalizePhis"
      ~phase:After_opt
      (fun m -> max_phi_arity m >= 3);
    crash ~id:"phi-arity-4"
      ~signature:"backend: phi lowering register exhaustion (arity > 3)"
      ~phase:After_opt
      (fun m -> max_phi_arity m >= 4);
    crash ~id:"kill-complex-8"
      ~signature:"internal error: discard lowering in complex control flow"
      ~phase:After_opt
      (fun m -> has_kill m && max_blocks m >= 8);
    crash ~id:"kill-frontend"
      ~signature:"shader parser: OpKill outside uniform control flow"
      ~phase:Before_opt
      (fun m -> has_kill m && max_blocks m >= 16);
    crash ~id:"many-blocks-28"
      ~signature:"stack overflow in DominatorTree::Build"
      ~phase:After_opt
      (fun m -> max_blocks m >= 28);
    crash ~id:"many-blocks-40"
      ~signature:"SPIRV-Cross style structurizer: irreducible region too large"
      ~phase:Before_opt
      (fun m -> max_blocks m >= 40);
    crash ~id:"many-params-4"
      ~signature:"register allocator: cannot spill >3 formal parameters"
      ~phase:After_opt
      (fun m -> max_params m >= 4);
    crash ~id:"multi-output-store"
      ~signature:"framebuffer writeback conflict: multiple color writes"
      ~phase:After_opt
      (fun m -> output_store_count m >= 3);
    crash ~id:"copy-chain-3"
      ~signature:"value numbering diverged on OpCopyObject chain"
      ~phase:Before_opt
      (fun m -> max_copy_chain m >= 3);
    crash ~id:"deep-extract"
      ~signature:"OpCompositeExtract with multiple indices not implemented"
      ~phase:Before_opt has_deep_extract;
    crash ~id:"unreachable-block"
      ~signature:"CFGAnalysis: malformed function: unreachable basic block"
      ~phase:Before_opt has_unreachable_block;
    crash ~id:"select-bool"
      ~signature:"legalizer: OpSelect on i1 operands unsupported"
      ~phase:After_opt has_select_on_bool;
    crash ~id:"undef-isel"
      ~signature:"undef value reached instruction selection"
      ~phase:After_opt has_undef;
    crash ~id:"empty-chain-3"
      ~signature:"layout: fallthrough chain of empty basic blocks"
      ~phase:Before_opt
      (fun m -> max_empty_chain m >= 3);
    crash ~id:"loop-count-4"
      ~signature:"register pressure: natural loop budget exceeded"
      ~phase:Before_opt
      (fun m -> loop_count m >= 4);
    crash ~id:"loop-count-6"
      ~signature:"scheduler: too many back-edges in shader"
      ~phase:Before_opt
      (fun m -> loop_count m >= 6);
    crash ~id:"const-cond-frontend"
      ~signature:"shader parser: conditional branch on constant"
      ~phase:Before_opt has_constant_condition;
    crash ~id:"uniform-cond-backend"
      ~signature:"uniform analysis: branch divergence on raw descriptor load"
      ~phase:After_opt has_uniform_fed_condition;
  ]

let find_crash_bug id =
  List.find_opt (fun b -> String.equal b.bug_id id) all_crash_bugs

let all_miscompile_bugs =
  [
    { mc_bug_id = "mc-block-order"; rewrite = rewrite_block_order_sensitive };
    { mc_bug_id = "mc-phi-cond"; rewrite = rewrite_phi_condition };
    { mc_bug_id = "mc-phi-positional"; rewrite = rewrite_phi_positional };
    { mc_bug_id = "mc-extract-high"; rewrite = rewrite_extract_high };
    { mc_bug_id = "mc-uniform-cond"; rewrite = rewrite_uniform_condition };
  ]

let find_miscompile_bug id =
  List.find_opt (fun b -> String.equal b.mc_bug_id id) all_miscompile_bugs

(* ------------------------------------------------------------------ *)
(* Optimizer-hosted pass bugs                                          *)

type pass_bug_kind = Crashes | Invalid_ir | Miscompiles

let pass_bug_kind_to_string = function
  | Crashes -> "crash"
  | Invalid_ir -> "invalid-ir"
  | Miscompiles -> "miscompile"

type pass_bug_spec = {
  pb_id : string;
  pb_pass : Optimizer.pass_name;
  pb_kind : pass_bug_kind;
  pb_enable : Passes.flags -> Passes.flags;
  pb_enabled : Passes.flags -> bool;
}

let pass_bug ~id ~pass ~kind enable enabled =
  { pb_id = id; pb_pass = pass; pb_kind = kind; pb_enable = enable;
    pb_enabled = enabled }

let all_pass_bugs =
  [
    pass_bug ~id:"bug_fold_div_crash" ~pass:Optimizer.Const_fold
      ~kind:Crashes
      (fun f -> { f with Passes.bug_fold_div_crash = true })
      (fun f -> f.Passes.bug_fold_div_crash);
    pass_bug ~id:"bug_keep_stale_phi_entries" ~pass:Optimizer.Simplify_cfg
      ~kind:Invalid_ir
      (fun f -> { f with Passes.bug_keep_stale_phi_entries = true })
      (fun f -> f.Passes.bug_keep_stale_phi_entries);
    pass_bug ~id:"bug_fold_sub_zero" ~pass:Optimizer.Const_fold
      ~kind:Miscompiles
      (fun f -> { f with Passes.bug_fold_sub_zero = true })
      (fun f -> f.Passes.bug_fold_sub_zero);
    pass_bug ~id:"bug_inline_swaps_const_args" ~pass:Optimizer.Inline
      ~kind:Miscompiles
      (fun f -> { f with Passes.bug_inline_swaps_const_args = true })
      (fun f -> f.Passes.bug_inline_swaps_const_args);
    pass_bug ~id:"bug_hoist_loop_load" ~pass:Optimizer.Hoist_invariant
      ~kind:Miscompiles
      (fun f -> { f with Passes.bug_hoist_loop_load = true })
      (fun f -> f.Passes.bug_hoist_loop_load);
    pass_bug ~id:"bug_forward_aliased_store" ~pass:Optimizer.Store_forward
      ~kind:Miscompiles
      (fun f -> { f with Passes.bug_forward_aliased_store = true })
      (fun f -> f.Passes.bug_forward_aliased_store);
  ]

let find_pass_bug id =
  List.find_opt (fun b -> String.equal b.pb_id id) all_pass_bugs
