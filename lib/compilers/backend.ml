(** Running a test case on a target: the "compile and execute" box of
    Figure 1.

    The front-end bug predicates are checked on the module as submitted;
    the optimizer pipeline runs (possibly crashing via injected optimizer
    bugs); back-end predicates are checked on the optimized module; the
    optimizer's output is validated (catching the "emits illegal SPIR-V" bug
    class); and, for device targets, the miscompilation rewrites are applied
    before executing on the fragment grid. *)

open Spirv_ir

type run_result =
  | Rendered of Image.t        (** device executed the module *)
  | Compiled_ok                (** tooling target, no execution *)
  | Crashed of string          (** crash signature *)

(** Ground truth for experiments: which injected bug produced a crash
    signature (None for real faults such as validation failures, which get
    a derived signature).

    [render] is the execution kernel applied to the post-miscompile module;
    it defaults to the reference interpreter.  The harness engine passes
    the flat compiled kernel here (with its per-digest program cache) —
    any substitute must be observably bit-identical to [Interp.render]. *)
let run ?(render = fun m input -> Interp.render m input) (t : Target.t)
    (m : Module_ir.t) (input : Input.t) : run_result =
  let check_phase phase m =
    List.find_map
      (fun id ->
        match Bug.find_crash_bug id with
        | Some spec when spec.Bug.phase = phase && spec.Bug.trigger m ->
            Some spec.Bug.signature
        | _ -> None)
      t.Target.crash_bug_ids
  in
  match check_phase Bug.Before_opt m with
  | Some signature -> Crashed signature
  | None -> (
      match Optimizer.run ~flags:t.Target.opt_flags t.Target.pipeline m with
      | exception Opt_util.Compiler_crash signature -> Crashed signature
      | optimized -> (
          match check_phase Bug.After_opt optimized with
          | Some signature -> Crashed signature
          | None -> (
              match Validate.check optimized with
              | Error (e :: _) ->
                  Crashed
                    ("optimizer emitted invalid module: " ^ Validate.error_to_string e)
              | Error [] -> Crashed "optimizer emitted invalid module"
              | Ok () ->
                  if not t.Target.executes then Compiled_ok
                  else begin
                    let corrupted =
                      List.fold_left
                        (fun m id ->
                          match Bug.find_miscompile_bug id with
                          | Some spec -> spec.Bug.rewrite m
                          | None -> m)
                        optimized t.Target.miscompile_bug_ids
                    in
                    match render corrupted input with
                    | Ok img -> Rendered img
                    | Error Interp.Step_limit_exceeded ->
                        Crashed "device lost (timeout)"
                    | Error (Interp.Invalid_module _) ->
                        (* wrong code emitted by a miscompilation bug can
                           fault at execution time; real drivers report this
                           as a device loss, with no more detail *)
                        Crashed "device lost (fault while executing shader)"
                    | Error (Interp.Missing_uniform u) ->
                        Crashed ("device lost (missing binding " ^ u ^ ")")
                  end)))

(** Compile only — used when optimizing references before fuzzing (the
    paper also feeds spirv-opt-optimized copies of each reference). *)
let optimize_reference m =
  match Optimizer.optimize m with Ok m' -> Some m' | Error _ -> None
