(** Running a test case on a target — the "compile and execute" box of
    Figure 1.

    Order of play: front-end crash predicates on the module as submitted;
    the target's optimizer pipeline (possibly crashing via injected
    optimizer bugs); back-end crash predicates on the optimized module;
    validation of the optimizer's output (the "emits illegal SPIR-V" bug
    class surfaces here as a crash signature); then, for device targets,
    the target's miscompilation rewrites are applied and the result executed
    over the input's fragment grid. *)

open Spirv_ir

type run_result =
  | Rendered of Image.t  (** device targets: the image produced *)
  | Compiled_ok          (** tooling targets (spirv-opt): no execution *)
  | Crashed of string    (** a crash signature *)

val run :
  ?render:(Module_ir.t -> Input.t -> (Image.t, Interp.trap) result) ->
  Target.t ->
  Module_ir.t ->
  Input.t ->
  run_result
(** [render] executes the post-miscompile module over the fragment grid;
    defaults to {!Interp.render}.  The harness engine substitutes the flat
    compiled kernel ({!Compile.render_batch} behind a per-digest program
    cache); any substitute must be observably bit-identical to the
    reference interpreter. *)

val optimize_reference : Module_ir.t -> Module_ir.t option
(** Clean [-O] for preparing optimized copies of reference shaders. *)
