#!/bin/sh
# Minimal CI gate: build, run the tier-1 test suite, and enforce the
# engine-layer invariant that no module-level mutable run cache sneaks back
# into the harness (all compile-and-execute must flow through Engine.t).
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest

# formatting gate: only enforced when an .ocamlformat file is present
# (dune build @fmt fails loudly without one)
if [ -f .ocamlformat ]; then
  dune build @fmt
fi

if grep -rn "baseline_cache" lib/harness; then
  echo "CI: found a module-level baseline_cache in lib/harness —" \
       "runs must flow through Engine.t" >&2
  exit 1
fi

echo "CI: build + tests + engine-invariant checks passed"
