#!/bin/sh
# Minimal CI gate: build, run the tier-1 test suite, and enforce the
# engine-layer invariant that no module-level mutable run cache sneaks back
# into the harness (all compile-and-execute must flow through Engine.t).
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest

# formatting gate: only enforced when an .ocamlformat file is present
# (dune build @fmt fails loudly without one)
if [ -f .ocamlformat ]; then
  dune build @fmt
fi

if grep -rn "baseline_cache" lib/harness; then
  echo "CI: found a module-level baseline_cache in lib/harness —" \
       "runs must flow through Engine.t" >&2
  exit 1
fi

# compiled-kernel invariant: the engine hot path executes through the flat
# compiled kernel (one-time lowering, per-digest program cache); the
# tree-walking interpreter stays out of lib/harness — it is the
# differential oracle behind --reference-interp, reached only via the
# default render hook inside Compilers.Backend
if grep -n "Interp\.render" lib/harness/*.ml; then
  echo "CI: Interp.render on the harness hot path — renders must go" \
       "through Spirv_ir.Compile.render_batch" >&2
  exit 1
fi
if ! grep -q "Compile\.render_batch" lib/harness/engine.ml; then
  echo "CI: Harness.Engine no longer uses the compiled execution kernel" >&2
  exit 1
fi

# shared-analysis invariant: dominance/def-use facts are derived once, in
# Spirv_ir.Dataflow; the validator, lint and Analysis consume them rather
# than building their own CFG or dominator tree
if grep -n "Dominance\.compute" lib/spirv_ir/*.ml lib/compilers/*.ml \
     lib/spirv_fuzz/*.ml | grep -v "^lib/spirv_ir/dataflow\.ml:" \
     | grep -v "^lib/spirv_ir/dominance\.ml:"; then
  echo "CI: Dominance.compute called outside Spirv_ir.Dataflow —" \
       "consume the shared Availability analysis instead" >&2
  exit 1
fi
for f in lib/spirv_ir/validate.ml lib/spirv_ir/lint.ml lib/spirv_ir/analysis.ml \
         lib/spirv_ir/symval.ml; do
  if grep -n "Cfg\.of_func" "$f"; then
    echo "CI: $f derives its own CFG — consume Dataflow.Availability" >&2
    exit 1
  fi
done

# the symbolic evaluator must build on the shared dataflow layer (its
# dominance facts gate the back-edge abstention), not roll its own
if ! grep -q "Dataflow\.Availability" lib/spirv_ir/symval.ml; then
  echo "CI: Symval no longer consumes Spirv_ir.Dataflow.Availability —" \
       "the translation validator must build on the shared analyses" >&2
  exit 1
fi

# loop summarization must take its loop forest and trip bounds from the
# shared interval analysis (Dataflow.Ranges), not a private fixpoint
if ! grep -q "Dataflow\.Ranges" lib/spirv_ir/symval.ml; then
  echo "CI: Symval no longer consumes Spirv_ir.Dataflow.Ranges —" \
       "loop trip bounds must come from the shared interval analysis" >&2
  exit 1
fi

# the symbolic memory model must take its access paths and in-bounds
# proofs from the shared Spirv_ir.Memory analysis, not walk access
# chains privately
if ! grep -q "Memory\.chain_segs" lib/spirv_ir/symval.ml; then
  echo "CI: Symval no longer consumes Spirv_ir.Memory.chain_segs —" \
       "dynamic-index folds must be licensed by the shared memory analysis" >&2
  exit 1
fi

# lint gate: every shipped corpus module must be free of lint errors
# (warnings are allowed; the exit code is 1 only on errors)
./_build/default/bin/tbct_cli.exe lint --all

# memory-lint gate: the corpus must also be clean under the four memory
# rules (three of which are warnings, so the error exit above cannot see
# them)
if ./_build/default/bin/tbct_cli.exe lint --all --json \
    | grep -Eq '"rule":"(possible-out-of-bounds|uninitialized-load|dead-store|redundant-load)"'; then
  echo "CI: corpus modules carry memory-lint findings" >&2
  exit 1
fi

# translation-validation gate: every corpus module — including the looping
# corpus — must validate cleanly through every target's pipeline — zero
# Mismatch verdicts (exit 1 on any); abstentions are allowed but never
# count as bugs
TVSWEEP=$(mktemp)
for target in AMD-LLPC Mesa Mesa-Old NVIDIA Pixel-5 Pixel-4 spirv-opt \
              spirv-opt-old SwiftShader; do
  ./_build/default/bin/tbct_cli.exe tv --all --target "$target" --json \
      > "$TVSWEEP"
  # memory-coverage gate: with the access-path analysis licensing the
  # symbolic memory model, no corpus module may abstain for the
  # dynamic-index reason on any target
  if grep -q '"reason":"dynamic-index' "$TVSWEEP"; then
    echo "CI: dynamic-index abstention on target $target — the memory" \
         "analysis no longer covers the corpus" >&2
    exit 1
  fi
done
rm -f "$TVSWEEP"

# loop-coverage gate: on the counted-loop corpus the oracle must decide
# (Equivalent or Mismatch, not Abstained) at least 90% of the modules —
# the whole point of the loop-aware analysis
COUNTED="loop_counted loop_nested_counted loop_to_counted \
         loop_uniform_clamped loop_mode_clamped"
DECIDED=0; TOTAL=0
for name in $COUNTED; do
  TOTAL=$((TOTAL + 1))
  if ! ./_build/default/bin/tbct_cli.exe tv --corpus "$name" --json \
      | grep -q '"verdict":"abstained"'; then
    DECIDED=$((DECIDED + 1))
  fi
done
if [ $((DECIDED * 10)) -lt $((TOTAL * 9)) ]; then
  echo "CI: only $DECIDED/$TOTAL counted-loop modules decided by TV —" \
       "abstain rate exceeds the 10% ceiling" >&2
  exit 1
fi

# analyze smoke: the loop/range report must prove the clamped uniform
# loop's trip bound (the canonical widening + refinement test case)
if ! ./_build/default/bin/tbct_cli.exe analyze --corpus loop_uniform_clamped \
    --loops | grep -q "trip bound 8"; then
  echo "CI: tbct analyze no longer proves the clamped uniform trip bound" >&2
  exit 1
fi
if ! ./_build/default/bin/tbct_cli.exe analyze --corpus loop_uniform_raw \
    --loops | grep -q "trip bound unproven"; then
  echo "CI: tbct analyze claims a bound for the unclamped uniform loop" >&2
  exit 1
fi

# contract-checked campaign smoke: a short run with the transformation
# contract checker on; any breach raises a Violation (exit code 2)
./_build/default/bin/tbct_cli.exe campaign --seeds 20 --check-contracts

# store invariant: all harness file I/O flows through Tbct_store (the CAS,
# journal and bug bank); no harness module opens files itself
if grep -n "open_in\|open_out\|Unix\.openfile" lib/harness/*.ml; then
  echo "CI: direct file I/O in lib/harness — persistence must flow" \
       "through Tbct_store" >&2
  exit 1
fi

# store smoke: campaign into a store, kill it by truncating the journal,
# resume, and require the bit-identical hit list the journal promises
STORE=$(mktemp -d)
trap 'rm -rf "$STORE"' EXIT
./_build/default/bin/tbct_cli.exe campaign --seeds 20 --store "$STORE" \
    --hits-out "$STORE/hits-full.txt" > /dev/null
J="$STORE/journal.log"
SZ=$(wc -c < "$J")
dd if="$J" of="$J.cut" bs=1 count=$((SZ * 3 / 5)) 2> /dev/null
mv "$J.cut" "$J"
./_build/default/bin/tbct_cli.exe campaign --seeds 20 --store "$STORE" \
    --resume --hits-out "$STORE/hits-resumed.txt" > /dev/null
if ! cmp -s "$STORE/hits-full.txt" "$STORE/hits-resumed.txt"; then
  echo "CI: resumed campaign hit list differs from the uninterrupted one" >&2
  exit 1
fi

# store gc: the size bound must hold afterwards (the command self-checks
# and exits non-zero if the cache still exceeds the bound)
./_build/default/bin/tbct_cli.exe store gc "$STORE" --max-bytes 65536 > /dev/null
./_build/default/bin/tbct_cli.exe store stats "$STORE" > /dev/null

# registry completeness gate: every transformation type has exactly one
# registry entry (the command cross-checks the catalogue and exits 1 on
# any missing/extra/duplicate entry), and the JSON catalogue agrees
./_build/default/bin/tbct_cli.exe transformations --check
N_TYPES=$(./_build/default/bin/tbct_cli.exe transformations --json | wc -l)
if [ "$N_TYPES" -ne 31 ]; then
  echo "CI: transformations --json lists $N_TYPES entries, expected 31" >&2
  exit 1
fi
if ! ./_build/default/bin/tbct_cli.exe transformations --json \
    | grep -q '"type_id":"ReplaceBranchWithKill"'; then
  echo "CI: transformations --json is missing ReplaceBranchWithKill" >&2
  exit 1
fi

# single-source-of-truth gate: the registry owns all per-type dispatch;
# rules.ml and pass.ml must not grow their own type_id dispatch tables or
# keep a local copy of the follow-on recommendations
if grep -n '"Add[A-Z]\|"Replace[A-Z]\|"Split[A-Z]\|"Move[A-Z]\|"Wrap[A-Z]\|"Invert[A-Z]\|"Propagate[A-Z]\|"Permute[A-Z]\|"Swap[A-Z]\|"Composite[A-Z]\|"Set[A-Z]\|"Function[A-Z]\|"Inline[A-Z]' \
     lib/spirv_fuzz/rules.ml lib/spirv_fuzz/pass.ml; then
  echo "CI: transformation type_id literal outside the registry —" \
       "rules.ml/pass.ml must not duplicate the dispatch table" >&2
  exit 1
fi
if grep -n "follow_ons" lib/spirv_fuzz/pass.ml; then
  echo "CI: follow_ons defined in pass.ml — recommendations live in the" \
       "registry" >&2
  exit 1
fi

# zero-drift gate: explicit uniform weights must reproduce the default
# campaign bit for bit, and a non-uniform weighting must actually change it
WDIR=$(mktemp -d)
./_build/default/bin/tbct_cli.exe campaign --seeds 20 \
    --hits-out "$WDIR/hits-default.txt" > /dev/null
./_build/default/bin/tbct_cli.exe campaign --seeds 20 \
    --weights supporting=1,control_flow=1,data=1,function=1,obfuscation=1 \
    --hits-out "$WDIR/hits-uniform.txt" > /dev/null
if ! cmp -s "$WDIR/hits-default.txt" "$WDIR/hits-uniform.txt"; then
  echo "CI: explicit uniform weights drifted from the default campaign" >&2
  rm -rf "$WDIR"
  exit 1
fi
./_build/default/bin/tbct_cli.exe campaign --seeds 20 --weights control_flow=6 \
    --hits-out "$WDIR/hits-weighted.txt" > /dev/null
if cmp -s "$WDIR/hits-default.txt" "$WDIR/hits-weighted.txt"; then
  echo "CI: control_flow=6 produced the same campaign as uniform weights —" \
       "weighted sampling is not taking effect" >&2
  rm -rf "$WDIR"
  exit 1
fi
rm -rf "$WDIR"

# quick perf smoke: the registry, loop-TV, service and memory perf
# sections must run and persist their machine-readable summaries
# (BENCH_PR6.json through BENCH_PR9.json at the repo root)
./_build/default/bench/main.exe --perf-smoke > /dev/null
if [ ! -s BENCH_PR6.json ]; then
  echo "CI: bench --perf-smoke did not write BENCH_PR6.json" >&2
  exit 1
fi
if [ ! -s BENCH_PR7.json ]; then
  echo "CI: bench --perf-smoke did not write BENCH_PR7.json" >&2
  exit 1
fi
if ! grep -q '"abstain_reasons"' BENCH_PR7.json; then
  echo "CI: BENCH_PR7.json is missing the abstain_reasons breakdown" >&2
  exit 1
fi
if [ ! -s BENCH_PR8.json ]; then
  echo "CI: bench --perf-smoke did not write BENCH_PR8.json" >&2
  exit 1
fi
if ! grep -q '"hits_identical":true' BENCH_PR8.json; then
  echo "CI: BENCH_PR8.json says fleet jobs drifted from the lone job" >&2
  exit 1
fi
if [ ! -s BENCH_PR9.json ]; then
  echo "CI: bench --perf-smoke did not write BENCH_PR9.json" >&2
  exit 1
fi
if ! grep -q '"dynamic_index_abstains":0' BENCH_PR9.json; then
  echo "CI: BENCH_PR9.json reports dynamic-index abstentions on the corpus" >&2
  exit 1
fi
if ! grep -q '"mem_proofs_total"' BENCH_PR9.json; then
  echo "CI: BENCH_PR9.json is missing the mem_proofs_total figure" >&2
  exit 1
fi
if [ ! -s BENCH_PR10.json ]; then
  echo "CI: bench --perf-smoke did not write BENCH_PR10.json" >&2
  exit 1
fi
if ! grep -q '"bit_equal":true' BENCH_PR10.json; then
  echo "CI: BENCH_PR10.json reports a compiled-vs-interpreter mismatch" >&2
  exit 1
fi
if ! grep -q '"speedup_ok":true' BENCH_PR10.json; then
  echo "CI: compiled kernel is below the 3x fragment-throughput gate" \
       "(see fragment_speedup in BENCH_PR10.json)" >&2
  exit 1
fi

# pool determinism gate: a parallel campaign's hit list and a parallel
# dedup run's reduced tests must be byte-identical to the sequential ones
# at any worker count (the Pool's task-id-ordered merge contract)
./_build/default/bin/tbct_cli.exe campaign --seeds 40 --domains 1 \
    --hits-out "$STORE/hits-seq.txt" > /dev/null
./_build/default/bin/tbct_cli.exe campaign --seeds 40 --domains 4 \
    --hits-out "$STORE/hits-par.txt" > /dev/null
if ! cmp -s "$STORE/hits-seq.txt" "$STORE/hits-par.txt"; then
  echo "CI: 4-domain campaign hit list differs from the sequential one" >&2
  exit 1
fi
./_build/default/bin/tbct_cli.exe dedup --seeds 40 --domains 1 \
    --tests-out "$STORE/tests-seq.txt" > /dev/null
./_build/default/bin/tbct_cli.exe dedup --seeds 40 --domains 4 \
    --tests-out "$STORE/tests-par.txt" > /dev/null
if ! cmp -s "$STORE/tests-seq.txt" "$STORE/tests-par.txt"; then
  echo "CI: 4-domain parallel reduction differs from the sequential one" >&2
  exit 1
fi

# compiled-kernel equivalence gate: a campaign and a dedup run over all
# nine targets must be byte-identical between the flat compiled kernel
# (the default) and the reference interpreter (--reference-interp), at
# both --domains 1 and --domains 4.  The hits/tests files above came from
# default (compiled) runs, so diffing against reference runs proves the
# kernels agree on every fragment the campaign executes.
./_build/default/bin/tbct_cli.exe campaign --seeds 40 --domains 1 \
    --reference-interp --hits-out "$STORE/hits-refint-seq.txt" > /dev/null
if ! cmp -s "$STORE/hits-seq.txt" "$STORE/hits-refint-seq.txt"; then
  echo "CI: compiled-kernel campaign differs from the reference" \
       "interpreter (sequential)" >&2
  exit 1
fi
./_build/default/bin/tbct_cli.exe campaign --seeds 40 --domains 4 \
    --reference-interp --hits-out "$STORE/hits-refint-par.txt" > /dev/null
if ! cmp -s "$STORE/hits-par.txt" "$STORE/hits-refint-par.txt"; then
  echo "CI: compiled-kernel campaign differs from the reference" \
       "interpreter (4 domains)" >&2
  exit 1
fi
./_build/default/bin/tbct_cli.exe dedup --seeds 40 --domains 1 \
    --reference-interp --tests-out "$STORE/tests-refint-seq.txt" > /dev/null
if ! cmp -s "$STORE/tests-seq.txt" "$STORE/tests-refint-seq.txt"; then
  echo "CI: compiled-kernel reduction differs from the reference" \
       "interpreter (sequential)" >&2
  exit 1
fi
./_build/default/bin/tbct_cli.exe dedup --seeds 40 --domains 4 \
    --reference-interp --tests-out "$STORE/tests-refint-par.txt" > /dev/null
if ! cmp -s "$STORE/tests-par.txt" "$STORE/tests-refint-par.txt"; then
  echo "CI: compiled-kernel reduction differs from the reference" \
       "interpreter (4 domains)" >&2
  exit 1
fi

# serve smoke: a daemon on a temp socket runs two concurrent campaigns
# over one shared engine.  Gates: both jobs complete under attach, the
# jobs share the engine (cross-job memo hits > 0 in status --json), drain
# exits the daemon cleanly, and a daemon killed -9 mid-campaign resumes
# its job on restart to a hit list byte-identical to an uninterrupted
# batch run.  Daemon PIDs come from $! — pgrep would match this script's
# own command line.
SDIR=$(mktemp -d)
SOCK="$SDIR/s"  # keep the socket path well under the sun_path limit
TBCT=./_build/default/bin/tbct_cli.exe
wait_sock() {
  n=0
  while [ ! -S "$1" ]; do
    n=$((n + 1))
    if [ "$n" -gt 100 ]; then
      echo "CI: daemon socket $1 never appeared" >&2
      exit 1
    fi
    sleep 0.1
  done
}
"$TBCT" serve --store "$SDIR/store" --socket "$SOCK" --domains 2 \
    > "$SDIR/serve1.log" 2>&1 &
DPID=$!
wait_sock "$SOCK"
J1=$("$TBCT" submit --socket "$SOCK" --seeds 20)
J2=$("$TBCT" submit --socket "$SOCK" --seeds 20)
"$TBCT" attach --socket "$SOCK" "$J1" > /dev/null
"$TBCT" attach --socket "$SOCK" "$J2" > /dev/null
if ! "$TBCT" status --socket "$SOCK" --json \
    | grep -q '"cross_job_memo_hits":[1-9]'; then
  echo "CI: two concurrent jobs produced no cross-job memo hits —" \
       "the daemon is not sharing one engine" >&2
  kill "$DPID" 2> /dev/null || true
  exit 1
fi
"$TBCT" hits --socket "$SOCK" "$J1" -o "$SDIR/hits-serve.txt"
"$TBCT" drain --socket "$SOCK" > /dev/null
if ! wait "$DPID"; then
  echo "CI: drained daemon exited non-zero" >&2
  exit 1
fi
"$TBCT" campaign --seeds 20 --hits-out "$SDIR/hits-batch.txt" > /dev/null
if ! cmp -s "$SDIR/hits-serve.txt" "$SDIR/hits-batch.txt"; then
  echo "CI: daemon job hit list differs from the batch campaign" >&2
  exit 1
fi

# kill -9 mid-campaign, restart on the same store, resume to completion
KSOCK="$SDIR/k"
"$TBCT" serve --store "$SDIR/kstore" --socket "$KSOCK" --domains 2 \
    > "$SDIR/serve2.log" 2>&1 &
KPID=$!
wait_sock "$KSOCK"
JK=$("$TBCT" submit --socket "$KSOCK" --seeds 60)
sleep 0.4
kill -9 "$KPID"
wait "$KPID" 2> /dev/null || true
rm -f "$KSOCK"  # kill -9 leaves the stale socket file; clear it so
                # wait_sock sees the restarted daemon's bind, not this one
"$TBCT" serve --store "$SDIR/kstore" --socket "$KSOCK" --domains 2 \
    > "$SDIR/serve3.log" 2>&1 &
KPID=$!
wait_sock "$KSOCK"
"$TBCT" attach --socket "$KSOCK" "$JK" > /dev/null
"$TBCT" hits --socket "$KSOCK" "$JK" -o "$SDIR/hits-resumed.txt"
"$TBCT" shutdown --socket "$KSOCK" > /dev/null
wait "$KPID" || true
"$TBCT" campaign --seeds 60 --hits-out "$SDIR/hits-fresh.txt" > /dev/null
if ! cmp -s "$SDIR/hits-resumed.txt" "$SDIR/hits-fresh.txt"; then
  echo "CI: resumed daemon job hit list differs from an uninterrupted" \
       "batch campaign" >&2
  exit 1
fi
rm -rf "$SDIR"

echo "CI: build + tests + lint + tv + loop-coverage + memory-coverage + contract-smoke + store-smoke + registry-gates + perf-smoke + pool-determinism + compiled-kernel-equivalence + serve-smoke + invariant checks passed"
