(* Benchmark & experiment harness.

   Default mode regenerates every table and figure of the paper's evaluation
   (section 4) at a configurable scale and prints them in the paper's
   layout.  `--perf` additionally runs the Bechamel micro-benchmarks (one
   per pipeline stage), and `--ablate` runs the design-choice ablations
   called out in DESIGN.md. *)

let line = String.make 78 '-'

let section title =
  Printf.printf "\n%s\n%s\n%s\n" line title line

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)

let print_table2 () =
  section "Table 2: the SPIR-V targets under test";
  Printf.printf "%-14s %-22s %-10s %s\n" "Target" "Version" "GPU type" "Latent bugs";
  List.iter
    (fun (t : Compilers.Target.t) ->
      Printf.printf "%-14s %-22s %-10s %d crash + %d miscompile\n"
        t.Compilers.Target.name t.Compilers.Target.version
        (Compilers.Target.gpu_type_to_string t.Compilers.Target.gpu)
        (List.length t.Compilers.Target.crash_bug_ids)
        (List.length t.Compilers.Target.miscompile_bug_ids))
    Compilers.Target.all

(* ------------------------------------------------------------------ *)
(* Figures 4 and 5 (the basic-blocks walkthrough)                      *)

let print_figures_4_5 () =
  section "Figures 4-5: the basic-blocks walkthrough (section 2.1)";
  let ctx0 = Bb_lang.Figures.initial_context () in
  Printf.printf "Original program (prints 6 on i=1, j=2, k=true):\n%s\n\n"
    (Bb_lang.Syntax.to_string Bb_lang.Figures.original);
  let ctx5 = Bb_lang.Transform.Apply.sequence_ctx ctx0 Bb_lang.Figures.sequence in
  Printf.printf "After T1..T5 (Figure 4):\n%s\n\n"
    (Bb_lang.Syntax.to_string ctx5.Bb_lang.Transform.program);
  let exhibits seq =
    let ctx = Bb_lang.Transform.Apply.sequence_ctx ctx0 seq in
    Bb_lang.Compiler.exhibits_bug ~impl:Bb_lang.Compiler.run_buggy ctx
  in
  let reduced, stats = Tbct.Reducer.reduce ~is_interesting:exhibits Bb_lang.Figures.sequence in
  Printf.printf "Reduction against the buggy compiler (%d queries): kept %s\n"
    stats.Tbct.Reducer.queries
    (String.concat ", " (List.map Bb_lang.Transform.type_id reduced));
  let ctx_min = Bb_lang.Transform.Apply.sequence_ctx ctx0 reduced in
  Printf.printf "\nMinimized variant P3 (Figure 5):\n%s\n"
    (Bb_lang.Syntax.to_string ctx_min.Bb_lang.Transform.program);
  Printf.printf "\nExpected minimized sequence [SplitBlock; AddDeadBlock; ChangeRHS]: %s\n"
    (if reduced = Bb_lang.Figures.minimized then "reproduced" else "NOT reproduced")

(* ------------------------------------------------------------------ *)
(* Table 3 / Figure 7                                                  *)

let tool_labels = [| "spirv-fuzz"; "spirv-fuzz-simple"; "glsl-fuzz" |]

let run_campaigns ~scale ~engine =
  let t0 = Unix.gettimeofday () in
  let hits =
    Array.map
      (fun tool ->
        let h = Harness.Experiments.run_campaign ~scale ~engine tool in
        Printf.printf "  campaign %-18s %4d detections\n%!"
          (Harness.Pipeline.tool_name tool) (List.length h);
        h)
      Harness.Experiments.tools
  in
  Printf.printf "  (campaigns took %.1fs at %d seeds per configuration)\n%!"
    (Unix.gettimeofday () -. t0) scale.Harness.Experiments.seeds;
  hits

let print_table3 ~scale ~hits =
  section "Table 3: bug-finding ability (distinct bug signatures)";
  let t3 = Harness.Experiments.table3 ~scale ~hits () in
  Printf.printf "%-14s | %-11s | %-11s | %-11s | %-14s | %s\n" "Target"
    "spirv-fuzz" "fuzz-simple" "glsl-fuzz" "beats simple?" "beats glsl?";
  Printf.printf "%-14s | %-11s | %-11s | %-11s |\n" "" "Tot  Median" "Tot  Median"
    "Tot  Median";
  let print_row (r : Harness.Experiments.table3_row) =
    Printf.printf "%-14s | %3d  %5.1f  | %3d  %5.1f  | %3d  %5.1f  | %-14s | %s\n"
      r.Harness.Experiments.t3_target
      r.Harness.Experiments.t3_total.(0) r.Harness.Experiments.t3_median.(0)
      r.Harness.Experiments.t3_total.(1) r.Harness.Experiments.t3_median.(1)
      r.Harness.Experiments.t3_total.(2) r.Harness.Experiments.t3_median.(2)
      r.Harness.Experiments.t3_vs_simple r.Harness.Experiments.t3_vs_glsl
  in
  List.iter print_row t3.Harness.Experiments.rows;
  print_row t3.Harness.Experiments.all_row;
  Printf.printf
    "\nPaper shape: spirv-fuzz >= spirv-fuzz-simple >= glsl-fuzz on totals, with\n\
     glsl-fuzz nearly blind on the tooling targets (spirv-opt*).\n"

let print_figure7 ~hits =
  section "Figure 7: complementarity of the three configurations";
  let per_target, all = Harness.Experiments.figure7 ~hits () in
  List.iter
    (fun (name, venn) ->
      Printf.printf "%s:\n%s\n" name
        (Harness.Venn.to_string ~label_a:tool_labels.(0) ~label_b:tool_labels.(1)
           ~label_c:tool_labels.(2) venn))
    per_target;
  Printf.printf "All targets (signatures qualified by target):\n%s\n"
    (Harness.Venn.to_string ~label_a:tool_labels.(0) ~label_b:tool_labels.(1)
       ~label_c:tool_labels.(2) all);
  Printf.printf "total distinct: %d\n" (Harness.Venn.total all)

(* ------------------------------------------------------------------ *)
(* RQ2 / Table 4                                                       *)

let print_rq2 ~scale ~engine ~hits =
  section "RQ2 (section 4.2): reduction quality";
  let r = Harness.Experiments.rq2 ~scale ~engine ~hits () in
  Printf.printf "reductions run: spirv-fuzz %d, glsl-fuzz %d\n"
    (List.length r.Harness.Experiments.rq2_spirv)
    (List.length r.Harness.Experiments.rq2_glsl);
  Printf.printf "median instruction-count delta (original vs reduced variant):\n";
  Printf.printf "  spirv-fuzz : %.1f   (paper: 8)\n" r.Harness.Experiments.rq2_median_spirv;
  Printf.printf "  glsl-fuzz  : %.1f   (paper: 29)\n" r.Harness.Experiments.rq2_median_glsl;
  let kept xs =
    Harness.Stats.median
      (List.map (fun (o : Harness.Experiments.reduction_outcome) ->
           float_of_int o.Harness.Experiments.red_kept) xs)
  in
  let initial xs =
    Harness.Stats.median
      (List.map (fun (o : Harness.Experiments.reduction_outcome) ->
           float_of_int o.Harness.Experiments.red_initial) xs)
  in
  Printf.printf "median surviving transformations: spirv-fuzz %.1f of %.1f; glsl-fuzz %.1f of %.1f\n"
    (kept r.Harness.Experiments.rq2_spirv) (initial r.Harness.Experiments.rq2_spirv)
    (kept r.Harness.Experiments.rq2_glsl) (initial r.Harness.Experiments.rq2_glsl)

let print_table4 ~scale ~engine ~hits =
  section "Table 4: deduplication effectiveness (crash bugs, spirv-fuzz tests)";
  let rows, total = Harness.Experiments.table4 ~scale ~engine ~hits () in
  Printf.printf "%-14s %6s %6s %8s %9s %6s\n" "Target" "Tests" "Sigs" "Reports"
    "Distinct" "Dups";
  List.iter
    (fun (r : Harness.Experiments.table4_row) ->
      Printf.printf "%-14s %6d %6d %8d %9d %6d\n" r.Harness.Experiments.t4_target
        r.Harness.Experiments.t4_tests r.Harness.Experiments.t4_sigs
        r.Harness.Experiments.t4_reports r.Harness.Experiments.t4_distinct
        r.Harness.Experiments.t4_dups)
    (rows @ [ total ]);
  Printf.printf
    "\nPaper shape: more than half the distinct bugs covered, low duplicate rate\n\
     (paper: 1467 tests / 78 sigs -> 49 reports, 41 distinct, 8 dups).\n"

(* ------------------------------------------------------------------ *)
(* Figures 3 and 8                                                     *)

let print_figure3 () =
  section "Figure 3: a one-instruction delta (DontInline) crashing SwiftShader";
  match Harness.Experiments.figure3 () with
  | None -> print_endline "no seed triggered the DontInline bug at this scale"
  | Some f ->
      Printf.printf "original: %d instructions; fuzzed variant: %d; reduced variant: %d\n"
        f.Harness.Experiments.fig3_original_size f.Harness.Experiments.fig3_variant_size
        f.Harness.Experiments.fig3_reduced_size;
      Printf.printf "crash signature: %s\n" f.Harness.Experiments.fig3_signature;
      Printf.printf "minimized transformation sequence (%d):\n"
        (List.length f.Harness.Experiments.fig3_kept);
      List.iter
        (fun t -> Printf.printf "  %s\n" (Spirv_fuzz.Transformation.type_id t))
        f.Harness.Experiments.fig3_kept;
      Printf.printf "module-level delta between original and reduced variant:\n%s\n"
        f.Harness.Experiments.fig3_delta

let print_figure8 () =
  section "Figure 8: the Mesa and Pixel-5 miscompilation walkthroughs";
  let f = Harness.Experiments.figure8 () in
  Printf.printf
    "8a (Mesa, PropagateInstructionUp makes the loop condition a phi):\n";
  Printf.printf "  images differ: %b\n" f.Harness.Experiments.fig8a_images_differ;
  Printf.printf "  original image:\n%s  variant image:\n%s"
    f.Harness.Experiments.fig8a_original_ascii f.Harness.Experiments.fig8a_variant_ascii;
  Printf.printf "\n8b (Pixel-5, MoveBlockDown breaks fallthrough layout):\n";
  Printf.printf "  images differ: %b\n" f.Harness.Experiments.fig8b_images_differ;
  Printf.printf "  original image:\n%s  variant image:\n%s"
    f.Harness.Experiments.fig8b_original_ascii f.Harness.Experiments.fig8b_variant_ascii

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

let print_ablations ~scale ~engine ~hits =
  section "Ablation: dedup ignore-list (section 3.5) on vs off";
  let totals ?ignored () =
    let _, total = Harness.Experiments.table4 ~scale ?ignored ~engine ~hits () in
    total
  in
  let on = totals () in
  let off = totals ~ignored:Tbct.Dedup.String_set.empty () in
  Printf.printf "%-24s %8s %9s %6s\n" "" "Reports" "Distinct" "Dups";
  Printf.printf "%-24s %8d %9d %6d\n" "with ignore list" on.Harness.Experiments.t4_reports
    on.Harness.Experiments.t4_distinct on.Harness.Experiments.t4_dups;
  Printf.printf "%-24s %8d %9d %6d\n" "without ignore list"
    off.Harness.Experiments.t4_reports off.Harness.Experiments.t4_distinct
    off.Harness.Experiments.t4_dups;
  Printf.printf
    "(ignoring supporting/enabler types should keep coverage while reducing\n\
     \ the chance that two tests conflict on an uninteresting shared type)\n";

  section "Ablation: chunked delta debugging vs one-at-a-time removal";
  (* compare interestingness-query counts on the deterministic Figure 3
     scenario, scaled over several seeds *)
  let ref_module =
    List.assoc "helper_distance" (Lazy.force Corpus.lowered_references)
  in
  let input = Corpus.default_input in
  let target = Compilers.Target.swiftshader in
  let config =
    {
      Spirv_fuzz.Fuzzer.default_config with
      Spirv_fuzz.Fuzzer.donors = List.map snd (Lazy.force Corpus.lowered_donors);
    }
  in
  let chunked_q = ref 0 and linear_q = ref 0 and runs = ref 0 in
  for seed = 0 to 19 do
    let ctx = Spirv_fuzz.Context.make ref_module input in
    let result = Spirv_fuzz.Fuzzer.run ~config ~seed ctx in
    match
      Compilers.Backend.run target result.Spirv_fuzz.Fuzzer.final.Spirv_fuzz.Context.m input
    with
    | Compilers.Backend.Crashed signature ->
        let is_interesting seq =
          let c = Spirv_fuzz.Lang.replay ctx seq in
          match Compilers.Backend.run target c.Spirv_fuzz.Context.m input with
          | Compilers.Backend.Crashed s -> String.equal s signature
          | _ -> false
        in
        let _, s1 =
          Tbct.Reducer.reduce ~is_interesting result.Spirv_fuzz.Fuzzer.transformations
        in
        let _, s2 =
          Tbct.Reducer.reduce_linear ~is_interesting
            result.Spirv_fuzz.Fuzzer.transformations
        in
        chunked_q := !chunked_q + s1.Tbct.Reducer.queries;
        linear_q := !linear_q + s2.Tbct.Reducer.queries;
        incr runs
    | _ -> ()
  done;
  if !runs = 0 then print_endline "no crashing seeds in the ablation window"
  else
    Printf.printf
      "over %d reductions: chunked ddmin used %d interestingness queries,\n\
       one-at-a-time used %d (%.1fx more)\n"
      !runs !chunked_q !linear_q
      (float_of_int !linear_q /. float_of_int (max 1 !chunked_q));

  section "Ablation: recommendations strategy (spirv-fuzz vs spirv-fuzz-simple)";
  let t3 = Harness.Experiments.table3 ~scale ~hits () in
  let r = t3.Harness.Experiments.all_row in
  Printf.printf
    "all-targets totals: with recommendations %d, without %d (MWU: %s)\n"
    r.Harness.Experiments.t3_total.(0) r.Harness.Experiments.t3_total.(1)
    r.Harness.Experiments.t3_vs_simple

(* ------------------------------------------------------------------ *)
(* Engine: run cache and domain-parallel campaigns                     *)

let engine_perf () =
  section "Engine: content-addressed run cache & domain-parallel campaigns";
  let scale =
    { Harness.Experiments.default_scale with Harness.Experiments.seeds = 80 }
  in
  let tool = Harness.Pipeline.Spirv_fuzz_tool in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* cold sequential run *)
  let cold_engine = Harness.Engine.create () in
  let seq_hits, seq_time =
    timed (fun () -> Harness.Experiments.run_campaign ~scale ~engine:cold_engine tool)
  in
  let cold = Harness.Engine.stats cold_engine in
  Printf.printf "sequential campaign (%d seeds): %.2fs, %d detections\n"
    scale.Harness.Experiments.seeds seq_time (List.length seq_hits);
  Printf.printf "  %s\n" (Harness.Engine.stats_to_string cold);
  Printf.printf "  runs executed: %d, runs saved by caching: %d (%.1f%% hit rate)\n"
    cold.Harness.Engine.runs_executed cold.Harness.Engine.runs_saved
    (100.0 *. cold.Harness.Engine.hit_rate);
  (* warm rerun on the same engine: the whole campaign is served from cache *)
  let warm_hits, warm_time =
    timed (fun () -> Harness.Experiments.run_campaign ~scale ~engine:cold_engine tool)
  in
  let warm = Harness.Engine.stats cold_engine in
  Printf.printf
    "warm rerun (same engine): %.2fs (%.1fx speedup), hits identical: %b, \
     %d additional runs executed\n"
    warm_time
    (seq_time /. Float.max 1e-9 warm_time)
    (warm_hits = seq_hits)
    (warm.Harness.Engine.runs_executed - cold.Harness.Engine.runs_executed);
  (* domain-parallel cold runs: bit-identical hit lists, wall-clock speedup *)
  List.iter
    (fun domains ->
      let engine = Harness.Engine.create () in
      let par_hits, par_time =
        timed (fun () ->
            Harness.Experiments.run_campaign ~scale ~domains ~engine tool)
      in
      Printf.printf
        "%d-domain campaign: %.2fs (%.2fx vs sequential), hits identical to \
         sequential: %b\n"
        domains par_time
        (seq_time /. Float.max 1e-9 par_time)
        (par_hits = seq_hits))
    [ 2; 4 ];
  Printf.printf
    "(campaign speedup is bounded by the cores available to this container: \
     %d recommended domains)\n"
    (Domain.recommended_domain_count ())

(* ------------------------------------------------------------------ *)
(* Pool scaling: campaign + reduction through the work-stealing pool   *)

let pool_perf () =
  section "Pool scaling: campaign + parallel reduction (work-stealing pool)";
  let scale =
    { Harness.Experiments.default_scale with Harness.Experiments.seeds = 80 }
  in
  let tool = Harness.Pipeline.Spirv_fuzz_tool in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let study_targets =
    List.map (fun (t : Compilers.Target.t) -> t.Compilers.Target.name)
      Compilers.Target.reduction_study
  in
  let reducible hits =
    List.filter
      (fun (h : Harness.Experiments.hit) ->
        List.mem h.Harness.Experiments.hit_target study_targets)
      hits
    |> Harness.Experiments.cap_hits
         ~per_signature:scale.Harness.Experiments.max_reductions_per_signature
  in
  (* sequential baseline: fresh engine, campaign then per-hit reduction *)
  let seq_engine = Harness.Engine.create () in
  let seq_hits, seq_campaign =
    timed (fun () -> Harness.Experiments.run_campaign ~scale ~engine:seq_engine tool)
  in
  let seq_outcomes, seq_reduce =
    timed (fun () ->
        Harness.Experiments.reduce_hits seq_engine (reducible seq_hits))
  in
  Printf.printf
    "sequential: campaign %.2fs (%d detections), reduction %.2fs (%d hits reduced)\n"
    seq_campaign (List.length seq_hits) seq_reduce
    (List.length (List.filter_map Fun.id seq_outcomes));
  List.iter
    (fun workers ->
      (* fresh engine per worker count so every configuration pays the
         same cold-cache cost; one pool serves both phases *)
      let engine = Harness.Engine.create () in
      Harness.Pool.with_pool ~workers (fun pool ->
          let hits, campaign_t =
            timed (fun () ->
                Harness.Experiments.run_campaign ~scale ~pool ~engine tool)
          in
          let outcomes, reduce_t =
            timed (fun () ->
                Harness.Experiments.reduce_hits ~pool engine (reducible hits))
          in
          Printf.printf
            "%d worker(s): campaign %.2fs (%.2fx), reduction %.2fs (%.2fx), \
             campaign+reduction identical to sequential: %b\n"
            workers campaign_t
            (seq_campaign /. Float.max 1e-9 campaign_t)
            reduce_t
            (seq_reduce /. Float.max 1e-9 reduce_t)
            (hits = seq_hits && outcomes = seq_outcomes);
          Printf.printf "  %s\n" (Harness.Pool.stats_to_string pool);
          let s = Harness.Engine.stats engine in
          match s.Harness.Engine.per_domain_runs with
          | [] | [ _ ] -> ()
          | per_domain ->
              Printf.printf "  runs per domain:%s\n"
                (String.concat ""
                   (List.map (fun (d, n) -> Printf.sprintf " d%d:%d" d n)
                      per_domain))))
    [ 1; 2; 4; 8 ];
  Printf.printf
    "(speedup is bounded by the cores available to this container: %d \
     recommended domains)\n"
    (Domain.recommended_domain_count ())

(* ------------------------------------------------------------------ *)
(* Persistent store: cold vs warm campaigns through the disk cache     *)

let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let store_perf () =
  section "Persistent store: cold vs warm campaigns (disk run cache)";
  let scale =
    { Harness.Experiments.default_scale with Harness.Experiments.seeds = 80 }
  in
  let tool = Harness.Pipeline.Spirv_fuzz_tool in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tbct-bench-store-%d" (Unix.getpid ()))
  in
  rm_rf dir;
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      (* cold: empty store, every run executed and written through *)
      let cold_engine =
        Harness.Engine.create ~store:(Harness.Persist.open_cas ~dir ()) ()
      in
      let cold_hits, cold_time =
        timed (fun () ->
            Harness.Experiments.run_campaign ~scale ~engine:cold_engine tool)
      in
      let cold = Harness.Engine.stats cold_engine in
      Printf.printf
        "cold campaign (%d seeds, empty store): %.2fs, %d detections, \
         %d runs executed, %d objects written\n"
        scale.Harness.Experiments.seeds cold_time (List.length cold_hits)
        cold.Harness.Engine.runs_executed cold.Harness.Engine.store_writes;
      (* warm: a NEW engine (cold memory) against the populated store — the
         speedup is purely the disk cache *)
      let warm_engine =
        Harness.Engine.create ~store:(Harness.Persist.open_cas ~dir ()) ()
      in
      let warm_hits, warm_time =
        timed (fun () ->
            Harness.Experiments.run_campaign ~scale ~engine:warm_engine tool)
      in
      let warm = Harness.Engine.stats warm_engine in
      Printf.printf
        "warm campaign (fresh engine, same store): %.2fs (%.1fx speedup), \
         hits identical: %b\n"
        warm_time
        (cold_time /. Float.max 1e-9 warm_time)
        (warm_hits = cold_hits);
      Printf.printf
        "  %d runs executed, %d served from disk, %d from memory \
         (%.1f%% hit rate)\n"
        warm.Harness.Engine.runs_executed warm.Harness.Engine.store_hits
        (warm.Harness.Engine.cache_hits + warm.Harness.Engine.baseline_hits)
        (100.0 *. warm.Harness.Engine.hit_rate);
      (match Harness.Engine.cas warm_engine with
      | Some cas ->
          let s = Tbct_store.Cas.stats cas in
          Printf.printf "  cas: %d object(s), %d bytes on disk\n"
            s.Tbct_store.Cas.objects s.Tbct_store.Cas.bytes
      | None -> ()))

(* ------------------------------------------------------------------ *)
(* Static-analysis oracle: lint and contract-check overhead            *)

let oracle_perf () =
  section "Static-analysis oracle: lint & transformation-contract overhead";
  let scale =
    { Harness.Experiments.default_scale with Harness.Experiments.seeds = 80 }
  in
  let tool = Harness.Pipeline.Spirv_fuzz_tool in
  let stage_time stats name =
    Option.value ~default:0.0 (List.assoc_opt name stats.Harness.Engine.stages)
  in
  (* lint sweep over the corpus, billed to its own engine stage *)
  let engine = Harness.Engine.create () in
  let modules = Lazy.force Corpus.lowered_references in
  let findings =
    Harness.Engine.timed engine ~stage:"lint" (fun () ->
        List.fold_left
          (fun acc (_, m) -> acc + List.length (Spirv_ir.Lint.check_module m))
          0 modules)
  in
  let lint_stats = Harness.Engine.stats engine in
  Printf.printf "lint sweep: %d modules, %d findings in %.3fs\n"
    (List.length modules) findings
    (stage_time lint_stats "lint");
  (* paired campaigns: identical seeds with and without the contract
     checker; the stage rename keeps the two generation clocks separate *)
  let plain_engine = Harness.Engine.create () in
  let plain_hits =
    Harness.Experiments.run_campaign ~scale ~engine:plain_engine tool
  in
  let checked_engine = Harness.Engine.create () in
  let checked_hits =
    Harness.Experiments.run_campaign ~scale ~engine:checked_engine
      ~check_contracts:true tool
  in
  let plain_t = stage_time (Harness.Engine.stats plain_engine) "generate" in
  let checked_t =
    stage_time (Harness.Engine.stats checked_engine) "generate+contract-check"
  in
  Printf.printf
    "generation (%d seeds): %.3fs plain, %.3fs with contract checks \
     (%.2fx overhead), hits identical: %b\n"
    scale.Harness.Experiments.seeds plain_t checked_t
    (checked_t /. Float.max 1e-9 plain_t)
    (plain_hits = checked_hits);
  Printf.printf "  plain   %s\n"
    (Harness.Engine.stats_to_string (Harness.Engine.stats plain_engine));
  Printf.printf "  checked %s\n"
    (Harness.Engine.stats_to_string (Harness.Engine.stats checked_engine))

(* ------------------------------------------------------------------ *)
(* Translation validation: overhead, memoization, signature granularity *)

let tv_perf () =
  section "Translation validation: overhead, memoization & blame granularity";
  let scale =
    { Harness.Experiments.default_scale with Harness.Experiments.seeds = 60 }
  in
  let tool = Harness.Pipeline.Spirv_fuzz_tool in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* overhead: identical seeds with and without the TV oracle *)
  let plain_engine = Harness.Engine.create () in
  let _plain_hits, plain_time =
    timed (fun () ->
        Harness.Experiments.run_campaign ~scale ~engine:plain_engine tool)
  in
  let tv_engine = Harness.Engine.create () in
  let tv_hits, tv_time =
    timed (fun () ->
        Harness.Experiments.run_campaign ~scale ~engine:tv_engine ~tv:true tool)
  in
  let tv_stats = Harness.Engine.stats tv_engine in
  Printf.printf
    "campaign (%d seeds): %.2fs without TV, %.2fs with (%.2fx overhead)\n"
    scale.Harness.Experiments.seeds plain_time tv_time
    (tv_time /. Float.max 1e-9 plain_time);
  Printf.printf "  %d TV checks, %d memoized (engine digest fast-path + LRU)\n"
    tv_stats.Harness.Engine.tv_checks tv_stats.Harness.Engine.tv_hits;
  (* signature granularity: how the single "miscompilation" bucket splits *)
  let module SS = Set.Make (String) in
  let miscompile_sigs =
    List.fold_left
      (fun acc (h : Harness.Experiments.hit) ->
        let s = h.Harness.Experiments.hit_detection.Harness.Pipeline.signature in
        if Harness.Signature.is_miscompilation s then SS.add s acc else acc)
      SS.empty tv_hits
  in
  Printf.printf
    "  miscompilation signatures with TV blame: %d distinct bucket(s)%s\n"
    (SS.cardinal miscompile_sigs)
    (if SS.is_empty miscompile_sigs then ""
     else " — " ^ String.concat ", " (SS.elements miscompile_sigs));
  (* memoization through the store: a fresh engine on a populated CAS
     serves warm TV verdicts from disk *)
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tbct-bench-tv-%d" (Unix.getpid ()))
  in
  rm_rf dir;
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let cold_engine =
        Harness.Engine.create ~store:(Harness.Persist.open_cas ~dir ()) ()
      in
      let cold_hits, cold_time =
        timed (fun () ->
            Harness.Experiments.run_campaign ~scale ~engine:cold_engine
              ~tv:true tool)
      in
      let warm_engine =
        Harness.Engine.create ~store:(Harness.Persist.open_cas ~dir ()) ()
      in
      let warm_hits, warm_time =
        timed (fun () ->
            Harness.Experiments.run_campaign ~scale ~engine:warm_engine
              ~tv:true tool)
      in
      let warm = Harness.Engine.stats warm_engine in
      Printf.printf
        "cold TV campaign (empty store): %.2fs; warm (fresh engine, same \
         store): %.2fs (%.1fx), hits identical: %b\n"
        cold_time warm_time
        (cold_time /. Float.max 1e-9 warm_time)
        (warm_hits = cold_hits);
      Printf.printf
        "  warm engine: %d TV checks, %d served without re-validating \
         (%.1f%% — digest fast-path, memory LRU or disk CAS)\n"
        warm.Harness.Engine.tv_checks warm.Harness.Engine.tv_hits
        (100.0
        *. float_of_int warm.Harness.Engine.tv_hits
        /. float_of_int (max 1 warm.Harness.Engine.tv_checks)))

(* ------------------------------------------------------------------ *)
(* Registry: weighted scheduling and per-type counters                 *)

let registry_perf () =
  section "Registry: weighted scheduling & per-type counters";
  let scale =
    { Harness.Experiments.default_scale with Harness.Experiments.seeds = 30 }
  in
  let tool = Harness.Pipeline.Spirv_fuzz_tool in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let measure weights =
    let engine = Harness.Engine.create () in
    let hits, wall =
      timed (fun () ->
          Harness.Experiments.run_campaign ~scale ~engine ~weights tool)
    in
    (hits, wall, (Harness.Engine.stats engine).Harness.Engine.counters)
  in
  let prefixed prefix counters =
    List.filter_map
      (fun (k, v) ->
        let n = String.length prefix in
        if String.length k > n && String.equal (String.sub k 0 n) prefix then
          Some (String.sub k n (String.length k - n), v)
        else None)
      counters
  in
  let total counters = List.fold_left (fun acc (_, v) -> acc + v) 0 counters in
  let report label (hits, wall, counters) =
    let proposed = prefixed "proposed/" counters in
    let applied = prefixed "applied/" counters in
    Printf.printf
      "%s campaign (%d seeds): %.2fs, %d detections; %d proposed, %d applied \
       across %d transformation types\n"
      label scale.Harness.Experiments.seeds wall (List.length hits)
      (total proposed) (total applied) (List.length proposed);
    let top =
      List.sort (fun (_, a) (_, b) -> compare b a) applied |> fun l ->
      List.filteri (fun i _ -> i < 6) l
    in
    List.iter (fun (k, v) -> Printf.printf "  applied %-34s %6d\n" k v) top
  in
  let uniform = measure [] in
  report "uniform" uniform;
  let weighting =
    [ (Spirv_fuzz.Registry.Control_flow, 4); (Spirv_fuzz.Registry.Data, 2) ]
  in
  let weighted = measure weighting in
  report "weighted (control_flow=4,data=2)" weighted;
  (* persist the section machine-readably so CI can smoke-check it *)
  let json_counters counters =
    String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "{\"type\":\"%s\",\"n\":%d}" k v)
         counters)
  in
  let json_config name (hits, wall, counters) =
    Printf.sprintf
      "\"%s\":{\"wall_s\":%.3f,\"detections\":%d,\"proposed_total\":%d,\
       \"applied_total\":%d,\"proposed\":[%s],\"applied\":[%s]}"
      name wall (List.length hits)
      (total (prefixed "proposed/" counters))
      (total (prefixed "applied/" counters))
      (json_counters (prefixed "proposed/" counters))
      (json_counters (prefixed "applied/" counters))
  in
  let oc = open_out "BENCH_PR6.json" in
  Printf.fprintf oc
    "{\"seeds\":%d,\"registry_entries\":%d,%s,%s}\n"
    scale.Harness.Experiments.seeds
    (List.length Spirv_fuzz.Registry.all)
    (json_config "uniform" uniform)
    (json_config "weighted_cf4_data2" weighted);
  close_out oc;
  Printf.printf "registry perf section written to BENCH_PR6.json\n"

(* ------------------------------------------------------------------ *)
(* Loop-aware TV: verdicts, abstain reasons, and trip bounds            *)

let loop_tv_perf () =
  section "Loop-aware TV: looping corpus coverage";
  let corpus = Lazy.force Corpus.lowered_loop_references in
  let loop_facts m =
    let f = List.hd m.Spirv_ir.Module_ir.functions in
    let av = Spirv_ir.Dataflow.Availability.make m f in
    let cfg = Spirv_ir.Dataflow.Availability.cfg av in
    let dom = Spirv_ir.Dataflow.Availability.dominance av in
    let loops = Spirv_ir.Loops.analyze cfg dom in
    let r = Spirv_ir.Dataflow.Ranges.compute m f ~cfg ~loops in
    let proven =
      List.filter
        (fun (l : Spirv_ir.Loops.loop) ->
          Spirv_ir.Dataflow.Ranges.trip_bound r ~header:l.Spirv_ir.Loops.header
          <> None)
        loops.Spirv_ir.Loops.loops
    in
    (List.length loops.Spirv_ir.Loops.loops, List.length proven)
  in
  let classify (report : Compilers.Optimizer.tv_report) =
    if report.Compilers.Optimizer.tv_guilty <> None then ("mismatch", None)
    else
      let abstained =
        List.find_map
          (fun (_, v) -> Compilers.Tv.abstain_label v)
          report.Compilers.Optimizer.tv_steps
      in
      match abstained with
      | Some label -> ("abstained", Some label)
      | None -> ("equivalent", None)
  in
  let rows =
    List.map
      (fun (name, m) ->
        let t0 = Unix.gettimeofday () in
        let verdict, reason =
          match Compilers.Optimizer.(run_tv standard) m with
          | Ok report -> classify report
          | Error _ -> ("crash", None)
        in
        let wall = Unix.gettimeofday () -. t0 in
        let n_loops, n_proven = loop_facts m in
        (name, verdict, reason, n_loops, n_proven, wall))
      corpus
  in
  List.iter
    (fun (name, verdict, reason, n_loops, n_proven, wall) ->
      Printf.printf "  %-24s %-10s %-16s %d/%d loops bounded  %.3fs\n" name
        verdict
        (Option.value ~default:"-" reason)
        n_proven n_loops wall)
    rows;
  let reason_tally =
    List.fold_left
      (fun acc label ->
        let n =
          List.length
            (List.filter (fun (_, _, r, _, _, _) -> r = Some label) rows)
        in
        if n > 0 then (label, n) :: acc else acc)
      []
      (List.rev Spirv_ir.Symval.reason_labels)
  in
  let counted =
    List.filter
      (fun (name, _, _, _, _, _) -> List.mem name Corpus.counted_loop_names)
      rows
  in
  let counted_covered =
    List.filter (fun (_, v, _, _, _, _) -> v <> "abstained") counted
  in
  let rate =
    float_of_int (List.length counted_covered)
    /. float_of_int (max 1 (List.length counted))
  in
  Printf.printf
    "counted-loop subset: %d/%d modules decided (%.0f%% non-abstained)\n"
    (List.length counted_covered) (List.length counted) (100. *. rate);
  List.iter
    (fun (label, n) -> Printf.printf "  abstain %-18s %d\n" label n)
    reason_tally;
  let oc = open_out "BENCH_PR7.json" in
  Printf.fprintf oc
    "{\"modules\":%d,\"counted\":%d,\"counted_decided\":%d,\
     \"counted_decided_rate\":%.3f,\"abstain_reasons\":{%s},\"per_module\":[%s]}\n"
    (List.length rows) (List.length counted)
    (List.length counted_covered)
    rate
    (String.concat ","
       (List.map
          (fun (label, n) -> Printf.sprintf "\"%s\":%d" label n)
          reason_tally))
    (String.concat ","
       (List.map
          (fun (name, verdict, reason, n_loops, n_proven, wall) ->
            Printf.sprintf
              "{\"name\":\"%s\",\"verdict\":\"%s\",\"reason\":%s,\
               \"loops\":%d,\"bounded\":%d,\"wall_s\":%.3f}"
              name verdict
              (match reason with
              | Some r -> Printf.sprintf "\"%s\"" r
              | None -> "null")
              n_loops n_proven wall)
          rows));
  close_out oc;
  Printf.printf "loop TV section written to BENCH_PR7.json\n"

(* ------------------------------------------------------------------ *)
(* Campaign service: fleet throughput and the shared-engine payoff      *)

let service_perf () =
  section "Campaign service: fleet throughput & shared-engine payoff";
  let seeds = 40 in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let spec =
    {
      Tbct_service.Protocol.sub_tool = Harness.Pipeline.Spirv_fuzz_tool;
      sub_seeds = seeds;
      sub_targets = [ "SwiftShader" ];
      sub_weights = "";
      sub_tv = false;
    }
  in
  (* drive [n] identical jobs through one scheduler (one shared engine and
     pool, as the daemon would) and report fleet-level throughput *)
  let run_fleet n =
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "tbct-bench-serve-%d-%d" (Unix.getpid ()) n)
    in
    rm_rf dir;
    Fun.protect
      ~finally:(fun () -> rm_rf dir)
      (fun () ->
        Harness.Pool.with_pool ~workers:4 (fun pool ->
            let sched = Tbct_service.Scheduler.create ~root:dir ~pool () in
            Fun.protect
              ~finally:(fun () -> Tbct_service.Scheduler.close sched)
              (fun () ->
                for _ = 1 to n do
                  match Tbct_service.Scheduler.submit sched spec with
                  | Ok _ -> ()
                  | Error msg -> failwith ("bench submit: " ^ msg)
                done;
                let (), wall =
                  timed (fun () ->
                      while Tbct_service.Scheduler.runnable sched do
                        ignore (Tbct_service.Scheduler.step sched)
                      done)
                in
                let hit_lists =
                  List.map
                    (fun j ->
                      match Tbct_service.Scheduler.hits sched j with
                      | Ok (hs, true) -> hs
                      | Ok (_, false) -> failwith "bench: job incomplete"
                      | Error msg -> failwith ("bench hits: " ^ msg))
                    (Tbct_service.Scheduler.jobs sched)
                in
                let stats =
                  Harness.Engine.stats (Tbct_service.Scheduler.engine sched)
                in
                ( wall,
                  hit_lists,
                  stats,
                  Tbct_service.Scheduler.cross_job_memo_hits sched ))))
  in
  let report label n (wall, _, (s : Harness.Engine.stats), cross) =
    Printf.printf
      "%s: %.2fs (%.2f jobs/s), %d runs executed, %d saved by the shared \
       engine (%.1f%% hit rate), %d cross-job memo hits\n"
      label wall
      (float_of_int n /. Float.max 1e-9 wall)
      s.Harness.Engine.runs_executed s.Harness.Engine.runs_saved
      (100.0 *. s.Harness.Engine.hit_rate)
      cross
  in
  let single = run_fleet 1 in
  let fleet = run_fleet 4 in
  report (Printf.sprintf "1 job   (%d seeds)" seeds) 1 single;
  report (Printf.sprintf "4 jobs  (%d seeds each, one engine)" seeds) 4 fleet;
  let _, single_hits, _, _ = single in
  let _, fleet_hits, _, _ = fleet in
  let reference = List.hd single_hits in
  let identical = List.for_all (fun hs -> hs = reference) fleet_hits in
  Printf.printf
    "all fleet jobs' hit lists identical to the lone job's: %b\n" identical;
  let fleet_json n (wall, _, (s : Harness.Engine.stats), cross) =
    Tbct_service.Json.Obj
      [
        ("jobs", Tbct_service.Json.Int n);
        ("wall_s", Tbct_service.Json.Float wall);
        ("jobs_per_s", Tbct_service.Json.Float (float_of_int n /. Float.max 1e-9 wall));
        ("runs_executed", Tbct_service.Json.Int s.Harness.Engine.runs_executed);
        ("runs_saved", Tbct_service.Json.Int s.Harness.Engine.runs_saved);
        ("hit_rate", Tbct_service.Json.Float s.Harness.Engine.hit_rate);
        ("cross_job_memo_hits", Tbct_service.Json.Int cross);
      ]
  in
  let doc =
    Tbct_service.Json.Obj
      [
        ("seeds_per_job", Tbct_service.Json.Int seeds);
        ("single", fleet_json 1 single);
        ("fleet", fleet_json 4 fleet);
        ("hits_identical", Tbct_service.Json.Bool identical);
      ]
  in
  let oc = open_out "BENCH_PR8.json" in
  output_string oc (Tbct_service.Json.to_string doc ^ "\n");
  close_out oc;
  Printf.printf "service perf section written to BENCH_PR8.json\n"

(* ------------------------------------------------------------------ *)
(* Memory analysis: per-module overhead, proofs and the abstain shift   *)

let memory_perf () =
  section "Memory analysis: overhead, proofs and abstain classes";
  let corpus =
    Lazy.force Corpus.lowered_references
    @ Lazy.force Corpus.lowered_loop_references
    @ Corpus.memory_references
  in
  (* (a) Memory.analyze overhead and resolution stats per module.  The
     availability analysis is shared with the range/loop passes, so the
     marginal cost of the memory oracle is [analyze] alone. *)
  let mem_rows =
    List.map
      (fun (name, m) ->
        let f = List.hd m.Spirv_ir.Module_ir.functions in
        let av = Spirv_ir.Dataflow.Availability.make m f in
        let t0 = Unix.gettimeofday () in
        let mem = Spirv_ir.Memory.analyze m f ~avail:av in
        let wall = Unix.gettimeofday () -. t0 in
        (name, Spirv_ir.Memory.stats mem, wall))
      corpus
  in
  List.iter
    (fun (name, (s : Spirv_ir.Memory.stats), wall) ->
      Printf.printf
        "  %-24s %2d loads %2d stores  %2d/%2d resolved  %2d in-bounds  \
         %2d no-alias  %.0fus\n"
        name s.Spirv_ir.Memory.n_loads s.Spirv_ir.Memory.n_stores
        s.Spirv_ir.Memory.n_resolved
        (s.Spirv_ir.Memory.n_loads + s.Spirv_ir.Memory.n_stores)
        s.Spirv_ir.Memory.n_in_bounds s.Spirv_ir.Memory.n_no_alias
        (wall *. 1e6))
    mem_rows;
  (* (b) the abstain-class shift: TV over the whole corpus, bucketing
     abstentions by reason — dynamic-index must be zero now that Symval
     folds proven-in-bounds accesses instead of giving up — plus the
     mem-proofs count per module from the counted checker. *)
  let classify (report : Compilers.Optimizer.tv_report) =
    if report.Compilers.Optimizer.tv_guilty <> None then ("mismatch", None)
    else
      match
        List.find_map
          (fun (_, v) -> Compilers.Tv.abstain_label v)
          report.Compilers.Optimizer.tv_steps
      with
      | Some label -> ("abstained", Some label)
      | None -> ("equivalent", None)
  in
  let tv_rows =
    List.map
      (fun (name, m) ->
        let t0 = Unix.gettimeofday () in
        let verdict, reason =
          match Compilers.Optimizer.(run_tv standard) m with
          | Ok report -> classify report
          | Error _ -> ("crash", None)
        in
        let proofs =
          let after = Compilers.Optimizer.(run standard) m in
          snd (Compilers.Tv.check_pass_counted m after)
        in
        let wall = Unix.gettimeofday () -. t0 in
        (name, verdict, reason, proofs, wall))
      corpus
  in
  let reason_tally =
    List.fold_left
      (fun acc label ->
        let n =
          List.length
            (List.filter (fun (_, _, r, _, _) -> r = Some label) tv_rows)
        in
        if n > 0 then (label, n) :: acc else acc)
      []
      (List.rev Spirv_ir.Symval.reason_labels)
  in
  let dynamic_index =
    List.length
      (List.filter (fun (_, _, r, _, _) -> r = Some "dynamic-index") tv_rows)
  in
  let proofs_total =
    List.fold_left (fun acc (_, _, _, p, _) -> acc + p) 0 tv_rows
  in
  List.iter
    (fun (name, verdict, reason, proofs, wall) ->
      Printf.printf "  %-24s %-10s %-16s %2d proofs  %.3fs\n" name verdict
        (Option.value ~default:"-" reason)
        proofs wall)
    tv_rows;
  Printf.printf
    "corpus of %d modules: %d mem-proofs, %d dynamic-index abstentions\n"
    (List.length tv_rows) proofs_total dynamic_index;
  List.iter
    (fun (label, n) -> Printf.printf "  abstain %-18s %d\n" label n)
    reason_tally;
  let oc = open_out "BENCH_PR9.json" in
  Printf.fprintf oc
    "{\"modules\":%d,\"memory_modules\":%d,\"mem_proofs_total\":%d,\
     \"dynamic_index_abstains\":%d,\"abstain_reasons\":{%s},\
     \"memory\":[%s],\"tv\":[%s]}\n"
    (List.length corpus)
    (List.length Corpus.memory_references)
    proofs_total dynamic_index
    (String.concat ","
       (List.map
          (fun (label, n) -> Printf.sprintf "\"%s\":%d" label n)
          reason_tally))
    (String.concat ","
       (List.map
          (fun (name, (s : Spirv_ir.Memory.stats), wall) ->
            Printf.sprintf
              "{\"name\":\"%s\",\"wall_us\":%.1f,\"loads\":%d,\"stores\":%d,\
               \"resolved\":%d,\"in_bounds\":%d,\"pairs\":%d,\"no_alias\":%d,\
               \"may_alias\":%d,\"must_alias\":%d}"
              name (wall *. 1e6) s.Spirv_ir.Memory.n_loads
              s.Spirv_ir.Memory.n_stores s.Spirv_ir.Memory.n_resolved
              s.Spirv_ir.Memory.n_in_bounds s.Spirv_ir.Memory.n_pairs
              s.Spirv_ir.Memory.n_no_alias s.Spirv_ir.Memory.n_may_alias
              s.Spirv_ir.Memory.n_must_alias)
          mem_rows))
    (String.concat ","
       (List.map
          (fun (name, verdict, reason, proofs, wall) ->
            Printf.sprintf
              "{\"name\":\"%s\",\"verdict\":\"%s\",\"reason\":%s,\
               \"mem_proofs\":%d,\"wall_s\":%.3f}"
              name verdict
              (match reason with
              | Some r -> Printf.sprintf "\"%s\"" r
              | None -> "null")
              proofs wall)
          tv_rows));
  close_out oc;
  Printf.printf "memory analysis section written to BENCH_PR9.json\n"

(* ------------------------------------------------------------------ *)
(* Compiled execution kernel: throughput vs the reference interpreter   *)

let compile_perf () =
  section "Compiled execution kernel: throughput and codec bandwidth";
  let corpus =
    Lazy.force Corpus.lowered_references
    @ Lazy.force Corpus.lowered_loop_references
    @ Corpus.memory_references
  in
  let input = Corpus.default_input in
  (* (a) bit-equality over the corpus first — the speedup below is
     meaningless if the kernel ever disagrees with the interpreter *)
  let pixel_eq a b =
    match (a, b) with
    | Spirv_ir.Image.Killed, Spirv_ir.Image.Killed -> true
    | Spirv_ir.Image.Color u, Spirv_ir.Image.Color v -> Spirv_ir.Value.equal u v
    | _, _ -> false
  in
  let render_eq a b =
    match (a, b) with
    | Ok (x : Spirv_ir.Image.t), Ok y ->
        x.Spirv_ir.Image.width = y.Spirv_ir.Image.width
        && x.Spirv_ir.Image.height = y.Spirv_ir.Image.height
        && Array.for_all2 pixel_eq x.Spirv_ir.Image.pixels
             y.Spirv_ir.Image.pixels
    | Error (s : Spirv_ir.Interp.trap), Error t -> s = t
    | _, _ -> false
  in
  let programs = List.map (fun (n, m) -> (n, m, Spirv_ir.Compile.lower m)) corpus in
  let bit_equal =
    List.for_all
      (fun (_, m, p) ->
        render_eq (Spirv_ir.Interp.render m input)
          (Spirv_ir.Compile.render_batch p input))
      programs
  in
  Printf.printf "corpus bit-equality (compiled vs interpreter): %s\n"
    (if bit_equal then "ok" else "MISMATCH");
  (* (b) fragment-execution throughput: full-grid renders per second with
     each kernel.  The compiled numbers amortize the one-time lowering the
     way the engine does (per-digest program cache). *)
  let measure budget f =
    ignore (f ());
    let t0 = Unix.gettimeofday () in
    let n = ref 0 in
    while Unix.gettimeofday () -. t0 < budget do
      f ();
      incr n
    done;
    float_of_int !n /. (Unix.gettimeofday () -. t0)
  in
  let sweeps_interp =
    measure 0.4 (fun () ->
        List.iter (fun (_, m, _) -> ignore (Spirv_ir.Interp.render m input))
          programs)
  in
  let sweeps_compiled =
    measure 0.4 (fun () ->
        List.iter
          (fun (_, _, p) -> ignore (Spirv_ir.Compile.render_batch p input))
          programs)
  in
  let frags_per_sweep =
    float_of_int
      (List.length programs * input.Spirv_ir.Input.width
      * input.Spirv_ir.Input.height)
  in
  let renders_per_sweep = float_of_int (List.length programs) in
  let speedup = sweeps_compiled /. sweeps_interp in
  let speedup_ok = speedup >= 3.0 in
  Printf.printf
    "interpreter: %.0f renders/s (%.0f fragments/s)\n\
     compiled:    %.0f renders/s (%.0f fragments/s)\n\
     fragment-execution speedup: %.1fx (gate >= 3.0x: %s)\n"
    (sweeps_interp *. renders_per_sweep)
    (sweeps_interp *. frags_per_sweep)
    (sweeps_compiled *. renders_per_sweep)
    (sweeps_compiled *. frags_per_sweep)
    speedup
    (if speedup_ok then "ok" else "FAIL");
  (* (c) end-to-end Backend.run throughput (optimizer + validation
     included), with the engine's cached-program render hook vs the
     default interpreter hook *)
  let target = Compilers.Target.swiftshader in
  let cache = Hashtbl.create 64 in
  let cached_render m i =
    let d = Spirv_ir.Digest.of_module m in
    let p =
      match Hashtbl.find_opt cache d with
      | Some p -> p
      | None ->
          let p = Spirv_ir.Compile.lower m in
          Hashtbl.replace cache d p;
          p
    in
    Spirv_ir.Compile.render_batch p i
  in
  let runs_interp =
    measure 0.4 (fun () ->
        List.iter
          (fun (_, m, _) -> ignore (Compilers.Backend.run target m input))
          programs)
  in
  let runs_compiled =
    measure 0.4 (fun () ->
        List.iter
          (fun (_, m, _) ->
            ignore (Compilers.Backend.run ~render:cached_render target m input))
          programs)
  in
  Printf.printf
    "Backend.run: %.0f runs/s interpreter, %.0f runs/s compiled (%.2fx)\n"
    (runs_interp *. renders_per_sweep)
    (runs_compiled *. renders_per_sweep)
    (runs_compiled /. runs_interp);
  (* (d) store codec bandwidth on a large rendered image (binary vs text) *)
  let big =
    let img = Spirv_ir.Image.create ~width:128 ~height:128 in
    Array.iteri
      (fun i _ ->
        img.Spirv_ir.Image.pixels.(i) <-
          Spirv_ir.Image.Color
            (Spirv_ir.Value.VComposite
               [|
                 Spirv_ir.Value.VFloat (float_of_int i *. 0.125);
                 Spirv_ir.Value.VFloat (float_of_int i *. -0.25);
                 Spirv_ir.Value.VFloat 0.5;
                 Spirv_ir.Value.VFloat 1.0;
               |]))
      img.Spirv_ir.Image.pixels;
    Compilers.Backend.Rendered img
  in
  let enc_bin = Tbct_store.Run_codec.encode_run big in
  let enc_text = Tbct_store.Run_codec.encode_run_text big in
  let mbs bytes rate = rate *. float_of_int bytes /. 1e6 in
  let bin_enc_s =
    measure 0.2 (fun () -> ignore (Tbct_store.Run_codec.encode_run big))
  in
  let bin_dec_s =
    measure 0.2 (fun () -> ignore (Tbct_store.Run_codec.decode_run enc_bin))
  in
  let text_enc_s =
    measure 0.2 (fun () -> ignore (Tbct_store.Run_codec.encode_run_text big))
  in
  let text_dec_s =
    measure 0.2 (fun () ->
        ignore (Tbct_store.Run_codec.decode_run_text enc_text))
  in
  Printf.printf
    "run codec on a 128x128 render: binary %d bytes (enc %.0f MB/s, dec %.0f \
     MB/s), text %d bytes (enc %.0f MB/s, dec %.0f MB/s)\n"
    (String.length enc_bin)
    (mbs (String.length enc_bin) bin_enc_s)
    (mbs (String.length enc_bin) bin_dec_s)
    (String.length enc_text)
    (mbs (String.length enc_text) text_enc_s)
    (mbs (String.length enc_text) text_dec_s);
  let oc = open_out "BENCH_PR10.json" in
  Printf.fprintf oc
    "{\"modules\":%d,\"bit_equal\":%b,\
     \"interp_renders_s\":%.1f,\"compiled_renders_s\":%.1f,\
     \"interp_fragments_s\":%.0f,\"compiled_fragments_s\":%.0f,\
     \"fragment_speedup\":%.2f,\"speedup_ok\":%b,\
     \"interp_runs_s\":%.1f,\"compiled_runs_s\":%.1f,\"run_speedup\":%.2f,\
     \"codec\":{\"binary_bytes\":%d,\"text_bytes\":%d,\
     \"binary_encode_mb_s\":%.1f,\"binary_decode_mb_s\":%.1f,\
     \"text_encode_mb_s\":%.1f,\"text_decode_mb_s\":%.1f}}\n"
    (List.length programs) bit_equal
    (sweeps_interp *. renders_per_sweep)
    (sweeps_compiled *. renders_per_sweep)
    (sweeps_interp *. frags_per_sweep)
    (sweeps_compiled *. frags_per_sweep)
    speedup speedup_ok
    (runs_interp *. renders_per_sweep)
    (runs_compiled *. renders_per_sweep)
    (runs_compiled /. runs_interp)
    (String.length enc_bin) (String.length enc_text)
    (mbs (String.length enc_bin) bin_enc_s)
    (mbs (String.length enc_bin) bin_dec_s)
    (mbs (String.length enc_text) text_enc_s)
    (mbs (String.length enc_text) text_dec_s);
  close_out oc;
  Printf.printf "compiled kernel section written to BENCH_PR10.json\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)

let perf_suite () =
  section "Bechamel micro-benchmarks";
  let open Bechamel in
  let ref_module = snd (List.hd (Lazy.force Corpus.lowered_references)) in
  let ctx = Spirv_fuzz.Context.make ref_module Corpus.default_input in
  let fuzz_result = lazy (Spirv_fuzz.Fuzzer.run ~seed:1 ctx) in
  let tests =
    [
      Test.make ~name:"interp: render 8x8 frame" (Staged.stage (fun () ->
          ignore (Spirv_ir.Interp.render ref_module Corpus.default_input)));
      Test.make ~name:"optimizer: -O pipeline" (Staged.stage (fun () ->
          ignore (Compilers.Optimizer.run Compilers.Optimizer.standard ref_module)));
      Test.make ~name:"validator: full check" (Staged.stage (fun () ->
          ignore (Spirv_ir.Validate.is_valid ref_module)));
      Test.make ~name:"lint: full module" (Staged.stage (fun () ->
          ignore (Spirv_ir.Lint.check_module ref_module)));
      Test.make ~name:"fuzzer: one campaign seed" (Staged.stage (fun () ->
          ignore (Spirv_fuzz.Fuzzer.run ~seed:1 ctx)));
      Test.make ~name:"fuzzer: weighted pass draw" (Staged.stage (fun () ->
          let config =
            {
              Spirv_fuzz.Fuzzer.default_config with
              Spirv_fuzz.Fuzzer.weights =
                [ (Spirv_fuzz.Registry.Control_flow, 4);
                  (Spirv_fuzz.Registry.Data, 2) ];
            }
          in
          ignore (Spirv_fuzz.Fuzzer.run ~config ~seed:1 ctx)));
      Test.make ~name:"replay: recorded sequence" (Staged.stage (fun () ->
          let r = Lazy.force fuzz_result in
          ignore (Spirv_fuzz.Lang.replay ctx r.Spirv_fuzz.Fuzzer.transformations)));
      Test.make ~name:"disasm: module listing" (Staged.stage (fun () ->
          ignore (Spirv_ir.Disasm.to_string ref_module)));
      Test.make ~name:"glsl: lower reference" (Staged.stage (fun () ->
          ignore (Glsl_like.Lower.lower (snd (List.hd Corpus.references)))));
    ]
  in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
    let raw = Benchmark.all cfg instances test in
    let results =
      Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
        Toolkit.Instance.monotonic_clock raw
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "  %-32s %12.1f ns/run\n" name est
        | _ -> Printf.printf "  %-32s (no estimate)\n" name)
      results
  in
  List.iter (fun t -> benchmark (Test.make_grouped ~name:"g" [ t ])) tests

(* ------------------------------------------------------------------ *)

let () =
  let seeds = ref Harness.Experiments.default_scale.Harness.Experiments.seeds in
  let perf = ref false in
  let perf_smoke = ref false in
  let ablate = ref false in
  let skip_campaign = ref false in
  Arg.parse
    [
      ("--seeds", Arg.Set_int seeds, "tests per tool configuration (default 150)");
      ("--perf", Arg.Set perf, "also run the Bechamel micro-benchmarks");
      ( "--perf-smoke",
        Arg.Set perf_smoke,
        "only the quick registry, loop-TV, service, memory and compiled-kernel \
         perf sections (writes BENCH_PR6.json through BENCH_PR10.json)" );
      ("--ablate", Arg.Set ablate, "also run the design ablations");
      ("--quick", Arg.Unit (fun () -> seeds := 60), "small quick run");
      ("--no-campaign", Arg.Set skip_campaign, "only the deterministic figures");
    ]
    (fun _ -> ())
    "bench: regenerate the paper's tables and figures";
  if !perf_smoke then begin
    registry_perf ();
    print_newline ();
    loop_tv_perf ();
    print_newline ();
    service_perf ();
    print_newline ();
    memory_perf ();
    print_newline ();
    compile_perf ();
    print_newline ();
    exit 0
  end;
  let scale = { Harness.Experiments.default_scale with Harness.Experiments.seeds = !seeds } in
  print_table2 ();
  print_figures_4_5 ();
  print_figure3 ();
  print_figure8 ();
  if not !skip_campaign then begin
    section (Printf.sprintf "Campaigns (%d seeds per tool configuration)" !seeds);
    let engine = Harness.Engine.create () in
    let hits = run_campaigns ~scale ~engine in
    print_table3 ~scale ~hits;
    print_figure7 ~hits;
    print_rq2 ~scale ~engine ~hits;
    print_table4 ~scale ~engine ~hits;
    if !ablate then print_ablations ~scale ~engine ~hits;
    Printf.printf "\n%s\n"
      (Harness.Engine.stats_to_string (Harness.Engine.stats engine))
  end;
  if !perf then begin
    engine_perf ();
    pool_perf ();
    store_perf ();
    oracle_perf ();
    tv_perf ();
    registry_perf ();
    loop_tv_perf ();
    service_perf ();
    memory_perf ();
    compile_perf ();
    perf_suite ()
  end;
  print_newline ()
