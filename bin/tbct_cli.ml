(* Command-line interface to the library: assemble/disassemble/validate/run
   modules, fuzz them, reduce bug-triggering transformation sequences, run
   targets and small campaigns.  Modules are exchanged as .spvasm text via
   the Asm/Disasm pair. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Common helpers                                                      *)

let read_module path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Spirv_ir.Asm.of_string_result s with
  | Ok m -> Ok m
  | Error e -> Error (Printf.sprintf "%s: %s" path e)

let write_module path m =
  let oc = open_out_bin path in
  output_string oc (Spirv_ir.Disasm.to_string m);
  close_out oc

(* the references plus the loop and memory corpora: everything --corpus
   can name *)
let corpus_modules () =
  Lazy.force Corpus.lowered_references
  @ Lazy.force Corpus.lowered_loop_references
  @ Corpus.memory_references

let corpus_module name = List.assoc_opt name (corpus_modules ())

let load ~path ~corpus =
  match (path, corpus) with
  | Some p, _ -> read_module p
  | None, Some name -> (
      match corpus_module name with
      | Some m -> Ok m
      | None ->
          Error
            (Printf.sprintf "unknown corpus program %s (try: %s)" name
               (String.concat ", " (List.map fst (corpus_modules ())))))
  | None, None -> Error "provide a module file or --corpus NAME"

let or_die = function
  | Ok x -> x
  | Error e ->
      prerr_endline ("error: " ^ e);
      exit 1

(* shared args *)
let file_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"MODULE.spvasm")

let corpus_arg =
  Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"NAME"
         ~doc:"Use a built-in corpus shader instead of a file.")

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let target_arg =
  let names = List.map (fun (t : Compilers.Target.t) -> t.Compilers.Target.name) Compilers.Target.all in
  Arg.(value & opt string "SwiftShader"
       & info [ "target" ] ~docv:"TARGET"
           ~doc:(Printf.sprintf "Target to test (%s)." (String.concat ", " names)))

let uniforms_arg =
  Arg.(value & opt (some string) None
       & info [ "uniforms" ] ~docv:"SPEC"
           ~doc:"Input description: comma-separated name=value assignments \
                 (true/false, ints, floats, (a;b;...) composites) plus the \
                 reserved width=/height= grid size.  Default: the corpus \
                 input.")

let input_of_spec = function
  | None -> Ok Corpus.default_input
  | Some spec -> Spirv_ir.Input.of_string spec

let check_contracts_arg =
  Arg.(value & flag
       & info [ "check-contracts" ]
           ~doc:"Debug mode: after every applied transformation, assert the \
                 paper's contract (precondition held, module validates, no \
                 new lint errors, image unchanged).  Never changes which \
                 variants are generated.")

(* a contract breach is a bug in this tool, not in the module under test:
   surface it loudly with its own exit code *)
let or_contract_violation f =
  try f ()
  with Spirv_fuzz.Contract.Violation v ->
    prerr_endline (Spirv_fuzz.Contract.violation_to_string v);
    exit 2

let find_target name =
  match Compilers.Target.find name with
  | Some t -> Ok t
  | None -> Error ("unknown target " ^ name)

(* minimal JSON string quoting for the --json output modes (no JSON library
   in the build): escapes the two JSON metacharacters and control bytes *)
let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_arg =
  Arg.(value & flag
       & info [ "json" ]
           ~doc:"Machine-readable output: one JSON object per line.")

(* ------------------------------------------------------------------ *)
(* disasm / validate / run                                             *)

let validate_cmd =
  let run path corpus =
    let m = or_die (load ~path ~corpus) in
    match Spirv_ir.Validate.check m with
    | Ok () ->
        print_endline "valid";
        0
    | Error errors ->
        List.iter (fun e -> print_endline (Spirv_ir.Validate.error_to_string e)) errors;
        1
  in
  Cmd.v (Cmd.info "validate" ~doc:"Validate a module (the spirv-val analog).")
    Term.(const (fun p c -> Stdlib.exit (run p c)) $ file_arg $ corpus_arg)

let lint_cmd =
  let all_arg =
    Arg.(value & flag
         & info [ "all" ]
             ~doc:"Lint every corpus reference and donor — the modules the \
                   examples and campaigns build on.")
  in
  let run path corpus all json =
    let mods =
      if all then begin
        (* donors repeat the references; keep the first of each name *)
        let seen = Hashtbl.create 16 in
        List.filter
          (fun (name, _) ->
            if Hashtbl.mem seen name then false
            else begin
              Hashtbl.add seen name ();
              true
            end)
          (corpus_modules () @ Lazy.force Corpus.lowered_donors)
      end
      else
        let name =
          match (path, corpus) with
          | Some p, _ -> p
          | None, Some c -> c
          | None, None -> "<module>"
        in
        [ (name, or_die (load ~path ~corpus)) ]
    in
    let errors = ref 0 and warnings = ref 0 in
    List.iter
      (fun (name, m) ->
        List.iter
          (fun (f : Spirv_ir.Lint.finding) ->
            let severity =
              match f.Spirv_ir.Lint.severity with
              | Spirv_ir.Lint.Error ->
                  incr errors;
                  "error"
              | Spirv_ir.Lint.Warning ->
                  incr warnings;
                  "warning"
            in
            if json then
              Printf.printf
                "{\"module\":%s,\"severity\":%s,\"rule\":%s,\"finding\":%s}\n"
                (json_string name) (json_string severity)
                (json_string f.Spirv_ir.Lint.rule)
                (json_string (Spirv_ir.Lint.to_string f))
            else Printf.printf "%s: %s\n" name (Spirv_ir.Lint.to_string f))
          (Spirv_ir.Lint.check_module m))
      mods;
    if not json then
      Printf.printf "linted %d module(s): %d error(s), %d warning(s)\n"
        (List.length mods) !errors !warnings;
    if !errors > 0 then 1 else 0
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run the IR lint suite (dead blocks/results, phi mismatches, \
             undominated uses, write-only locals, block order) over a module \
             or the whole corpus.  Exits non-zero on error-severity findings. \
             With $(b,--json), one JSON object per finding per line.")
    Term.(const (fun p c a j -> Stdlib.exit (run p c a j)) $ file_arg
          $ corpus_arg $ all_arg $ json_arg)

let tv_cmd =
  let all_arg =
    Arg.(value & flag
         & info [ "all" ]
             ~doc:"Validate every corpus reference (including the loop \
                   corpus) instead of one module.")
  in
  let run path corpus all target json =
    let t = or_die (find_target target) in
    let mods =
      if all then corpus_modules ()
      else
        let name =
          match (path, corpus) with
          | Some p, _ -> p
          | None, Some c -> c
          | None, None -> "<module>"
        in
        [ (name, or_die (load ~path ~corpus)) ]
    in
    let mismatches = ref 0 and abstentions = ref 0 in
    let report name (p : Compilers.Optimizer.pass_name)
        (v : Compilers.Tv.verdict) =
      let pass = Compilers.Optimizer.show_pass_name p in
      if json then begin
        let base =
          Printf.sprintf "{\"module\":%s,\"target\":%s,\"pass\":%s"
            (json_string name) (json_string t.Compilers.Target.name)
            (json_string pass)
        in
        match v with
        | Compilers.Tv.Equivalent ->
            Printf.printf "%s,\"verdict\":\"equivalent\"}\n" base
        | Compilers.Tv.Mismatch w ->
            Printf.printf
              "%s,\"verdict\":\"mismatch\",\"slot\":%s,\"before\":%s,\"after\":%s}\n"
              base
              (json_string w.Compilers.Tv.w_slot)
              (json_string w.Compilers.Tv.w_before)
              (json_string w.Compilers.Tv.w_after)
        | Compilers.Tv.Abstained reason ->
            Printf.printf "%s,\"verdict\":\"abstained\",\"reason\":%s}\n" base
              (json_string reason)
      end
      else
        match v with
        | Compilers.Tv.Equivalent -> ()
        | Compilers.Tv.Mismatch w ->
            Printf.printf "%s: MISMATCH in %s (%s slot):\n  before: %s\n  after:  %s\n"
              name pass w.Compilers.Tv.w_slot w.Compilers.Tv.w_before
              w.Compilers.Tv.w_after
        | Compilers.Tv.Abstained reason ->
            Printf.printf "%s: %s abstained: %s\n" name pass reason
    in
    List.iter
      (fun (name, m) ->
        match
          Compilers.Optimizer.run_tv ~flags:t.Compilers.Target.opt_flags
            t.Compilers.Target.pipeline m
        with
        | Error signature ->
            if json then
              Printf.printf
                "{\"module\":%s,\"target\":%s,\"verdict\":\"crash\",\"signature\":%s}\n"
                (json_string name) (json_string t.Compilers.Target.name)
                (json_string signature)
            else Printf.printf "%s: optimizer crashed: %s\n" name signature
        | Ok report_ ->
            List.iter
              (fun (p, v) ->
                (match v with
                | Compilers.Tv.Mismatch _ -> incr mismatches
                | Compilers.Tv.Abstained _ -> incr abstentions
                | Compilers.Tv.Equivalent -> ());
                report name p v)
              report_.Compilers.Optimizer.tv_steps;
            match report_.Compilers.Optimizer.tv_guilty with
            | Some p when not json ->
                Printf.printf "%s: guilty pass: %s\n" name
                  (Compilers.Optimizer.show_pass_name p)
            | _ -> ())
      mods;
    if not json then
      Printf.printf
        "validated %d module(s) against %s's pipeline: %d mismatch(es), %d \
         abstention(s)\n"
        (List.length mods) t.Compilers.Target.name !mismatches !abstentions;
    if !mismatches > 0 then 1 else 0
  in
  Cmd.v
    (Cmd.info "tv"
       ~doc:"Translation-validate an optimizer pipeline on a module: run \
             every pass of the target's pipeline (with its injected-bug \
             flags) and check each before/after pair for symbolic \
             equivalence, naming the guilty pass of any mismatch.  Exits \
             non-zero on mismatch; abstentions are reported but never \
             treated as bugs.  With $(b,--json), one JSON verdict per line.")
    Term.(const (fun p c a t j -> Stdlib.exit (run p c a t j)) $ file_arg
          $ corpus_arg $ all_arg $ target_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* analyze: the loop forest and value ranges behind the TV oracle      *)

let analyze_cmd =
  let loops_arg =
    Arg.(value & flag
         & info [ "loops" ] ~doc:"Print only the natural-loop forest.")
  in
  let ranges_arg =
    Arg.(value & flag
         & info [ "ranges" ]
             ~doc:"Print only the value ranges and trip-count bounds.")
  in
  let memory_arg =
    Arg.(value & flag
         & info [ "memory" ]
             ~doc:"Print only the memory/alias analysis: access paths, \
                   in-bounds proofs, alias pair classification and the \
                   def-use findings.")
  in
  let run path corpus loops_only ranges_only memory_only json =
    let m = or_die (load ~path ~corpus) in
    let show_loops = loops_only || (not ranges_only && not memory_only) in
    let show_ranges = ranges_only || (not loops_only && not memory_only) in
    let show_memory = memory_only || (not loops_only && not ranges_only) in
    let id = Spirv_ir.Id.to_string in
    let ids l = String.concat " " (List.map id l) in
    (* JSON interval corners: null stands for the infinite sentinel *)
    let corner n =
      if n = min_int || n = max_int then "null" else string_of_int n
    in
    List.iter
      (fun (f : Spirv_ir.Func.t) ->
        let av = Spirv_ir.Dataflow.Availability.make m f in
        let cfg = Spirv_ir.Dataflow.Availability.cfg av in
        let dom = Spirv_ir.Dataflow.Availability.dominance av in
        let forest = Spirv_ir.Loops.analyze cfg dom in
        let ranges =
          Spirv_ir.Dataflow.Ranges.compute m f ~cfg ~loops:forest
        in
        let bound_of (l : Spirv_ir.Loops.loop) =
          Spirv_ir.Dataflow.Ranges.trip_bound ranges ~header:l.Spirv_ir.Loops.header
        in
        let mem =
          if show_memory then Some (Spirv_ir.Memory.analyze m f ~avail:av)
          else None
        in
        if json then begin
          let loop_objs =
            List.map
              (fun (l : Spirv_ir.Loops.loop) ->
                Printf.sprintf
                  "{\"header\":%s,\"depth\":%d,\"blocks\":%d,\"latches\":[%s],\
                   \"exits\":%d,\"trip_bound\":%s}"
                  (json_string (id l.Spirv_ir.Loops.header))
                  l.Spirv_ir.Loops.depth
                  (Spirv_ir.Id.Set.cardinal l.Spirv_ir.Loops.blocks)
                  (String.concat ","
                     (List.map (fun b -> json_string (id b))
                        l.Spirv_ir.Loops.latches))
                  (List.length l.Spirv_ir.Loops.exits)
                  (match bound_of l with
                  | Some n -> string_of_int n
                  | None -> "null"))
              forest.Spirv_ir.Loops.loops
          in
          let range_objs =
            List.map
              (fun (r, (itv : Spirv_ir.Dataflow.Itv.t)) ->
                Printf.sprintf "{\"id\":%s,\"lo\":%s,\"hi\":%s}"
                  (json_string (id r))
                  (corner itv.Spirv_ir.Dataflow.Itv.lo)
                  (corner itv.Spirv_ir.Dataflow.Itv.hi))
              (Spirv_ir.Dataflow.Ranges.known ranges)
          in
          let memory_obj =
            match mem with
            | None -> ""
            | Some mem ->
                let s = Spirv_ir.Memory.stats mem in
                let access_objs =
                  List.map
                    (fun (a : Spirv_ir.Memory.access) ->
                      Printf.sprintf
                        "{\"kind\":%s,\"block\":%s,\"ptr\":%s,\"path\":%s,\
                         \"in_bounds\":%b}"
                        (json_string
                           (match a.Spirv_ir.Memory.a_kind with
                           | Spirv_ir.Memory.ALoad -> "load"
                           | Spirv_ir.Memory.AStore -> "store"))
                        (json_string (id a.Spirv_ir.Memory.a_block))
                        (json_string (id a.Spirv_ir.Memory.a_ptr))
                        (match a.Spirv_ir.Memory.a_path with
                        | Some p ->
                            json_string (Spirv_ir.Memory.path_to_string p)
                        | None -> "null")
                        a.Spirv_ir.Memory.in_bounds)
                    (Spirv_ir.Memory.accesses mem)
                in
                Printf.sprintf
                  ",\"memory\":{\"loads\":%d,\"stores\":%d,\"resolved\":%d,\
                   \"in_bounds\":%d,\"pairs\":%d,\"no_alias\":%d,\
                   \"may_alias\":%d,\"must_alias\":%d,\"uninitialized\":%d,\
                   \"dead_stores\":%d,\"redundant_loads\":%d,\
                   \"accesses\":[%s]}"
                  s.Spirv_ir.Memory.n_loads s.Spirv_ir.Memory.n_stores
                  s.Spirv_ir.Memory.n_resolved s.Spirv_ir.Memory.n_in_bounds
                  s.Spirv_ir.Memory.n_pairs s.Spirv_ir.Memory.n_no_alias
                  s.Spirv_ir.Memory.n_may_alias s.Spirv_ir.Memory.n_must_alias
                  s.Spirv_ir.Memory.n_uninitialized
                  s.Spirv_ir.Memory.n_dead_stores
                  s.Spirv_ir.Memory.n_redundant_loads
                  (String.concat "," access_objs)
          in
          Printf.printf
            "{\"fn\":%s,\"loops\":[%s],\"irreducible\":%d,\"ranges\":[%s]%s}\n"
            (json_string (id f.Spirv_ir.Func.id))
            (String.concat "," (if show_loops then loop_objs else []))
            (List.length forest.Spirv_ir.Loops.irreducible)
            (String.concat "," (if show_ranges then range_objs else []))
            memory_obj
        end
        else begin
          Printf.printf "fn %s:\n" (id f.Spirv_ir.Func.id);
          if show_loops then begin
            if forest.Spirv_ir.Loops.loops = [] then
              print_endline "  no loops";
            List.iter
              (fun (l : Spirv_ir.Loops.loop) ->
                Printf.printf
                  "  loop %s: depth %d, %d block(s), latches [%s], %d \
                   exit(s), trip bound %s\n"
                  (id l.Spirv_ir.Loops.header) l.Spirv_ir.Loops.depth
                  (Spirv_ir.Id.Set.cardinal l.Spirv_ir.Loops.blocks)
                  (ids l.Spirv_ir.Loops.latches)
                  (List.length l.Spirv_ir.Loops.exits)
                  (match bound_of l with
                  | Some n -> string_of_int n
                  | None -> "unproven"))
              forest.Spirv_ir.Loops.loops;
            List.iter
              (fun (u, v) ->
                Printf.printf "  irreducible edge %s -> %s\n" (id u) (id v))
              forest.Spirv_ir.Loops.irreducible
          end;
          if show_ranges then begin
            (match
               Spirv_ir.Id.Set.elements
                 (Spirv_ir.Dataflow.Ranges.tracked ranges)
             with
            | [] -> ()
            | cells -> Printf.printf "  tracked cells: %s\n" (ids cells));
            List.iter
              (fun (r, itv) ->
                Printf.printf "  %s in %s\n" (id r)
                  (Spirv_ir.Dataflow.Itv.to_string itv))
              (Spirv_ir.Dataflow.Ranges.known ranges)
          end;
          match mem with
          | None -> ()
          | Some mem ->
              let s = Spirv_ir.Memory.stats mem in
              Printf.printf
                "  memory: %d load(s), %d store(s), %d resolved, %d \
                 in-bounds; pairs: %d no-alias, %d may-alias, %d must-alias\n"
                s.Spirv_ir.Memory.n_loads s.Spirv_ir.Memory.n_stores
                s.Spirv_ir.Memory.n_resolved s.Spirv_ir.Memory.n_in_bounds
                s.Spirv_ir.Memory.n_no_alias s.Spirv_ir.Memory.n_may_alias
                s.Spirv_ir.Memory.n_must_alias;
              List.iter
                (fun a ->
                  Printf.printf "  %s\n"
                    (Spirv_ir.Memory.access_to_string mem a))
                (Spirv_ir.Memory.accesses mem);
              let findings label accs =
                List.iter
                  (fun (a : Spirv_ir.Memory.access) ->
                    Printf.printf "  %s: %s in %s\n" label
                      (id a.Spirv_ir.Memory.a_ptr)
                      (id a.Spirv_ir.Memory.a_block))
                  accs
              in
              findings "uninitialized-load"
                (Spirv_ir.Memory.uninitialized_loads mem);
              findings "dead-store" (Spirv_ir.Memory.dead_stores mem);
              List.iter
                (fun ((_, later) : Spirv_ir.Memory.access * _) ->
                  Printf.printf "  redundant-load: %s in %s\n"
                    (id later.Spirv_ir.Memory.a_ptr)
                    (id later.Spirv_ir.Memory.a_block))
                (Spirv_ir.Memory.redundant_loads mem)
        end)
      m.Spirv_ir.Module_ir.functions
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Print the static analyses the TV oracle runs on a module: the \
             natural-loop forest (headers, nesting, latches, exits, proven \
             trip-count bounds), the interval value ranges, and the \
             memory/alias analysis (access paths, in-bounds proofs, alias \
             classification, def-use findings), per function.  \
             $(b,--loops), $(b,--ranges) or $(b,--memory) restricts the \
             report; with $(b,--json), one JSON object per function per \
             line.")
    Term.(const run $ file_arg $ corpus_arg $ loops_arg $ ranges_arg
          $ memory_arg $ json_arg)

let disasm_cmd =
  let run path corpus =
    let m = or_die (load ~path ~corpus) in
    print_string (Spirv_ir.Disasm.to_string m)
  in
  Cmd.v (Cmd.info "disasm" ~doc:"Print the canonical textual form of a module.")
    Term.(const run $ file_arg $ corpus_arg)

let render_cmd =
  let run path corpus uniforms =
    let m = or_die (load ~path ~corpus) in
    let input = or_die (input_of_spec uniforms) in
    match Spirv_ir.Interp.render m input with
    | Ok img -> print_string (Spirv_ir.Image.to_ascii img)
    | Error t ->
        prerr_endline ("trap: " ^ Spirv_ir.Interp.trap_to_string t);
        exit 1
  in
  Cmd.v
    (Cmd.info "render"
       ~doc:"Execute a module on the reference interpreter and print the image.")
    Term.(const run $ file_arg $ corpus_arg $ uniforms_arg)

let run_cmd =
  let run path corpus target uniforms =
    let m = or_die (load ~path ~corpus) in
    let t = or_die (find_target target) in
    let input = or_die (input_of_spec uniforms) in
    match Compilers.Backend.run t m input with
    | Compilers.Backend.Rendered img ->
        Printf.printf "rendered on %s:\n%s" target (Spirv_ir.Image.to_ascii img)
    | Compilers.Backend.Compiled_ok -> Printf.printf "compiled ok on %s\n" target
    | Compilers.Backend.Crashed s ->
        Printf.printf "CRASH on %s: %s\n" target s;
        exit 2
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile and execute a module on a (buggy) target.")
    Term.(const run $ file_arg $ corpus_arg $ target_arg $ uniforms_arg)

let targets_cmd =
  let run () =
    Printf.printf "%-14s %-22s %-10s %s\n" "Target" "Version" "GPU" "Bugs";
    List.iter
      (fun (t : Compilers.Target.t) ->
        Printf.printf "%-14s %-22s %-10s %s\n" t.Compilers.Target.name
          t.Compilers.Target.version
          (Compilers.Target.gpu_type_to_string t.Compilers.Target.gpu)
          (String.concat ", "
             (t.Compilers.Target.crash_bug_ids @ t.Compilers.Target.miscompile_bug_ids)))
      Compilers.Target.all
  in
  Cmd.v (Cmd.info "targets" ~doc:"List the Table 2 targets and their bug rosters.")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* transformations: the registry as a user-facing catalogue            *)

let transformations_cmd =
  let check_arg =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Registry completeness gate: verify that every \
                   transformation type id has exactly one registry entry \
                   and vice versa; non-zero exit on any mismatch.")
  in
  let seeds_arg =
    Arg.(value & opt int 0
         & info [ "seeds" ] ~docv:"N"
             ~doc:"Fuzz N corpus seeds and append per-type \
                   proposed/applied counters to the listing — the quick \
                   way to see how $(b,--weights) shifts sampling.")
  in
  let weights_arg =
    Arg.(value & opt (some string) None
         & info [ "weights" ] ~docv:"FAMILY=N,..."
             ~doc:"Per-family sampling-weight multipliers used by \
                   $(b,--seeds) (same syntax as campaign --weights).")
  in
  let run json check seeds weights =
    let weights =
      match weights with
      | None -> []
      | Some s -> (
          match Spirv_fuzz.Registry.parse_weights s with
          | Ok w -> w
          | Error msg ->
              prerr_endline ("error: --weights: " ^ msg);
              exit 1)
    in
    if check then begin
      let catalogue = Spirv_fuzz.Transformation.catalogue in
      let entries =
        List.map
          (fun (e : Spirv_fuzz.Registry.entry) -> e.Spirv_fuzz.Registry.type_id)
          Spirv_fuzz.Registry.all
      in
      let missing =
        List.filter (fun id -> not (List.mem id entries)) catalogue
      in
      let extra =
        List.filter (fun id -> not (List.mem id catalogue)) entries
      in
      let dupes =
        List.filter
          (fun id -> List.length (List.filter (String.equal id) entries) > 1)
          entries
      in
      if missing = [] && extra = [] && dupes = [] then begin
        Printf.printf "registry complete: %d transformation types, %d entries\n"
          (List.length catalogue) (List.length entries);
        0
      end
      else begin
        List.iter (fun id -> Printf.printf "missing registry entry: %s\n" id) missing;
        List.iter (fun id -> Printf.printf "entry without transformation type: %s\n" id) extra;
        List.iter (fun id -> Printf.printf "duplicate registry entry: %s\n" id) dupes;
        1
      end
    end
    else begin
      let counters = Hashtbl.create 64 in
      if seeds > 0 then begin
        let refs = Lazy.force Corpus.lowered_references in
        let donors = List.map snd (Lazy.force Corpus.lowered_donors) in
        for seed = 0 to seeds - 1 do
          let _, m = List.nth refs (seed mod List.length refs) in
          let ctx = Spirv_fuzz.Context.make m Corpus.default_input in
          let config =
            {
              Spirv_fuzz.Fuzzer.default_config with
              Spirv_fuzz.Fuzzer.donors = donors;
              Spirv_fuzz.Fuzzer.weights = weights;
            }
          in
          let result = Spirv_fuzz.Fuzzer.run ~config ~seed ctx in
          List.iter
            (fun (ty, proposed, applied) ->
              let p0, a0 =
                Option.value ~default:(0, 0) (Hashtbl.find_opt counters ty)
              in
              Hashtbl.replace counters ty (p0 + proposed, a0 + applied))
            result.Spirv_fuzz.Fuzzer.counters
        done
      end;
      let tally ty = Option.value ~default:(0, 0) (Hashtbl.find_opt counters ty) in
      if json then
        List.iter
          (fun (e : Spirv_fuzz.Registry.entry) ->
            let proposed, applied = tally e.Spirv_fuzz.Registry.type_id in
            Printf.printf
              "{\"type_id\":%s,\"family\":%s,\"pass\":%s,\
               \"image_preserving\":%b,\"dedup_relevant\":%b,\"weight\":%d%s}\n"
              (json_string e.Spirv_fuzz.Registry.type_id)
              (json_string
                 (Spirv_fuzz.Registry.family_to_string e.Spirv_fuzz.Registry.family))
              (match e.Spirv_fuzz.Registry.pass with
              | Some p -> json_string p
              | None -> "null")
              e.Spirv_fuzz.Registry.image_preserving
              e.Spirv_fuzz.Registry.dedup_relevant
              e.Spirv_fuzz.Registry.weight
              (if seeds > 0 then
                 Printf.sprintf ",\"proposed\":%d,\"applied\":%d" proposed applied
               else ""))
          Spirv_fuzz.Registry.all
      else begin
        Printf.printf "%-34s %-12s %-28s %-6s %-6s %6s%s\n" "Type" "Family"
          "Pass" "Image" "Dedup" "Weight"
          (if seeds > 0 then Printf.sprintf " %9s %9s" "Proposed" "Applied"
           else "");
        List.iter
          (fun (e : Spirv_fuzz.Registry.entry) ->
            let proposed, applied = tally e.Spirv_fuzz.Registry.type_id in
            Printf.printf "%-34s %-12s %-28s %-6s %-6s %6d%s\n"
              e.Spirv_fuzz.Registry.type_id
              (Spirv_fuzz.Registry.family_to_string e.Spirv_fuzz.Registry.family)
              (Option.value ~default:"-" e.Spirv_fuzz.Registry.pass)
              (if e.Spirv_fuzz.Registry.image_preserving then "yes" else "no")
              (if e.Spirv_fuzz.Registry.dedup_relevant then "yes" else "no")
              e.Spirv_fuzz.Registry.weight
              (if seeds > 0 then Printf.sprintf " %9d %9d" proposed applied
               else ""))
          Spirv_fuzz.Registry.all
      end;
      0
    end
  in
  Cmd.v
    (Cmd.info "transformations"
       ~doc:
         "List the transformation registry: every transformation type with \
          its family, proposing pass, contract flags and sampling weight — \
          the single table that drives the passes, the contract checker, \
          deduplication and campaign scheduling.")
    Term.(const (fun j c s w -> Stdlib.exit (run j c s w)) $ json_arg
          $ check_arg $ seeds_arg $ weights_arg)

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)

let fuzz_cmd =
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the variant module here.")
  in
  let count_arg =
    Arg.(value & opt int 0
         & info [ "max-transformations" ] ~docv:"N"
             ~doc:"Cap on recorded transformations (0 = default).")
  in
  let run path corpus seed out cap check_contracts =
    let m = or_die (load ~path ~corpus) in
    let ctx = Spirv_fuzz.Context.make m Corpus.default_input in
    let config =
      let base =
        {
          Spirv_fuzz.Fuzzer.default_config with
          Spirv_fuzz.Fuzzer.donors = List.map snd (Lazy.force Corpus.lowered_donors);
          Spirv_fuzz.Fuzzer.check_contracts = check_contracts;
        }
      in
      if cap > 0 then { base with Spirv_fuzz.Fuzzer.max_transformations = cap } else base
    in
    let result = or_contract_violation (fun () -> Spirv_fuzz.Fuzzer.run ~config ~seed ctx) in
    let variant = result.Spirv_fuzz.Fuzzer.final.Spirv_fuzz.Context.m in
    Printf.printf "applied %d transformations over %d passes; %d -> %d instructions\n"
      (List.length result.Spirv_fuzz.Fuzzer.transformations)
      (List.length result.Spirv_fuzz.Fuzzer.passes_run)
      (Spirv_ir.Module_ir.instruction_count m)
      (Spirv_ir.Module_ir.instruction_count variant);
    let tally = Hashtbl.create 16 in
    List.iter
      (fun t ->
        let k = Spirv_fuzz.Transformation.type_id t in
        Hashtbl.replace tally k (1 + Option.value ~default:0 (Hashtbl.find_opt tally k)))
      result.Spirv_fuzz.Fuzzer.transformations;
    Hashtbl.iter (fun k n -> Printf.printf "  %-28s %d\n" k n) tally;
    match out with
    | Some path ->
        write_module path variant;
        Printf.printf "variant written to %s\n" path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Apply random semantics-preserving transformations to a module.")
    Term.(const run $ file_arg $ corpus_arg $ seed_arg $ out_arg $ count_arg
          $ check_contracts_arg)

(* ------------------------------------------------------------------ *)
(* hunt: fuzz against a target until a bug is found, then reduce       *)

let hunt_cmd =
  let seeds_arg =
    Arg.(value & opt int 200 & info [ "seeds" ] ~docv:"N" ~doc:"Seeds to try.")
  in
  let domains_arg =
    Arg.(value & opt int 1
         & info [ "domains" ] ~docv:"N"
             ~doc:"Scan seeds on N parallel domains (block-wise; the seed \
                   reported is the smallest triggering one, identical to \
                   the sequential scan).")
  in
  let run path corpus target seeds domains =
    let m = or_die (load ~path ~corpus) in
    let t = or_die (find_target target) in
    let input = Corpus.default_input in
    let engine = Harness.Engine.create () in
    let config =
      {
        Spirv_fuzz.Fuzzer.default_config with
        Spirv_fuzz.Fuzzer.donors = List.map snd (Lazy.force Corpus.lowered_donors);
      }
    in
    let original_run = Harness.Engine.run engine t m input in
    let try_seed seed =
      let ctx = Spirv_fuzz.Context.make m input in
      let result = Spirv_fuzz.Fuzzer.run ~config ~seed ctx in
      match
        ( original_run,
          Harness.Engine.run engine t
            result.Spirv_fuzz.Fuzzer.final.Spirv_fuzz.Context.m input )
      with
      | _, Compilers.Backend.Crashed s -> Some (seed, result, s)
      | Compilers.Backend.Rendered i0, Compilers.Backend.Rendered i1
        when not (Spirv_ir.Image.equal i0 i1) ->
          Some (seed, result, "miscompilation")
      | _ -> None
    in
    let workers = max 1 (min domains seeds) in
    let found =
      if workers = 1 then begin
        (* sequential scan with early exit at the first triggering seed *)
        let rec go seed =
          if seed >= seeds then None
          else match try_seed seed with Some f -> Some f | None -> go (seed + 1)
        in
        go 0
      end
      else
        (* block-wise parallel scan: each round tests the next [block]
           seeds across the pool and picks the first hit in task (= seed)
           order, so the answer is the smallest triggering seed — the same
           one the sequential scan reports — while still stopping within
           one block of it *)
        Harness.Pool.with_pool ~workers (fun pool ->
            let block = workers * 4 in
            let rec scan lo =
              if lo >= seeds then None
              else begin
                let n = min block (seeds - lo) in
                let results = Harness.Pool.map pool n (fun i -> try_seed (lo + i)) in
                match Array.find_map Fun.id results with
                | Some f -> Some f
                | None -> scan (lo + n)
              end
            in
            scan 0)
    in
    (match found with
     | None -> Printf.printf "no bug found on %s in %d seeds\n" target seeds
     | Some (seed, result, signature) ->
       Printf.printf "seed %d triggers: %s\n" seed signature;
       let ctx = Spirv_fuzz.Context.make m input in
       let is_interesting (c : Spirv_fuzz.Context.t) =
         match (original_run, Harness.Engine.run engine t c.Spirv_fuzz.Context.m input) with
         | _, Compilers.Backend.Crashed s -> String.equal s signature
         | Compilers.Backend.Rendered i0, Compilers.Backend.Rendered i1 ->
             String.equal signature "miscompilation" && not (Spirv_ir.Image.equal i0 i1)
         | _ -> false
       in
       let r =
         Spirv_fuzz.Reducer.reduce ~original:ctx ~is_interesting
           result.Spirv_fuzz.Fuzzer.transformations
       in
       Printf.printf "reduced %d transformations to %d (%d interestingness queries)\n"
         r.Spirv_fuzz.Reducer.stats.Tbct.Reducer.initial
         r.Spirv_fuzz.Reducer.stats.Tbct.Reducer.kept
         r.Spirv_fuzz.Reducer.stats.Tbct.Reducer.queries;
       List.iter
         (fun tr -> Printf.printf "  %s\n" (Spirv_fuzz.Transformation.type_id tr))
         r.Spirv_fuzz.Reducer.transformations;
       Printf.printf "delta between original and reduced variant:\n%s\n"
         (Spirv_fuzz.Reducer.delta_listing ~original:ctx r.Spirv_fuzz.Reducer.reduced));
    print_endline (Harness.Engine.stats_to_string (Harness.Engine.stats engine))
  in
  Cmd.v
    (Cmd.info "hunt"
       ~doc:"Fuzz a module against a target until a bug appears, then reduce it.")
    Term.(const run $ file_arg $ corpus_arg $ target_arg $ seeds_arg
          $ domains_arg)

(* ------------------------------------------------------------------ *)
(* campaign                                                            *)

let campaign_cmd =
  let seeds_arg =
    Arg.(value & opt int 100 & info [ "seeds" ] ~docv:"N" ~doc:"Seeds per tool.")
  in
  let tool_arg =
    Arg.(value & opt string "spirv-fuzz"
         & info [ "tool" ] ~doc:"spirv-fuzz | spirv-fuzz-simple | glsl-fuzz")
  in
  let domains_arg =
    Arg.(value & opt int 1
         & info [ "domains" ] ~docv:"N"
             ~doc:"Parallel domains to run the campaign on (hit list is \
                   identical to the sequential one).")
  in
  let stats_arg =
    Arg.(value & flag
         & info [ "stats" ] ~doc:"Print engine cache/instrumentation stats.")
  in
  let store_arg =
    Arg.(value & opt (some string) None
         & info [ "store" ] ~docv:"DIR"
             ~doc:"Persist the campaign in $(docv): content-addressed run \
                   cache (read/write-through) plus a checksummed journal of \
                   completed seeds.")
  in
  let resume_arg =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:"Resume a killed campaign from the store's journal: \
                   recorded seeds are spliced in without re-execution and \
                   the hit list is bit-identical to an uninterrupted run. \
                   Requires $(b,--store).")
  in
  let fsync_arg =
    Arg.(value & flag
         & info [ "fsync" ]
             ~doc:"fsync every store write and journal record (survives \
                   power loss, not just process death).")
  in
  let hits_out_arg =
    Arg.(value & opt (some string) None
         & info [ "hits-out" ] ~docv:"FILE"
             ~doc:"Write the hit list to $(docv), one line per hit — \
                   byte-comparable across runs.")
  in
  let tv_arg =
    Arg.(value & flag
         & info [ "tv" ]
             ~doc:"Run the translation validator as a second oracle on \
                   every variant: miscompilation signatures are refined to \
                   per-pass buckets (miscompile:TARGET:PASS) and optimizer \
                   miscompilations are caught even on targets that cannot \
                   render.")
  in
  let weights_arg =
    Arg.(value & opt (some string) None
         & info [ "weights" ] ~docv:"FAMILY=N,..."
             ~doc:"Rescale the fuzzer's per-family sampling weights, e.g. \
                   $(b,control_flow=5,data=2) (families: tbct \
                   transformations).  Omitted families keep weight 1; a \
                   family weighted 0 is never drawn.  The default is the \
                   uniform draw, bit-identical to earlier releases.")
  in
  let reference_interp_arg =
    Arg.(value & flag
         & info [ "reference-interp" ]
             ~doc:"Execute fragments with the reference interpreter instead \
                   of the flat compiled kernel.  The hit list is \
                   bit-identical either way; CI runs both and diffs the \
                   output files to prove it.")
  in
  let run seeds tool domains stats check_contracts tv weights store resume
      fsync hits_out reference_interp =
    let compiled = not reference_interp in
    let tool =
      match Harness.Pipeline.tool_of_name tool with
      | Some t -> t
      | None ->
          prerr_endline ("unknown tool " ^ tool);
          exit 1
    in
    let weights =
      match weights with
      | None -> []
      | Some s -> (
          match Spirv_fuzz.Registry.parse_weights s with
          | Ok w -> w
          | Error msg ->
              prerr_endline ("error: --weights: " ^ msg);
              exit 1)
    in
    let scale = { Harness.Experiments.default_scale with Harness.Experiments.seeds = seeds } in
    let engine, hits =
      match store with
      | None ->
          if resume then begin
            prerr_endline "error: --resume requires --store DIR";
            exit 1
          end;
          let engine = Harness.Engine.create ~compiled () in
          let hits =
            or_contract_violation (fun () ->
                Harness.Experiments.run_campaign ~scale ~domains ~engine
                  ~check_contracts ~tv ~weights tool)
          in
          (engine, hits)
      | Some dir ->
          let cas = Harness.Persist.open_cas ~fsync ~dir () in
          let engine = Harness.Engine.create ~store:cas ~compiled () in
          (* Ctrl-C checkpoints instead of killing: the handler flips one
             atomic, the campaign's stop hook sees it before each fresh
             seed, and everything already finished is in the journal — the
             same path the service daemon uses, so `--resume` completes
             the run bit-identical to an uninterrupted one. *)
          let interrupted = Atomic.make false in
          let prev_sigint =
            Sys.signal Sys.sigint
              (Sys.Signal_handle (fun _ -> Atomic.set interrupted true))
          in
          let outcome =
            Fun.protect
              ~finally:(fun () -> Sys.set_signal Sys.sigint prev_sigint)
              (fun () ->
                or_contract_violation (fun () ->
                    Harness.Persist.run_campaign ~scale ~domains ~engine
                      ~check_contracts ~tv ~weights ~resume ~fsync
                      ~stop:(fun () -> Atomic.get interrupted)
                      ~dir tool))
          in
          let o = or_die outcome in
          if not o.Harness.Persist.completed then begin
            Printf.printf
              "interrupted: %d seed(s) journaled in %s; rerun with --resume \
               to finish (bit-identical to an uninterrupted run)\n"
              (o.Harness.Persist.seeds_skipped + o.Harness.Persist.seeds_run)
              dir;
            exit 130
          end;
          if resume then begin
            Printf.printf "resume: %d seed(s) replayed from the journal%s, %d executed\n"
              o.Harness.Persist.seeds_skipped
              (if o.Harness.Persist.journal_dropped then
                 " (torn trailing record discarded)"
               else "")
              o.Harness.Persist.seeds_run;
            match o.Harness.Persist.extended_from with
            | Some n ->
                Printf.printf "resume: extended the campaign from %d to %d seeds\n"
                  n seeds
            | None -> ()
          end;
          (engine, o.Harness.Persist.hits)
    in
    Printf.printf "%d detections from %d seeds\n" (List.length hits) seeds;
    if stats then
      print_endline (Harness.Engine.stats_to_string (Harness.Engine.stats engine));
    (match hits_out with
    | None -> ()
    | Some path ->
        let oc = open_out_bin path in
        (* the same encoder the service's hits verb uses, so batch and
           daemon output are byte-comparable by construction *)
        List.iter
          (fun h -> output_string oc (Harness.Persist.hit_line h ^ "\n"))
          hits;
        close_out oc;
        Printf.printf "hit list written to %s\n" path);
    let tally = Hashtbl.create 16 in
    List.iter
      (fun (h : Harness.Experiments.hit) ->
        let k =
          h.Harness.Experiments.hit_target ^ " / "
          ^ h.Harness.Experiments.hit_detection.Harness.Pipeline.signature
        in
        Hashtbl.replace tally k (1 + Option.value ~default:0 (Hashtbl.find_opt tally k)))
      hits;
    Hashtbl.fold (fun k n acc -> (k, n) :: acc) tally []
    |> List.sort compare
    |> List.iter (fun (k, n) -> Printf.printf "  %-70s %3d\n" k n)
  in
  Cmd.v
    (Cmd.info "campaign" ~doc:"Run a fuzzing campaign over all targets.")
    Term.(const run $ seeds_arg $ tool_arg $ domains_arg $ stats_arg
          $ check_contracts_arg $ tv_arg $ weights_arg $ store_arg
          $ resume_arg $ fsync_arg $ hits_out_arg $ reference_interp_arg)

(* ------------------------------------------------------------------ *)
(* store: inspect and maintain a campaign store directory               *)

let store_cmd =
  let dir_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"DIR" ~doc:"The campaign store directory.")
  in
  let stats_cmd =
    let run dir json =
      let cas = Harness.Persist.open_cas ~dir () in
      let s = Tbct_store.Cas.stats cas in
      let replay = Tbct_store.Journal.replay ~path:(Harness.Persist.journal_path dir) in
      let bank = Tbct_store.Bugbank.load ~dir:(Harness.Persist.bugbank_dir dir) in
      (* a serve root additionally carries a job queue whose journal
         records per-job tv-abstain counter snapshots *)
      let job_counters =
        let jobs_dir = Filename.concat dir "jobs" in
        if Sys.file_exists (Filename.concat jobs_dir "jobs.log") then begin
          let jobs = Tbct_store.Jobs.open_ ~dir:jobs_dir () in
          let entries =
            List.map
              (fun ((r : Tbct_store.Jobs.record), _) ->
                (r.Tbct_store.Jobs.id,
                 Tbct_store.Jobs.counters jobs ~id:r.Tbct_store.Jobs.id))
              (Tbct_store.Jobs.entries jobs)
          in
          Tbct_store.Jobs.close jobs;
          entries
        end
        else []
      in
      if json then begin
        let jobs_json =
          String.concat ", "
            (List.map
               (fun (id, kvs) ->
                 Printf.sprintf "%s: {%s}" (json_string id)
                   (String.concat ", "
                      (List.map
                         (fun (k, v) ->
                           Printf.sprintf "%s: %d" (json_string k) v)
                         kvs)))
               job_counters)
        in
        Printf.printf
          "{\"cas\": {\"objects\": %d, \"bytes\": %d, \"root\": %s}, \
           \"journal\": {\"records\": %d, \"torn_tail\": %b}, \
           \"bugbank\": {\"signatures\": %d}, \"jobs\": {%s}}\n"
          s.Tbct_store.Cas.objects s.Tbct_store.Cas.bytes
          (json_string (Tbct_store.Cas.root cas))
          (List.length replay.Tbct_store.Journal.records)
          replay.Tbct_store.Journal.dropped
          (Tbct_store.Bugbank.size bank)
          jobs_json
      end
      else begin
        Printf.printf "cas: %d object(s), %d bytes in %s\n"
          s.Tbct_store.Cas.objects s.Tbct_store.Cas.bytes
          (Tbct_store.Cas.root cas);
        Printf.printf "journal: %d valid record(s)%s\n"
          (List.length replay.Tbct_store.Journal.records)
          (if replay.Tbct_store.Journal.dropped then
             " + a torn trailing record (killed campaign; resumable)"
           else "");
        Printf.printf "bugbank: %d signature(s)\n" (Tbct_store.Bugbank.size bank);
        List.iter
          (fun (id, kvs) ->
            if kvs <> [] then
              Printf.printf "%s: %s\n" id
                (String.concat ", "
                   (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) kvs)))
          job_counters
      end
    in
    Cmd.v
      (Cmd.info "stats"
         ~doc:"Report the store's cache size, journal state and bug bank.")
      Term.(const run $ dir_arg $ json_arg)
  in
  let gc_cmd =
    let max_bytes_arg =
      Arg.(required & opt (some int) None
           & info [ "max-bytes" ] ~docv:"N"
               ~doc:"Evict least-recently-used objects until the cache holds \
                     at most $(docv) bytes.")
    in
    let run dir max_bytes =
      let cas = Harness.Persist.open_cas ~dir () in
      let evicted = Tbct_store.Cas.gc cas ~max_bytes in
      let s = Tbct_store.Cas.stats cas in
      Printf.printf "evicted %d object(s); %d object(s), %d bytes remain\n"
        evicted s.Tbct_store.Cas.objects s.Tbct_store.Cas.bytes;
      if s.Tbct_store.Cas.bytes > max_bytes then begin
        prerr_endline "error: cache still exceeds the size bound after gc";
        exit 1
      end
    in
    Cmd.v
      (Cmd.info "gc"
         ~doc:"Enforce a size bound on the run cache (LRU eviction; recency \
               survives restarts via file mtimes).")
      Term.(const run $ dir_arg $ max_bytes_arg)
  in
  let export_cmd =
    let out_arg =
      Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write here instead of stdout.")
    in
    let run dir out =
      let bank = Tbct_store.Bugbank.load ~dir:(Harness.Persist.bugbank_dir dir) in
      let dump = Tbct_store.Bugbank.to_string bank in
      match out with
      | None -> print_string dump
      | Some path ->
          let oc = open_out_bin path in
          output_string oc dump;
          close_out oc;
          Printf.printf "%d signature(s) exported to %s\n"
            (Tbct_store.Bugbank.size bank) path
    in
    Cmd.v
      (Cmd.info "export"
         ~doc:"Dump the bug bank in its portable mergeable form (feed it to \
               another machine's bank directory as bugbank.txt, or merge \
               banks by concatenating exports through dedup --bank).")
      Term.(const run $ dir_arg $ out_arg)
  in
  Cmd.group
    (Cmd.info "store"
       ~doc:"Inspect and maintain a campaign store directory (run cache, \
             journal, bug bank).")
    [ stats_cmd; gc_cmd; export_cmd ]

(* ------------------------------------------------------------------ *)
(* dedup: fuzz, reduce the crashes, run the Figure 6 selection            *)

let dedup_cmd =
  let seeds_arg =
    Arg.(value & opt int 150 & info [ "seeds" ] ~docv:"N" ~doc:"Seeds to fuzz.")
  in
  let cap_arg =
    Arg.(value & opt int 3
         & info [ "cap" ] ~docv:"N" ~doc:"Reductions per crash signature.")
  in
  let bank_arg =
    Arg.(value & opt (some string) None
         & info [ "bank" ] ~docv:"DIR"
             ~doc:"Record the reduced tests' signatures in $(docv)'s \
                   persistent bug bank and report newly-seen vs \
                   already-known bugs.  Exit code 3 means every signature \
                   was already banked (no new bugs).")
  in
  let domains_arg =
    Arg.(value & opt int 1
         & info [ "domains" ] ~docv:"N"
             ~doc:"Run both phases — the campaign and the per-hit \
                   reductions — on N parallel domains sharing one \
                   work-stealing pool; hits and reduced tests are identical \
                   to the sequential run.")
  in
  let tests_out_arg =
    Arg.(value & opt (some string) None
         & info [ "tests-out" ] ~docv:"FILE"
             ~doc:"Write the reduced tests to $(docv), one line per test \
                   (target, bug id, minimized transformation types) — \
                   byte-comparable across runs and domain counts.")
  in
  let emit_arg =
    Arg.(value & opt (some string) None
         & info [ "emit-dir" ] ~docv:"DIR"
             ~doc:"Write each reduced test's minimized module to \
                   $(docv)/TARGET__BUGID.spvasm — including tests recalled \
                   from the bank without re-reducing.")
  in
  (* the bank's CAS record for one reduced test: the ordered type-id list
     on the first line, the encoded minimized module after it *)
  let banked_key ~target ~bug_id =
    Tbct_store.Cas.key_of_string ("reduced:" ^ target ^ ":" ^ bug_id)
  in
  let encode_banked (d : Harness.Experiments.dedup_test) =
    String.concat "," d.Harness.Experiments.dd_types
    ^ "\n"
    ^ Tbct_store.Run_codec.encode_module d.Harness.Experiments.dd_module
  in
  let decode_banked ~bug_id blob : Harness.Experiments.dedup_test option =
    match String.index_opt blob '\n' with
    | None -> None
    | Some i -> (
        let types_line = String.sub blob 0 i in
        let rest = String.sub blob (i + 1) (String.length blob - i - 1) in
        match Tbct_store.Run_codec.decode_module rest with
        | None -> None
        | Some m ->
            Some
              {
                Harness.Experiments.dd_bug_id = bug_id;
                Harness.Experiments.dd_types =
                  (if String.equal types_line "" then []
                   else String.split_on_char ',' types_line);
                Harness.Experiments.dd_module = m;
              })
  in
  let reference_interp_arg =
    Arg.(value & flag
         & info [ "reference-interp" ]
             ~doc:"Execute fragments with the reference interpreter instead \
                   of the flat compiled kernel.  Reduced tests are \
                   bit-identical either way; CI runs both and diffs the \
                   output files to prove it.")
  in
  let run seeds cap domains bank tests_out emit_dir json reference_interp =
    let scale =
      {
        Harness.Experiments.default_scale with
        Harness.Experiments.seeds;
        Harness.Experiments.max_reductions_per_signature = cap;
      }
    in
    (* --json promises exactly one JSON document on stdout *)
    let say fmt =
      if json then Printf.ifprintf Stdlib.stdout fmt else Printf.printf fmt
    in
    say "fuzzing %d seeds against every target...
%!" seeds;
    let engine = Harness.Engine.create ~compiled:(not reference_interp) () in
    (* one pool serves both phases: campaign seeds, then per-hit reductions *)
    let workers = max 1 (min domains seeds) in
    Harness.Pool.with_pool ~workers @@ fun pool ->
    let hits =
      Harness.Experiments.run_campaign ~scale ~engine ~pool
        Harness.Pipeline.Spirv_fuzz_tool
    in
    let crashes =
      List.filter
        (fun (h : Harness.Experiments.hit) ->
          not
            (Harness.Signature.is_miscompilation
               h.Harness.Experiments.hit_detection.Harness.Pipeline.signature))
        hits
    in
    say "%d detections (%d crashes); reducing and deduplicating...
%!"
      (List.length hits) (List.length crashes);
    (* the bank's CAS holds previously-minimized modules: a hit whose
       (target, bug id) is already spilled is recalled instead of
       re-reduced (the hook is thread-safe: the CAS takes its own lock) *)
    let bank_cas =
      Option.map (fun dir -> Harness.Persist.open_cas ~dir ()) bank
    in
    let recalled = Atomic.make 0 in
    let known =
      Option.map
        (fun cas ~target ~bug_id ->
          match Tbct_store.Cas.get cas ~key:(banked_key ~target ~bug_id) with
          | None -> None
          | Some blob ->
              let d = decode_banked ~bug_id blob in
              if Option.is_some d then Atomic.incr recalled;
              d)
        bank_cas
    in
    (* reduce each capped crash hit once; table4 and the bug bank share it *)
    let tests =
      Harness.Experiments.reduced_crash_tests ~scale ~engine ~pool ?known
        ~hits ()
    in
    if Atomic.get recalled > 0 then
      say "bank: %d reduced test(s) recalled without re-reducing\n"
        (Atomic.get recalled);
    (match tests_out with
    | None -> ()
    | Some path ->
        let oc = open_out_bin path in
        List.iter
          (fun (target, (d : Harness.Experiments.dedup_test)) ->
            Printf.fprintf oc "%s\t%s\t%s\n" target
              d.Harness.Experiments.dd_bug_id
              (String.concat "," d.Harness.Experiments.dd_types))
          tests;
        close_out oc;
        say "reduced tests written to %s\n" path);
    (match emit_dir with
    | None -> ()
    | Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        let sanitize s =
          String.map
            (fun c ->
              match c with
              | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
              | _ -> '_')
            s
        in
        List.iter
          (fun (target, (d : Harness.Experiments.dedup_test)) ->
            let path =
              Filename.concat dir
                (sanitize target ^ "__"
                ^ sanitize d.Harness.Experiments.dd_bug_id
                ^ ".spvasm")
            in
            let oc = open_out_bin path in
            output_string oc
              (Spirv_ir.Disasm.to_string d.Harness.Experiments.dd_module);
            close_out oc)
          tests;
        say "%d minimized module(s) written to %s\n"
          (List.length tests) dir);
    let rows, total =
      Harness.Experiments.table4 ~scale ~engine ~tests ~hits:[| hits; []; [] |] ()
    in
    if not json then begin
      Printf.printf "%-14s %6s %6s %8s %9s %6s
" "Target" "Tests" "Sigs" "Reports"
        "Distinct" "Dups";
      List.iter
        (fun (r : Harness.Experiments.table4_row) ->
          if r.Harness.Experiments.t4_tests > 0 then
            Printf.printf "%-14s %6d %6d %8d %9d %6d
" r.Harness.Experiments.t4_target
              r.Harness.Experiments.t4_tests r.Harness.Experiments.t4_sigs
              r.Harness.Experiments.t4_reports r.Harness.Experiments.t4_distinct
              r.Harness.Experiments.t4_dups)
        (rows @ [ total ]);
      print_endline
        (Harness.Engine.stats_to_string (Harness.Engine.stats engine))
    end;
    let row_json (r : Harness.Experiments.table4_row) =
      Printf.sprintf
        "{\"target\": %s, \"tests\": %d, \"sigs\": %d, \"reports\": %d, \
         \"distinct\": %d, \"dups\": %d}"
        (json_string r.Harness.Experiments.t4_target)
        r.Harness.Experiments.t4_tests r.Harness.Experiments.t4_sigs
        r.Harness.Experiments.t4_reports r.Harness.Experiments.t4_distinct
        r.Harness.Experiments.t4_dups
    in
    let emit_json ~bank_json =
      if json then
        Printf.printf
          "{\"seeds\": %d, \"detections\": %d, \"crashes\": %d, \"rows\": \
           [%s], \"total\": %s%s}\n"
          seeds (List.length hits) (List.length crashes)
          (String.concat ", "
             (List.filter_map
                (fun (r : Harness.Experiments.table4_row) ->
                  if r.Harness.Experiments.t4_tests > 0 then Some (row_json r)
                  else None)
                rows))
          (row_json total) bank_json
    in
    match (bank, bank_cas) with
    | None, _ | _, None ->
        emit_json ~bank_json:"";
        0
    | Some dir, Some cas ->
        let bank =
          Tbct_store.Bugbank.load ~dir:(Harness.Persist.bugbank_dir dir)
        in
        let fresh = ref 0 and known = ref 0 and spilled = ref 0 in
        List.iter
          (fun (target, (d : Harness.Experiments.dedup_test)) ->
            (* the bank's signature: the reduced sequence's non-ignored
               transformation types, exactly what Figure 6 compares *)
            let types =
              Spirv_fuzz.Dedup.String_set.elements
                (Spirv_fuzz.Dedup.String_set.diff
                   (Spirv_fuzz.Dedup.String_set.of_list
                      d.Harness.Experiments.dd_types)
                   Spirv_fuzz.Dedup.default_ignored)
            in
            (* spill the minimized module so the next campaign re-emits
               this test case instead of re-reducing it *)
            let key =
              banked_key ~target ~bug_id:d.Harness.Experiments.dd_bug_id
            in
            if not (Tbct_store.Cas.mem cas ~key) then begin
              Tbct_store.Cas.put cas ~key (encode_banked d);
              incr spilled
            end;
            match
              Tbct_store.Bugbank.record bank ~target
                ~bug_id:d.Harness.Experiments.dd_bug_id ~types
            with
            | `New -> incr fresh
            | `Known -> incr known)
          tests;
        Tbct_store.Bugbank.save bank;
        say
          "bug bank %s: %d newly-banked signature(s), %d test(s) matched \
           already-known signatures; %d reduced module(s) spilled to the \
           store; %d signature(s) banked in total\n"
          dir !fresh !known !spilled (Tbct_store.Bugbank.size bank);
        emit_json
          ~bank_json:
            (Printf.sprintf
               ", \"bank\": {\"dir\": %s, \"new\": %d, \"known\": %d, \
                \"spilled\": %d, \"size\": %d}"
               (json_string dir) !fresh !known !spilled
               (Tbct_store.Bugbank.size bank));
        if !fresh > 0 then 0 else 3
  in
  Cmd.v
    (Cmd.info "dedup"
       ~doc:
         "Fuzz, reduce every crash, and recommend a deduplicated subset for           investigation (the Figure 6 algorithm).  With $(b,--bank), also \
          record signatures in a cross-campaign bug bank, spill each \
          minimized module into the store's CAS, and recall already-banked \
          test cases without re-reducing them.  With $(b,--json), one JSON \
          document replaces the tables.")
    Term.(const (fun s c d b t e j r -> Stdlib.exit (run s c d b t e j r))
          $ seeds_arg $ cap_arg $ domains_arg $ bank_arg $ tests_out_arg
          $ emit_arg $ json_arg $ reference_interp_arg)

(* ------------------------------------------------------------------ *)
(* serve + the fleet client commands                                    *)

module Service = Tbct_service

let socket_arg =
  Arg.(required & opt (some string) None
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"The daemon's Unix socket path (keep it short: the kernel \
                 caps Unix socket paths at ~100 bytes).")

let job_pos_arg =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"JOB" ~doc:"A job id, as printed by submit/jobs.")

let with_conn socket f =
  match Service.Client.connect ~path:socket with
  | Error e ->
      prerr_endline ("error: " ^ e);
      exit 1
  | Ok conn ->
      Fun.protect ~finally:(fun () -> Service.Client.close conn)
        (fun () -> f conn)

let request_or_die conn req =
  match Service.Client.request conn req with
  | Error e ->
      prerr_endline ("error: " ^ e);
      exit 1
  | Ok reply -> (
      match Service.Json.mem_bool "ok" reply with
      | Some true -> reply
      | _ ->
          prerr_endline
            ("error: "
            ^ Option.value ~default:"request refused"
                (Service.Json.mem_str "error" reply));
          exit 1)

let serve_cmd =
  let store_arg =
    Arg.(required & opt (some string) None
         & info [ "store" ] ~docv:"DIR"
             ~doc:"The store directory: shared run cache (cas/), job queue \
                   and bug bank (jobs/), one campaign journal per job \
                   (jobs/JOB/).")
  in
  let domains_arg =
    Arg.(value & opt int 1
         & info [ "domains" ] ~docv:"N"
             ~doc:"Worker domains in the shared pool all jobs multiplex \
                   over.")
  in
  let quantum_arg =
    Arg.(value & opt int 8
         & info [ "quantum" ] ~docv:"N"
             ~doc:"Fresh seeds per scheduler slice: smaller interleaves \
                   jobs finer, larger amortizes journal replay better.")
  in
  let fsync_arg =
    Arg.(value & flag
         & info [ "fsync" ]
             ~doc:"fsync every journal record and store write.")
  in
  let run store socket domains quantum fsync =
    match
      Service.Server.run ~fsync ~quantum ~root:store ~socket ~domains ()
    with
    | Ok () -> print_endline "daemon stopped (jobs checkpointed)"
    | Error e ->
        prerr_endline ("error: " ^ e);
        exit 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the campaign fleet daemon: a job queue of campaigns \
             multiplexed fairly over one shared engine and domain pool, \
             serving submit/status/attach/cancel/drain/shutdown over a \
             Unix socket.  SIGINT/SIGTERM (and the shutdown verb) \
             checkpoint every in-flight campaign through its journal; a \
             restarted daemon resumes each job bit-identical to an \
             uninterrupted run.")
    Term.(const run $ store_arg $ socket_arg $ domains_arg $ quantum_arg
          $ fsync_arg)

let submit_cmd =
  let tool_arg =
    Arg.(value & opt string "spirv-fuzz"
         & info [ "tool" ] ~doc:"spirv-fuzz | spirv-fuzz-simple | glsl-fuzz")
  in
  let seeds_arg =
    Arg.(value & opt int 100 & info [ "seeds" ] ~docv:"N" ~doc:"Campaign size.")
  in
  let targets_arg =
    Arg.(value & opt (some string) None
         & info [ "targets" ] ~docv:"A,B,..."
             ~doc:"Comma-separated target names (default: every target).")
  in
  let weights_arg =
    Arg.(value & opt string ""
         & info [ "weights" ] ~docv:"FAMILY=N,..."
             ~doc:"Per-family sampling weights (campaign --weights syntax).")
  in
  let tv_arg =
    Arg.(value & flag
         & info [ "tv" ] ~doc:"Run the translation validator as a second \
                               oracle.")
  in
  let run socket tool seeds targets weights tv =
    let sub_tool =
      match Harness.Pipeline.tool_of_name tool with
      | Some t -> t
      | None ->
          prerr_endline ("unknown tool " ^ tool);
          exit 1
    in
    let sub_targets =
      match targets with
      | None -> []
      | Some s ->
          List.filter
            (fun t -> t <> "")
            (List.map String.trim (String.split_on_char ',' s))
    in
    let spec =
      {
        Service.Protocol.sub_tool;
        sub_seeds = seeds;
        sub_targets;
        sub_weights = weights;
        sub_tv = tv;
      }
    in
    with_conn socket @@ fun conn ->
    let reply = request_or_die conn (Service.Protocol.Submit spec) in
    match Service.Json.mem_str "job" reply with
    | Some id -> print_endline id
    | None -> print_endline "submitted"
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Submit a campaign to a running daemon; prints the job id.")
    Term.(const run $ socket_arg $ tool_arg $ seeds_arg $ targets_arg
          $ weights_arg $ tv_arg)

let attach_cmd =
  let run socket id =
    with_conn socket @@ fun conn ->
    let on_event v =
      match Service.Json.mem_str "event" v with
      | Some "seed" ->
          Printf.printf "seed %d done (%d/%d)\n%!"
            (Option.value ~default:(-1) (Service.Json.mem_int "seed" v))
            (Option.value ~default:0 (Service.Json.mem_int "seeds_done" v))
            (Option.value ~default:0 (Service.Json.mem_int "seeds" v))
      | Some "hit" ->
          Printf.printf "hit\t%s%s\n%!"
            (Option.value ~default:"" (Service.Json.mem_str "line" v))
            (if Service.Json.mem_bool "new_signature" v = Some true then
               "\tNEW"
             else "")
      | Some ev -> Printf.printf "%s\n%!" ev
      | None -> (
          (* the initial snapshot reply *)
          match Service.Json.member "job" v with
          | Some j ->
              Printf.printf "attached to %s (%s, %d/%d seeds)\n%!"
                (Option.value ~default:id (Service.Json.mem_str "id" j))
                (Option.value ~default:"?" (Service.Json.mem_str "state" j))
                (Option.value ~default:0 (Service.Json.mem_int "seeds_done" j))
                (Option.value ~default:0 (Service.Json.mem_int "seeds" j))
          | None -> ())
    in
    match Service.Client.stream conn (Service.Protocol.Attach id) ~on_event with
    | Error e ->
        prerr_endline ("error: " ^ e);
        exit 1
    | Ok last -> (
        match Service.Json.mem_bool "ok" last with
        | Some false ->
            prerr_endline
              ("error: "
              ^ Option.value ~default:"attach refused"
                  (Service.Json.mem_str "error" last));
            exit 1
        | _ ->
            let state =
              Option.value ~default:"?" (Service.Json.mem_str "state" last)
            in
            Printf.printf "job %s: %s\n" id state;
            if state <> "done" then exit 4)
  in
  Cmd.v
    (Cmd.info "attach"
       ~doc:"Stream a job's live progress and hit feed until it finishes \
             (exit 4 if it ended cancelled).")
    Term.(const run $ socket_arg $ job_pos_arg)

let jobs_cmd =
  let run socket json =
    with_conn socket @@ fun conn ->
    let reply = request_or_die conn Service.Protocol.Jobs in
    if json then print_endline (Service.Json.to_string reply)
    else
      match Option.bind (Service.Json.member "jobs" reply) Service.Json.to_list with
      | None | Some [] -> print_endline "no jobs"
      | Some jobs ->
          List.iter
            (fun j ->
              Printf.printf "%-8s %-10s %-18s %5d/%-5d %4d hit(s)\n"
                (Option.value ~default:"?" (Service.Json.mem_str "id" j))
                (Option.value ~default:"?" (Service.Json.mem_str "state" j))
                (Option.value ~default:"?" (Service.Json.mem_str "tool" j))
                (Option.value ~default:0 (Service.Json.mem_int "seeds_done" j))
                (Option.value ~default:0 (Service.Json.mem_int "seeds" j))
                (Option.value ~default:0 (Service.Json.mem_int "hits" j)))
            jobs
  in
  Cmd.v
    (Cmd.info "jobs" ~doc:"List the daemon's jobs.")
    Term.(const run $ socket_arg $ json_arg)

let status_cmd =
  let job_arg =
    Arg.(value & opt (some string) None
         & info [ "job" ] ~docv:"JOB" ~doc:"Status of one job only.")
  in
  let run socket job json =
    with_conn socket @@ fun conn ->
    let reply = request_or_die conn (Service.Protocol.Status job) in
    if json then print_endline (Service.Json.to_string reply)
    else
      match job with
      | Some id -> (
          match Service.Json.member "job" reply with
          | None -> print_endline "no such job"
          | Some j ->
              Printf.printf "%s: %s, %d/%d seeds, %d hit(s) (%d new), %d \
                             run(s), %d memo hit(s) (%d cross-job)\n"
                id
                (Option.value ~default:"?" (Service.Json.mem_str "state" j))
                (Option.value ~default:0 (Service.Json.mem_int "seeds_done" j))
                (Option.value ~default:0 (Service.Json.mem_int "seeds" j))
                (Option.value ~default:0 (Service.Json.mem_int "hits" j))
                (Option.value ~default:0
                   (Service.Json.mem_int "new_signatures" j))
                (Option.value ~default:0
                   (Service.Json.mem_int "runs_executed" j))
                (Option.value ~default:0 (Service.Json.mem_int "memo_hits" j))
                (Option.value ~default:0
                   (Service.Json.mem_int "cross_memo_hits" j)))
      | None ->
          let jobs =
            Option.value ~default:[]
              (Option.bind (Service.Json.member "jobs" reply)
                 Service.Json.to_list)
          in
          let count st =
            List.length
              (List.filter
                 (fun j -> Service.Json.mem_str "state" j = Some st)
                 jobs)
          in
          Printf.printf
            "%d job(s): %d queued, %d running, %d done, %d cancelled\n"
            (List.length jobs) (count "queued") (count "running")
            (count "done") (count "cancelled");
          Printf.printf "cross-job memo hits: %d\n"
            (Option.value ~default:0
               (Service.Json.mem_int "cross_job_memo_hits" reply));
          (match Service.Json.member "engine" reply with
          | Some e ->
              Printf.printf "engine: %d run(s), %d saved\n"
                (Option.value ~default:0
                   (Service.Json.mem_int "runs_executed" e))
                (Option.value ~default:0 (Service.Json.mem_int "runs_saved" e))
          | None -> ())
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:"Daemon or per-job status; $(b,--json) dumps the full \
             engine/pool statistics.")
    Term.(const run $ socket_arg $ job_arg $ json_arg)

let hits_cmd =
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Write here instead of stdout (same format as campaign \
                   --hits-out, byte-comparable).")
  in
  let run socket id out =
    with_conn socket @@ fun conn ->
    let reply = request_or_die conn (Service.Protocol.Hits id) in
    let completed =
      Service.Json.mem_bool "completed" reply = Some true
    in
    let lines =
      List.filter_map Service.Json.to_str
        (Option.value ~default:[]
           (Option.bind (Service.Json.member "hits" reply)
              Service.Json.to_list))
    in
    (match out with
    | None -> List.iter print_endline lines
    | Some path ->
        let oc = open_out_bin path in
        List.iter (fun l -> output_string oc (l ^ "\n")) lines;
        close_out oc);
    if not completed then begin
      prerr_endline "note: campaign incomplete; this is a checkpoint prefix";
      exit 5
    end
  in
  Cmd.v
    (Cmd.info "hits"
       ~doc:"Fetch a job's hit list (bit-identical to what an \
             uninterrupted batch campaign at the same parameters writes \
             with --hits-out).  Exit 5 if the job has not finished.")
    Term.(const run $ socket_arg $ job_pos_arg $ out_arg)

let cancel_cmd =
  let run socket id =
    with_conn socket @@ fun conn ->
    ignore (request_or_die conn (Service.Protocol.Cancel id) : Service.Json.t);
    Printf.printf "cancelled %s\n" id
  in
  Cmd.v
    (Cmd.info "cancel" ~doc:"Cancel a queued or running job.")
    Term.(const run $ socket_arg $ job_pos_arg)

let drain_cmd =
  let run socket =
    with_conn socket @@ fun conn ->
    ignore (request_or_die conn Service.Protocol.Drain : Service.Json.t);
    print_endline "draining: no new submissions; daemon exits when all \
                   jobs finish"
  in
  Cmd.v
    (Cmd.info "drain"
       ~doc:"Stop accepting submissions and let the daemon exit once \
             every job is terminal.")
    Term.(const run $ socket_arg)

let shutdown_cmd =
  let run socket =
    with_conn socket @@ fun conn ->
    ignore (request_or_die conn Service.Protocol.Shutdown : Service.Json.t);
    print_endline "daemon stopping (in-flight campaigns checkpointed)"
  in
  Cmd.v
    (Cmd.info "shutdown"
       ~doc:"Checkpoint every in-flight campaign and stop the daemon; a \
             later serve on the same store resumes each job \
             bit-identically.")
    Term.(const run $ socket_arg)

(* --verbose works on every subcommand: it is stripped from argv before
   dispatch and turns on debug logging for the tbct.* sources *)
let () =
  let verbose = Array.exists (String.equal "--verbose") Sys.argv in
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  let argv =
    Array.of_list (List.filter (fun a -> a <> "--verbose") (Array.to_list Sys.argv))
  in
  let doc = "transformation-based compiler testing (spirv-fuzz reproduction)" in
  let info = Cmd.info "tbct" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval ~argv
       (Cmd.group info
          [
            validate_cmd; lint_cmd; tv_cmd; analyze_cmd; disasm_cmd;
            render_cmd; run_cmd; targets_cmd;
            transformations_cmd; fuzz_cmd; hunt_cmd; campaign_cmd; dedup_cmd;
            store_cmd; serve_cmd; submit_cmd; attach_cmd; jobs_cmd;
            status_cmd; hits_cmd; cancel_cmd; drain_cmd; shutdown_cmd;
          ]))
