(* Per-transformation unit tests: for every transformation type in the
   catalogue, a crafted scenario where the precondition holds, checks that
   apply yields a valid module with unchanged semantics and the expected
   structural effect, plus negative cases where the precondition must
   fail. *)

open Spirv_ir

let input = Input.make ~width:4 ~height:4 [ ("u_flag", Value.VBool true) ]

(* A small fixture with known handles: main has a straight block, a diamond
   and a merge; a single-block helper is called once. *)
type fixture = {
  m : Module_ir.t;
  ctx : Spirv_fuzz.Context.t;
  main : Id.t;
  helper : Id.t;
  l_entry : Id.t;
  l_then : Id.t;
  l_else : Id.t;
  l_merge : Id.t;
  x : Id.t;        (* float: frag x *)
  cond : Id.t;     (* bool: x < 2.0 *)
  call_id : Id.t;  (* result of the helper call *)
  out : Id.t;
}

let fixture () =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let float_t = Builder.float_ty b in
  let frag = Builder.frag_coord b in
  let out = Builder.output_color b in
  let _flag = Builder.uniform b ~pointee:(Builder.bool_ty b) ~name:"u_flag" in
  (* helper: f(a) = a * 0.5 + 0.25, single block *)
  let fb, helper, params =
    Builder.begin_function b ~name:"scale" ~ret:float_t ~params:[ float_t ]
  in
  let p = List.hd params in
  let lh = Builder.new_label fb in
  Builder.start_block fb lh;
  let t1 = Builder.fmul fb p (Builder.cfloat b 0.5) in
  let t2 = Builder.fadd fb t1 (Builder.cfloat b 0.25) in
  Builder.ret_value fb t2;
  ignore (Builder.end_function fb);
  (* main *)
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let l_entry = Builder.new_label fb in
  let l_then = Builder.new_label fb in
  let l_else = Builder.new_label fb in
  let l_merge = Builder.new_label fb in
  Builder.start_block fb l_entry;
  let fc = Builder.load fb frag in
  let x = Builder.extract fb fc [ 0 ] in
  let cond = Builder.flt fb x (Builder.cfloat b 2.0) in
  let call_id = Builder.call fb helper [ x ] in
  Builder.branch_cond fb cond l_then l_else;
  Builder.start_block fb l_then;
  let vt = Builder.fadd fb call_id (Builder.cfloat b 0.125) in
  Builder.branch fb l_merge;
  Builder.start_block fb l_else;
  let ve = Builder.fmul fb call_id (Builder.cfloat b 0.75) in
  Builder.branch fb l_merge;
  Builder.start_block fb l_merge;
  let phi = Builder.phi fb ~ty:float_t [ (vt, l_then); (ve, l_else) ] in
  let one = Builder.cfloat b 1.0 in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ phi; x; one; one ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  (match Validate.check m with
  | Ok () -> ()
  | Error (e :: _) -> Alcotest.failf "fixture invalid: %s" (Validate.error_to_string e)
  | Error [] -> Alcotest.fail "fixture invalid");
  {
    m;
    ctx = Spirv_fuzz.Context.make m input;
    main;
    helper;
    l_entry;
    l_then;
    l_else;
    l_merge;
    x;
    cond;
    call_id;
    out;
  }

let render_exn m =
  match Interp.render m input with
  | Ok img -> img
  | Error t -> Alcotest.failf "render: %s" (Interp.trap_to_string t)

(* Check the transformation triple: precondition holds, applying preserves
   validity and the image, and replaying is deterministic.  Returns the new
   context for structural assertions. *)
let check_applies ?(also = []) (fx : fixture) (t : Spirv_fuzz.Transformation.t) =
  let ctx =
    List.fold_left
      (fun ctx t ->
        Alcotest.(check bool)
          ("enabler precondition: " ^ Spirv_fuzz.Transformation.type_id t)
          true
          (Spirv_fuzz.Registry.precondition ctx t);
        Spirv_fuzz.Registry.apply ctx t)
      fx.ctx also
  in
  Alcotest.(check bool)
    ("precondition: " ^ Spirv_fuzz.Transformation.type_id t)
    true
    (Spirv_fuzz.Registry.precondition ctx t);
  let ctx' = Spirv_fuzz.Registry.apply ctx t in
  (match Validate.check ctx'.Spirv_fuzz.Context.m with
  | Ok () -> ()
  | Error (e :: _) ->
      Alcotest.failf "%s produced invalid module: %s"
        (Spirv_fuzz.Transformation.type_id t)
        (Validate.error_to_string e)
  | Error [] -> Alcotest.fail "invalid");
  let before = render_exn fx.m in
  let after = render_exn ctx'.Spirv_fuzz.Context.m in
  Alcotest.(check bool)
    (Spirv_fuzz.Transformation.type_id t ^ " preserves the image")
    true (Image.equal before after);
  ctx'

let check_rejected ?(also = []) (fx : fixture) (t : Spirv_fuzz.Transformation.t) =
  let ctx = List.fold_left Spirv_fuzz.Registry.apply fx.ctx also in
  Alcotest.(check bool)
    ("precondition must fail: " ^ Spirv_fuzz.Transformation.type_id t)
    false
    (Spirv_fuzz.Registry.precondition ctx t)

let fresh2 fx =
  let m, a = Module_ir.fresh fx.m in
  let m, b = Module_ir.fresh m in
  (* keep ctx and m in sync: draws only raise the bound *)
  ({ fx with m; ctx = { fx.ctx with Spirv_fuzz.Context.m = m } }, a, b)

let fresh1 fx =
  let fx, a, _ = fresh2 fx in
  (fx, a)

(* find an existing bool-true constant or make room for one *)
let true_const fx =
  match Spirv_fuzz.Edit.find_true_constant fx.m with
  | Some c -> (fx, c, [])
  | None ->
      let fx, c = fresh1 fx in
      let ty = Option.get (Module_ir.find_type_id fx.m Ty.Bool) in
      ( fx,
        c,
        [ Spirv_fuzz.Transformation.Add_constant { fresh = c; ty; value = Constant.Bool true } ] )

(* ------------------------------------------------------------------ *)

let test_add_type () =
  let fx = fixture () in
  let fx, fresh = fresh1 fx in
  let float_id = Option.get (Module_ir.find_type_id fx.m Ty.Float) in
  let ctx' =
    check_applies fx (Spirv_fuzz.Transformation.Add_type { fresh; ty = Ty.Array (float_id, 3) })
  in
  Alcotest.(check bool) "type present" true
    (Module_ir.find_type ctx'.Spirv_fuzz.Context.m fresh = Some (Ty.Array (float_id, 3)));
  (* duplicate structural type rejected *)
  let fx2, fresh2a = fresh1 fx in
  check_rejected fx2 (Spirv_fuzz.Transformation.Add_type { fresh = fresh2a; ty = Ty.Float })

let test_add_constant () =
  let fx = fixture () in
  let fx, fresh = fresh1 fx in
  (* the fixture has no Int type: add it first (an enabler, exactly the
     supporting-transformation pattern of section 3.2) *)
  let fx, int_id = fresh1 fx in
  let add_int = Spirv_fuzz.Transformation.Add_type { fresh = int_id; ty = Ty.Int } in
  let ctx' =
    check_applies ~also:[ add_int ] fx
      (Spirv_fuzz.Transformation.Add_constant
         { fresh; ty = int_id; value = Constant.Int 42l })
  in
  Alcotest.(check bool) "constant present" true
    (Module_ir.find_constant ctx'.Spirv_fuzz.Context.m fresh <> None);
  (* ill-typed constant rejected *)
  let fx2, f2 = fresh1 fx in
  check_rejected fx2
    (Spirv_fuzz.Transformation.Add_constant { fresh = f2; ty = int_id; value = Constant.Bool true })

let test_add_global_and_local_variable () =
  let fx = fixture () in
  let float_id = Option.get (Module_ir.find_type_id fx.m Ty.Float) in
  let fx, g, gp = fresh2 fx in
  let ctx' =
    check_applies fx
      (Spirv_fuzz.Transformation.Add_global_variable
         { fresh = g; fresh_ptr_ty = gp; pointee = float_id })
  in
  Alcotest.(check bool) "global registered irrelevant-pointee" true
    (Spirv_fuzz.Fact_manager.is_irrelevant_pointee ctx'.Spirv_fuzz.Context.facts g);
  let fx, v, vp = fresh2 fx in
  let ctx'' =
    check_applies fx
      (Spirv_fuzz.Transformation.Add_local_variable
         { fresh = v; fresh_ptr_ty = vp; fn = fx.main; pointee = float_id })
  in
  (* the variable must sit in the entry block *)
  let f = Module_ir.function_exn ctx''.Spirv_fuzz.Context.m fx.main in
  let entry = Func.entry_block f in
  Alcotest.(check bool) "variable in entry block" true
    (List.exists (fun (i : Instr.t) -> i.Instr.result = Some v) entry.Block.instrs)

let test_add_nop () =
  let fx = fixture () in
  let ctx' =
    check_applies fx
      (Spirv_fuzz.Transformation.Add_nop
         { fn = fx.main; block = fx.l_then; point = Spirv_fuzz.Transformation.At_end })
  in
  ignore ctx';
  check_rejected fx
    (Spirv_fuzz.Transformation.Add_nop
       { fn = fx.main; block = 99999; point = Spirv_fuzz.Transformation.At_end })

let test_split_block () =
  let fx = fixture () in
  let fx, fresh = fresh1 fx in
  let ctx' =
    check_applies fx
      (Spirv_fuzz.Transformation.Split_block
         {
           fn = fx.main;
           block = fx.l_entry;
           point = Spirv_fuzz.Transformation.Before fx.cond;
           fresh;
         })
  in
  let f = Module_ir.function_exn ctx'.Spirv_fuzz.Context.m fx.main in
  Alcotest.(check int) "five blocks now" 5 (List.length f.Func.blocks);
  (* splitting before a φ is rejected *)
  let fx2 = fixture () in
  let fx2, f2 = fresh1 fx2 in
  let phi_id =
    let f = Module_ir.function_exn fx2.m fx2.main in
    let merge = Func.block_exn f fx2.l_merge in
    Option.get (List.hd merge.Block.instrs).Instr.result
  in
  check_rejected fx2
    (Spirv_fuzz.Transformation.Split_block
       {
         fn = fx2.main;
         block = fx2.l_merge;
         point = Spirv_fuzz.Transformation.Before phi_id;
         fresh = f2;
       })

let test_add_dead_block_and_kill () =
  let fx = fixture () in
  let fx, cond, enablers = true_const fx in
  (* l_then's successor (l_merge) has φs, so first split l_then at its end:
     l_then then branches to a fresh φ-free block *)
  let fx, tail = fresh1 fx in
  let split =
    Spirv_fuzz.Transformation.Split_block
      {
        fn = fx.main;
        block = fx.l_then;
        point = Spirv_fuzz.Transformation.At_end;
        fresh = tail;
      }
  in
  let fx, fresh = fresh1 fx in
  let t =
    Spirv_fuzz.Transformation.Add_dead_block
      { fn = fx.main; existing = fx.l_then; fresh; cond }
  in
  let ctx' = check_applies ~also:(split :: enablers) fx t in
  Alcotest.(check bool) "dead fact recorded" true
    (Spirv_fuzz.Fact_manager.is_dead_block ctx'.Spirv_fuzz.Context.facts fresh);
  (* the new block is statically reachable (that is the point: only the
     always-true guard makes it dynamically dead) *)
  let f = Module_ir.function_exn ctx'.Spirv_fuzz.Context.m fx.main in
  let cfg = Cfg.of_func f in
  Alcotest.(check bool) "statically reachable" true (Cfg.is_reachable cfg fresh);
  (match (Func.block_exn f fx.l_then).Block.terminator with
  | Block.BranchConditional (c, _, dead_target) ->
      Alcotest.(check int) "guarded by the true constant" cond c;
      Alcotest.(check int) "false arm is the dead block" fresh dead_target
  | _ -> Alcotest.fail "l_then should end in a conditional branch");
  (* ReplaceBranchWithKill applies to the dead block *)
  let t_kill = Spirv_fuzz.Transformation.Replace_branch_with_kill { fn = fx.main; block = fresh } in
  Alcotest.(check bool) "kill pre" true (Spirv_fuzz.Registry.precondition ctx' t_kill);
  let ctx'' = Spirv_fuzz.Registry.apply ctx' t_kill in
  Alcotest.(check bool) "valid after kill" true (Validate.is_valid ctx''.Spirv_fuzz.Context.m);
  Alcotest.(check bool) "image unchanged" true
    (Image.equal (render_exn fx.m) (render_exn ctx''.Spirv_fuzz.Context.m));
  (* but kill on a live block is rejected *)
  check_rejected fx
    (Spirv_fuzz.Transformation.Replace_branch_with_kill { fn = fx.main; block = fx.l_then })

let test_add_dead_block_requires_phi_free_successor () =
  let fx = fixture () in
  (* l_then branches to l_merge which has a φ: must be rejected *)
  let fx, cond, enablers = true_const fx in
  let ctx = List.fold_left Spirv_fuzz.Registry.apply fx.ctx enablers in
  let fx = { fx with ctx } in
  let fx, fresh = fresh1 fx in
  check_rejected fx
    (Spirv_fuzz.Transformation.Add_dead_block
       { fn = fx.main; existing = fx.l_then; fresh; cond })
  |> ignore

let test_move_block_down () =
  let fx = fixture () in
  (* l_then and l_else are order-independent siblings *)
  let ctx' =
    check_applies fx (Spirv_fuzz.Transformation.Move_block_down { fn = fx.main; block = fx.l_then })
  in
  let f = Module_ir.function_exn ctx'.Spirv_fuzz.Context.m fx.main in
  let order = List.map (fun (b : Block.t) -> b.Block.label) f.Func.blocks in
  Alcotest.(check (list int)) "swapped" [ fx.l_entry; fx.l_else; fx.l_then; fx.l_merge ] order;
  (* moving the entry block is rejected *)
  check_rejected fx (Spirv_fuzz.Transformation.Move_block_down { fn = fx.main; block = fx.l_entry });
  (* moving a block past one it dominates is rejected (entry dominates then) *)
  check_rejected fx (Spirv_fuzz.Transformation.Move_block_down { fn = fx.main; block = fx.l_merge })

let test_wrap_region_in_selection () =
  (* wrap l_then (single pred, no φs, defines vt used in the merge φ — so
     the fixture's l_then is NOT wrappable; build a block whose values stay
     local) *)
  let fx = fixture () in
  let fx, cond, enablers = true_const fx in
  let fx, h, mrg = fresh2 fx in
  check_rejected ~also:enablers fx
    (Spirv_fuzz.Transformation.Wrap_region_in_selection
       {
         fn = fx.main;
         block = fx.l_then;
         fresh_header = h;
         fresh_merge = mrg;
         cond;
         branch_on_true = true;
       });
  (* split the merge block after the store: the tail block (store already
     inside l_merge...) — instead wrap a freshly split store-only block *)
  let fx2 = fixture () in
  let fx2, split_fresh = fresh1 fx2 in
  let store_block_split =
    Spirv_fuzz.Transformation.Split_block
      {
        fn = fx2.main;
        block = fx2.l_merge;
        point = Spirv_fuzz.Transformation.At_end;
        fresh = split_fresh;
      }
  in
  let fx2, cond2, enablers2 = true_const fx2 in
  let fx2, h2, m2 = fresh2 fx2 in
  let ctx' =
    check_applies
      ~also:(store_block_split :: enablers2)
      fx2
      (Spirv_fuzz.Transformation.Wrap_region_in_selection
         {
           fn = fx2.main;
           block = split_fresh;
           fresh_header = h2;
           fresh_merge = m2;
           cond = cond2;
           branch_on_true = true;
         })
  in
  let f = Module_ir.function_exn ctx'.Spirv_fuzz.Context.m fx2.main in
  Alcotest.(check bool) "header exists" true (Func.find_block f h2 <> None);
  Alcotest.(check bool) "merge exists" true (Func.find_block f m2 <> None)

let test_invert_branch_condition () =
  let fx = fixture () in
  let fx, fresh = fresh1 fx in
  let ctx' =
    check_applies fx
      (Spirv_fuzz.Transformation.Invert_branch_condition
         { fn = fx.main; block = fx.l_entry; fresh })
  in
  let f = Module_ir.function_exn ctx'.Spirv_fuzz.Context.m fx.main in
  let entry = Func.block_exn f fx.l_entry in
  (match entry.Block.terminator with
  | Block.BranchConditional (c, t, e) ->
      Alcotest.(check int) "negated id" fresh c;
      Alcotest.(check int) "targets swapped (then)" fx.l_else t;
      Alcotest.(check int) "targets swapped (else)" fx.l_then e
  | _ -> Alcotest.fail "terminator changed shape");
  (* blocks with unconditional terminators are rejected *)
  let fx2, f2 = fresh1 fx in
  check_rejected fx2
    (Spirv_fuzz.Transformation.Invert_branch_condition
       { fn = fx2.main; block = fx2.l_then; fresh = f2 })

let test_propagate_instruction_up () =
  let fx = fixture () in
  let fx, fa = fresh1 fx in
  let fx, fb = fresh1 fx in
  let ctx' =
    check_applies fx
      (Spirv_fuzz.Transformation.Propagate_instruction_up
         {
           fn = fx.main;
           block = fx.l_merge;
           fresh_per_pred = [ (fx.l_then, fa); (fx.l_else, fb) ];
         })
  in
  (* the φ count in the merge block grows by one (the moved instruction
     became a φ) *)
  let f = Module_ir.function_exn ctx'.Spirv_fuzz.Context.m fx.main in
  let merge = Func.block_exn f fx.l_merge in
  let phis = List.filter Instr.is_phi merge.Block.instrs in
  Alcotest.(check int) "two phis now" 2 (List.length phis);
  (* mismatched pred map is rejected *)
  let fx2 = fixture () in
  let fx2, g = fresh1 fx2 in
  check_rejected fx2
    (Spirv_fuzz.Transformation.Propagate_instruction_up
       { fn = fx2.main; block = fx2.l_merge; fresh_per_pred = [ (fx2.l_then, g) ] })

let test_permute_phi_entries () =
  let fx = fixture () in
  let phi_id =
    let f = Module_ir.function_exn fx.m fx.main in
    Option.get (List.hd (Func.block_exn f fx.l_merge).Block.instrs).Instr.result
  in
  let ctx' =
    check_applies fx
      (Spirv_fuzz.Transformation.Permute_phi_entries
         { fn = fx.main; block = fx.l_merge; phi = phi_id; rotation = 1 })
  in
  let f = Module_ir.function_exn ctx'.Spirv_fuzz.Context.m fx.main in
  (match (List.hd (Func.block_exn f fx.l_merge).Block.instrs).Instr.op with
  | Instr.Phi ((_, first_pred) :: _) ->
      Alcotest.(check int) "rotated: else first" fx.l_else first_pred
  | _ -> Alcotest.fail "phi vanished");
  check_rejected fx
    (Spirv_fuzz.Transformation.Permute_phi_entries
       { fn = fx.main; block = fx.l_merge; phi = 99999; rotation = 1 })

let test_swap_commutative_operands () =
  let fx = fixture () in
  (* swap the comparison x < 2.0: becomes 2.0 > x *)
  let ctx' =
    check_applies fx
      (Spirv_fuzz.Transformation.Swap_commutative_operands
         { fn = fx.main; block = fx.l_entry; instr = fx.cond })
  in
  let f = Module_ir.function_exn ctx'.Spirv_fuzz.Context.m fx.main in
  let entry = Func.block_exn f fx.l_entry in
  let swapped =
    List.exists
      (fun (i : Instr.t) ->
        i.Instr.result = Some fx.cond
        && match i.Instr.op with
           | Instr.Binop (Instr.FOrdGreaterThan, _, x) -> Id.equal x fx.x
           | _ -> false)
      entry.Block.instrs
  in
  Alcotest.(check bool) "mirrored comparison" true swapped;
  (* unknown instruction rejected *)
  check_rejected fx
    (Spirv_fuzz.Transformation.Swap_commutative_operands
       { fn = fx.main; block = fx.l_entry; instr = 99999 })

let test_replace_bool_constant_with_binary () =
  let fx = fixture () in
  (* create a dead block guarded by a true constant, then obfuscate the
     guard with a tautological integer comparison *)
  let fx, cond, enablers = true_const fx in
  let fx, tail = fresh1 fx in
  let split =
    Spirv_fuzz.Transformation.Split_block
      { fn = fx.main; block = fx.l_then; point = Spirv_fuzz.Transformation.At_end; fresh = tail }
  in
  let fx, dead = fresh1 fx in
  let mk_dead =
    Spirv_fuzz.Transformation.Add_dead_block
      { fn = fx.main; existing = fx.l_then; fresh = dead; cond }
  in
  (* a DYNAMIC int operand for the tautology (a constant would be folded
     right back by the optimizer): an int local loaded in l_then *)
  let fx, int_ty_id = fresh1 fx in
  let add_int = Spirv_fuzz.Transformation.Add_type { fresh = int_ty_id; ty = Ty.Int } in
  let fx, var, var_ptr_ty = fresh2 fx in
  let add_var =
    Spirv_fuzz.Transformation.Add_local_variable
      { fresh = var; fresh_ptr_ty = var_ptr_ty; fn = fx.main; pointee = int_ty_id }
  in
  let fx, loaded = fresh1 fx in
  let add_load =
    Spirv_fuzz.Transformation.Add_load
      {
        fn = fx.main;
        block = fx.l_then;
        point = Spirv_fuzz.Transformation.At_end;
        fresh = loaded;
        pointer = var;
      }
  in
  let site =
    {
      Spirv_fuzz.Transformation.us_fn = fx.main;
      us_block = fx.l_then;
      us_anchor = Spirv_fuzz.Transformation.Terminator;
      us_operand = 0;
    }
  in
  let fx, cmp = fresh1 fx in
  let ctx' =
    check_applies
      ~also:(split :: enablers @ [ mk_dead; add_int; add_var; add_load ])
      fx
      (Spirv_fuzz.Transformation.Replace_bool_constant_with_binary
         { site; fresh = cmp; operand = loaded })
  in
  (* the branch condition is now the comparison, not the constant *)
  let f = Module_ir.function_exn ctx'.Spirv_fuzz.Context.m fx.main in
  (match (Func.block_exn f fx.l_then).Block.terminator with
  | Block.BranchConditional (c, _, _) -> Alcotest.(check int) "obfuscated guard" cmp c
  | _ -> Alcotest.fail "terminator shape");
  (* the dead block must now survive the clean optimizer (it cannot see
     through 7 == 7) while the image stays intact *)
  let optimized =
    Compilers.Optimizer.run Compilers.Optimizer.standard ctx'.Spirv_fuzz.Context.m
  in
  Alcotest.(check bool) "dead block survives -O" true
    (List.exists
       (fun (fn : Func.t) -> Func.find_block fn dead <> None)
       optimized.Module_ir.functions)

let test_add_load_store () =
  let fx = fixture () in
  let fx, fresh = fresh1 fx in
  (* loads are allowed anywhere *)
  let ctx' =
    check_applies fx
      (Spirv_fuzz.Transformation.Add_load
         {
           fn = fx.main;
           block = fx.l_then;
           point = Spirv_fuzz.Transformation.At_end;
           fresh;
           pointer = fx.out;
         })
  in
  ignore ctx';
  (* stores to a live block without facts are rejected *)
  check_rejected fx
    (Spirv_fuzz.Transformation.Add_store
       {
         fn = fx.main;
         block = fx.l_then;
         point = Spirv_fuzz.Transformation.At_end;
         pointer = fx.out;
         value = fx.call_id;
       });
  (* but stores to an irrelevant-pointee variable are fine *)
  let float_id = Option.get (Module_ir.find_type_id fx.m Ty.Float) in
  let fx, g, gp = fresh2 fx in
  let add_gv =
    Spirv_fuzz.Transformation.Add_global_variable
      { fresh = g; fresh_ptr_ty = gp; pointee = float_id }
  in
  let ctx'' =
    check_applies ~also:[ add_gv ] fx
      (Spirv_fuzz.Transformation.Add_store
         {
           fn = fx.main;
           block = fx.l_then;
           point = Spirv_fuzz.Transformation.At_end;
           pointer = g;
           value = fx.x;
         })
  in
  ignore ctx''

let test_synonym_family () =
  let fx = fixture () in
  (* CopyObject *)
  let fx, c1 = fresh1 fx in
  let t_copy =
    Spirv_fuzz.Transformation.Add_copy_object
      {
        fn = fx.main;
        block = fx.l_entry;
        point = Spirv_fuzz.Transformation.Before fx.cond;
        fresh = c1;
        operand = fx.x;
      }
  in
  let ctx1 = check_applies fx t_copy in
  Alcotest.(check bool) "synonym fact" true
    (Spirv_fuzz.Fact_manager.are_synonymous ctx1.Spirv_fuzz.Context.facts c1 fx.x);
  (* arithmetic synonym via x * 1.0; the 1.0 constant already exists *)
  let float_id = Option.get (Module_ir.find_type_id fx.m Ty.Float) in
  let one = Option.get (Module_ir.find_constant_id fx.m ~ty:float_id ~value:(Constant.Float 1.0)) in
  let fx, c2 = fresh1 fx in
  let t_arith =
    Spirv_fuzz.Transformation.Add_arithmetic_synonym
      {
        fn = fx.main;
        block = fx.l_entry;
        point = Spirv_fuzz.Transformation.Before fx.cond;
        fresh = c2;
        operand = fx.x;
        kind = Spirv_fuzz.Transformation.Mul_one_float;
        identity = one;
      }
  in
  ignore (check_applies fx t_arith);
  (* select synonym *)
  let fx, c3 = fresh1 fx in
  let t_select =
    Spirv_fuzz.Transformation.Add_select_synonym
      {
        fn = fx.main;
        block = fx.l_then;
        point = Spirv_fuzz.Transformation.At_end;
        fresh = c3;
        cond = fx.cond;
        operand = fx.call_id;
      }
  in
  ignore (check_applies fx t_select);
  (* now replace a use with the copy synonym: x used in the color composite *)
  let composite_result =
    let f = Module_ir.function_exn ctx1.Spirv_fuzz.Context.m fx.main in
    Func.all_instrs f
    |> List.find_map (fun (i : Instr.t) ->
           match i.Instr.op with
           | Instr.CompositeConstruct _ -> i.Instr.result
           | _ -> None)
    |> Option.get
  in
  let site =
    {
      Spirv_fuzz.Transformation.us_fn = fx.main;
      us_block = fx.l_merge;
      us_anchor = Spirv_fuzz.Transformation.Result_id composite_result;
      us_operand = 1 (* the x slot *);
    }
  in
  let t_replace = Spirv_fuzz.Transformation.Replace_id_with_synonym { site; synonym = c1 } in
  Alcotest.(check bool) "replace pre" true (Spirv_fuzz.Registry.precondition ctx1 t_replace);
  let ctx2 = Spirv_fuzz.Registry.apply ctx1 t_replace in
  Alcotest.(check bool) "valid" true (Validate.is_valid ctx2.Spirv_fuzz.Context.m);
  Alcotest.(check bool) "image preserved" true
    (Image.equal (render_exn fx.m) (render_exn ctx2.Spirv_fuzz.Context.m));
  (* replacing with a non-synonym is rejected *)
  check_rejected fx
    (Spirv_fuzz.Transformation.Replace_id_with_synonym { site; synonym = fx.call_id })

let test_replace_constant_with_uniform () =
  let fx = fixture () in
  (* add a float uniform equal to the 2.0 used in the comparison *)
  let m = fx.m in
  let float_id = Option.get (Module_ir.find_type_id m Ty.Float) in
  let b_ptr = Ty.Pointer (Ty.Uniform, float_id) in
  let m, ptr_ty = Module_ir.intern_type m b_ptr in
  let m, uni = Module_ir.add_global m ~ty:ptr_ty ~name:"u_two" ~init:None in
  let input' = Input.make ~width:4 ~height:4
      [ ("u_flag", Value.VBool true); ("u_two", Value.VFloat 2.0) ] in
  let ctx = Spirv_fuzz.Context.make m input' in
  let fx = { fx with m; ctx } in
  let two = Option.get (Module_ir.find_constant_id m ~ty:float_id ~value:(Constant.Float 2.0)) in
  ignore two;
  let fx, load_id = fresh1 fx in
  let site =
    {
      Spirv_fuzz.Transformation.us_fn = fx.main;
      us_block = fx.l_entry;
      us_anchor = Spirv_fuzz.Transformation.Result_id fx.cond;
      us_operand = 1 (* the 2.0 constant in x < 2.0 *);
    }
  in
  let t =
    Spirv_fuzz.Transformation.Replace_constant_with_uniform
      { site; fresh_load = load_id; uniform = uni }
  in
  Alcotest.(check bool) "pre" true (Spirv_fuzz.Registry.precondition fx.ctx t);
  let ctx' = Spirv_fuzz.Registry.apply fx.ctx t in
  Alcotest.(check bool) "valid" true (Validate.is_valid ctx'.Spirv_fuzz.Context.m);
  let before =
    match Interp.render fx.m input' with Ok i -> i | Error _ -> Alcotest.fail "render"
  in
  let after =
    match Interp.render ctx'.Spirv_fuzz.Context.m input' with
    | Ok i -> i
    | Error _ -> Alcotest.fail "render"
  in
  Alcotest.(check bool) "image preserved" true (Image.equal before after);
  (* a uniform with a different value is rejected *)
  let m2, uni2 =
    let m2, pt = Module_ir.intern_type ctx'.Spirv_fuzz.Context.m (Ty.Pointer (Ty.Uniform, float_id)) in
    ignore pt;
    Module_ir.add_global m2
      ~ty:(snd (Module_ir.intern_type m2 (Ty.Pointer (Ty.Uniform, float_id))))
      ~name:"u_other" ~init:None
  in
  let input'' = Input.make [ ("u_flag", Value.VBool true); ("u_two", Value.VFloat 2.0); ("u_other", Value.VFloat 3.0) ] in
  let ctx2 = Spirv_fuzz.Context.make m2 input'' in
  let m3, load2 = Module_ir.fresh ctx2.Spirv_fuzz.Context.m in
  let ctx2 = { ctx2 with Spirv_fuzz.Context.m = m3 } in
  Alcotest.(check bool) "wrong value rejected" false
    (Spirv_fuzz.Registry.precondition ctx2
       (Spirv_fuzz.Transformation.Replace_constant_with_uniform
          { site; fresh_load = load2; uniform = uni2 }))

let test_composites () =
  let fx = fixture () in
  let float_id = Option.get (Module_ir.find_type_id fx.m Ty.Float) in
  let vec2 =
    match Module_ir.find_type_id fx.m (Ty.Vector (float_id, 2)) with
    | Some t -> t
    | None -> Alcotest.fail "fixture has vec2 (frag coord)"
  in
  let fx, cc = fresh1 fx in
  let t_construct =
    Spirv_fuzz.Transformation.Composite_construct
      {
        fn = fx.main;
        block = fx.l_entry;
        point = Spirv_fuzz.Transformation.Before fx.cond;
        fresh = cc;
        ty = vec2;
        parts = [ fx.x; fx.x ];
      }
  in
  let ctx1 = check_applies fx t_construct in
  (* indexed synonym facts for each part *)
  Alcotest.(check (list int)) "component fact" [ fx.x ]
    (Spirv_fuzz.Fact_manager.component_synonyms ctx1.Spirv_fuzz.Context.facts ~composite:cc
       ~path:[ 0 ]);
  (* extract bridges to a whole-object synonym *)
  let fx1 = { fx with ctx = ctx1; m = ctx1.Spirv_fuzz.Context.m } in
  let fx1, ex = fresh1 fx1 in
  let t_extract =
    Spirv_fuzz.Transformation.Composite_extract
      {
        fn = fx1.main;
        block = fx1.l_entry;
        point = Spirv_fuzz.Transformation.Before fx1.cond;
        fresh = ex;
        composite = cc;
        path = [ 0 ];
      }
  in
  Alcotest.(check bool) "extract pre" true (Spirv_fuzz.Registry.precondition fx1.ctx t_extract);
  let ctx2 = Spirv_fuzz.Registry.apply fx1.ctx t_extract in
  Alcotest.(check bool) "extract synonym bridged" true
    (Spirv_fuzz.Fact_manager.are_synonymous ctx2.Spirv_fuzz.Context.facts ex fx.x);
  (* arity mismatch rejected *)
  let fx2, c2 = fresh1 fx in
  check_rejected fx2
    (Spirv_fuzz.Transformation.Composite_construct
       {
         fn = fx2.main;
         block = fx2.l_entry;
         point = Spirv_fuzz.Transformation.Before fx2.cond;
         fresh = c2;
         ty = vec2;
         parts = [ fx2.x ];
       })

let test_set_function_control () =
  let fx = fixture () in
  let ctx' =
    check_applies fx
      (Spirv_fuzz.Transformation.Set_function_control
         { fn = fx.helper; control = Func.DontInline })
  in
  let g = Module_ir.function_exn ctx'.Spirv_fuzz.Context.m fx.helper in
  Alcotest.(check bool) "control set" true (g.Func.control = Func.DontInline);
  (* setting the same control again is a no-op and rejected *)
  let fx' = { fx with ctx = ctx'; m = ctx'.Spirv_fuzz.Context.m } in
  check_rejected fx'
    (Spirv_fuzz.Transformation.Set_function_control { fn = fx.helper; control = Func.DontInline })

let test_function_call_and_inline () =
  let fx = fixture () in
  (* a call to the (not live-safe) helper from a live block is rejected *)
  let fx, r1 = fresh1 fx in
  check_rejected fx
    (Spirv_fuzz.Transformation.Function_call
       {
         fn = fx.main;
         block = fx.l_then;
         point = Spirv_fuzz.Transformation.At_end;
         fresh = r1;
         callee = fx.helper;
         args = [ fx.x ];
       });
  (* but allowed from a dead block *)
  let fx, cond, enablers = true_const fx in
  let fx, dead = fresh1 fx in
  let fx, r2 = fresh1 fx in
  let mk_dead =
    Spirv_fuzz.Transformation.Add_dead_block
      { fn = fx.main; existing = fx.l_then; fresh = dead; cond }
  in
  (* AddDeadBlock needs φ-free successor; split l_merge's φ away first:
     instead target the helper's straight-line... simplest: split l_then at
     end so its successor is the fresh empty block *)
  let fx, tail = fresh1 fx in
  let split =
    Spirv_fuzz.Transformation.Split_block
      {
        fn = fx.main;
        block = fx.l_then;
        point = Spirv_fuzz.Transformation.At_end;
        fresh = tail;
      }
  in
  let ctx' =
    check_applies
      ~also:(split :: enablers @ [ mk_dead ])
      fx
      (Spirv_fuzz.Transformation.Function_call
         {
           fn = fx.main;
           block = dead;
           point = Spirv_fuzz.Transformation.At_end;
           fresh = r2;
           callee = fx.helper;
           args = [ fx.x ];
         })
  in
  ignore ctx';
  (* inline the original call in the entry block *)
  let fx2 = fixture () in
  let helper_results =
    let g = Module_ir.function_exn fx2.m fx2.helper in
    List.filter_map (fun (i : Instr.t) -> i.Instr.result) (Func.all_instrs g)
  in
  let fx2, fresh_ids =
    List.fold_left
      (fun (fx, acc) _ ->
        let fx, id = fresh1 fx in
        (fx, acc @ [ id ]))
      (fx2, []) helper_results
  in
  let id_map = List.combine helper_results fresh_ids in
  let ctx'' =
    check_applies fx2
      (Spirv_fuzz.Transformation.Inline_function
         { fn = fx2.main; block = fx2.l_entry; call_id = fx2.call_id; id_map })
  in
  (* no call remains in main *)
  let f = Module_ir.function_exn ctx''.Spirv_fuzz.Context.m fx2.main in
  Alcotest.(check bool) "call gone" false
    (List.exists
       (fun (i : Instr.t) ->
         match i.Instr.op with Instr.FunctionCall _ -> true | _ -> false)
       (Func.all_instrs f));
  (* DontInline blocks inlining *)
  let fx3 = fixture () in
  let ctx3 =
    Spirv_fuzz.Registry.apply fx3.ctx
      (Spirv_fuzz.Transformation.Set_function_control
         { fn = fx3.helper; control = Func.DontInline })
  in
  let fx3 = { fx3 with ctx = ctx3; m = ctx3.Spirv_fuzz.Context.m } in
  let fx3, fresh_ids3 =
    List.fold_left
      (fun (fx, acc) _ ->
        let fx, id = fresh1 fx in
        (fx, acc @ [ id ]))
      (fx3, []) helper_results
  in
  check_rejected fx3
    (Spirv_fuzz.Transformation.Inline_function
       {
         fn = fx3.main;
         block = fx3.l_entry;
         call_id = fx3.call_id;
         id_map = List.combine helper_results fresh_ids3;
       })

let test_add_parameter () =
  let fx = fixture () in
  let float_id = Option.get (Module_ir.find_type_id fx.m Ty.Float) in
  let half =
    Option.get (Module_ir.find_constant_id fx.m ~ty:float_id ~value:(Constant.Float 0.5))
  in
  let fx, p, fnty = fresh2 fx in
  let ctx' =
    check_applies fx
      (Spirv_fuzz.Transformation.Add_parameter
         { fn = fx.helper; fresh_param = p; fresh_fn_ty = fnty; default = half })
  in
  let g = Module_ir.function_exn ctx'.Spirv_fuzz.Context.m fx.helper in
  Alcotest.(check int) "two params now" 2 (List.length g.Func.params);
  Alcotest.(check bool) "param irrelevant" true
    (Spirv_fuzz.Fact_manager.is_irrelevant ctx'.Spirv_fuzz.Context.facts p);
  (* every call site extended *)
  let f = Module_ir.function_exn ctx'.Spirv_fuzz.Context.m fx.main in
  let ok =
    List.exists
      (fun (i : Instr.t) ->
        match i.Instr.op with
        | Instr.FunctionCall (callee, args) ->
            Id.equal callee fx.helper && List.length args = 2
        | _ -> false)
      (Func.all_instrs f)
  in
  Alcotest.(check bool) "call site extended" true ok;
  (* the entry point cannot gain parameters *)
  let fx2, p2, ft2 = fresh2 fx in
  check_rejected fx2
    (Spirv_fuzz.Transformation.Add_parameter
       { fn = fx2.main; fresh_param = p2; fresh_fn_ty = ft2; default = half })

let test_replace_irrelevant_id () =
  let fx = fixture () in
  let float_id = Option.get (Module_ir.find_type_id fx.m Ty.Float) in
  let half =
    Option.get (Module_ir.find_constant_id fx.m ~ty:float_id ~value:(Constant.Float 0.5))
  in
  let fx, p, fnty = fresh2 fx in
  let add_param =
    Spirv_fuzz.Transformation.Add_parameter
      { fn = fx.helper; fresh_param = p; fresh_fn_ty = fnty; default = half }
  in
  (* after AddParameter, the call's new final argument slot feeds an
     irrelevant parameter; replace it with x *)
  let site =
    {
      Spirv_fuzz.Transformation.us_fn = fx.main;
      us_block = fx.l_entry;
      us_anchor = Spirv_fuzz.Transformation.Result_id fx.call_id;
      us_operand = 2 (* callee is slot 0, original arg slot 1, new arg slot 2 *);
    }
  in
  let ctx' =
    check_applies ~also:[ add_param ] fx
      (Spirv_fuzz.Transformation.Replace_irrelevant_id { site; replacement = fx.x })
  in
  ignore ctx';
  (* a non-irrelevant slot is rejected *)
  let site_bad = { site with Spirv_fuzz.Transformation.us_operand = 1 } in
  let ctx_with_param = Spirv_fuzz.Registry.apply fx.ctx add_param in
  Alcotest.(check bool) "relevant slot rejected" false
    (Spirv_fuzz.Registry.precondition ctx_with_param
       (Spirv_fuzz.Transformation.Replace_irrelevant_id { site = site_bad; replacement = fx.x }))

let test_add_uniform () =
  let fx = fixture () in
  let float_id = Option.get (Module_ir.find_type_id fx.m Ty.Float) in
  let fx, u, up = fresh2 fx in
  let t =
    Spirv_fuzz.Transformation.Add_uniform
      { fresh = u; fresh_ptr_ty = up; pointee = float_id; name = "_u_extra";
        value = Value.VFloat 2.0 }
  in
  Alcotest.(check bool) "pre" true (Spirv_fuzz.Registry.precondition fx.ctx t);
  let ctx' = Spirv_fuzz.Registry.apply fx.ctx t in
  Alcotest.(check bool) "valid" true (Validate.is_valid ctx'.Spirv_fuzz.Context.m);
  (* the input was extended in sync with the module *)
  Alcotest.(check bool) "input extended" true
    (Input.find_uniform ctx'.Spirv_fuzz.Context.input "_u_extra" = Some (Value.VFloat 2.0));
  (* the variant renders the same image on its own input *)
  let before = render_exn fx.m in
  let after =
    match Interp.render ctx'.Spirv_fuzz.Context.m ctx'.Spirv_fuzz.Context.input with
    | Ok img -> img
    | Error e -> Alcotest.failf "render: %s" (Interp.trap_to_string e)
  in
  Alcotest.(check bool) "image preserved" true (Image.equal before after);
  (* the new uniform is now a ReplaceConstantWithUniform target *)
  Alcotest.(check bool) "known uniform" true
    (List.exists (fun (gid, _, _) -> Id.equal gid u)
       (Spirv_fuzz.Context.known_uniforms ctx'));
  (* duplicate names are rejected *)
  let fx2 = { fx with ctx = ctx'; m = ctx'.Spirv_fuzz.Context.m } in
  let fx2, u2, up2 = fresh2 fx2 in
  check_rejected fx2
    (Spirv_fuzz.Transformation.Add_uniform
       { fresh = u2; fresh_ptr_ty = up2; pointee = float_id; name = "_u_extra";
         value = Value.VFloat 2.0 });
  (* value/type mismatches are rejected *)
  let fx3, u3, up3 = fresh2 fx in
  check_rejected fx3
    (Spirv_fuzz.Transformation.Add_uniform
       { fresh = u3; fresh_ptr_ty = up3; pointee = float_id; name = "_u_other";
         value = Value.VBool true })

let test_add_function_from_donor () =
  let fx = fixture () in
  let donor = Generator.generate (Tbct.Rng.make 77) in
  match Spirv_fuzz.Donor.eligible_functions donor with
  | [] -> () (* donor has no helpers at this seed: acceptable *)
  | g :: _ -> (
      match Spirv_fuzz.Donor.encode fx.ctx donor g with
      | None -> Alcotest.fail "donor encoding failed"
      | Some (ctx, payload) ->
          let fx = { fx with ctx; m = ctx.Spirv_fuzz.Context.m } in
          let ctx' = check_applies fx (Spirv_fuzz.Transformation.Add_function payload) in
          let fn_id = payload.Spirv_fuzz.Transformation.af_function.Func.id in
          Alcotest.(check bool) "function present" true
            (Module_ir.find_function ctx'.Spirv_fuzz.Context.m fn_id <> None);
          Alcotest.(check bool) "live-safe fact" true
            (Spirv_fuzz.Fact_manager.is_live_safe ctx'.Spirv_fuzz.Context.facts fn_id))

(* replaying any prefix of a recorded sequence from the fixture is safe *)
let prop_fixture_prefixes =
  QCheck.Test.make ~name:"prefixes of recorded sequences preserve the fixture image"
    ~count:15
    QCheck.(int_bound 10_000)
    (fun seed ->
      let fx = fixture () in
      let config =
        { Spirv_fuzz.Fuzzer.default_config with Spirv_fuzz.Fuzzer.max_transformations = 60 }
      in
      let result = Spirv_fuzz.Fuzzer.run ~config ~seed fx.ctx in
      let ts = result.Spirv_fuzz.Fuzzer.transformations in
      let before = render_exn fx.m in
      List.for_all
        (fun k ->
          let prefix = List.filteri (fun i _ -> i < k) ts in
          let ctx = Spirv_fuzz.Lang.replay fx.ctx prefix in
          Validate.is_valid ctx.Spirv_fuzz.Context.m
          && (match Interp.render ctx.Spirv_fuzz.Context.m ctx.Spirv_fuzz.Context.input with
             | Ok img -> Image.equal before img
             | Error _ -> false))
        [ 1; List.length ts / 2; List.length ts ])

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "transformations"
    [
      ( "supporting",
        [
          Alcotest.test_case "AddType" `Quick test_add_type;
          Alcotest.test_case "AddConstant" `Quick test_add_constant;
          Alcotest.test_case "AddGlobal/LocalVariable" `Quick test_add_global_and_local_variable;
          Alcotest.test_case "AddNop" `Quick test_add_nop;
        ] );
      ( "control-flow",
        [
          Alcotest.test_case "SplitBlock" `Quick test_split_block;
          Alcotest.test_case "AddDeadBlock + ReplaceBranchWithKill" `Quick
            test_add_dead_block_and_kill;
          Alcotest.test_case "AddDeadBlock needs phi-free successor" `Quick
            test_add_dead_block_requires_phi_free_successor;
          Alcotest.test_case "MoveBlockDown" `Quick test_move_block_down;
          Alcotest.test_case "WrapRegionInSelection" `Quick test_wrap_region_in_selection;
          Alcotest.test_case "InvertBranchCondition" `Quick test_invert_branch_condition;
          Alcotest.test_case "PropagateInstructionUp" `Quick test_propagate_instruction_up;
          Alcotest.test_case "PermutePhiEntries" `Quick test_permute_phi_entries;
          Alcotest.test_case "SwapCommutativeOperands" `Quick test_swap_commutative_operands;
          Alcotest.test_case "ReplaceBooleanConstantWithBinary" `Quick
            test_replace_bool_constant_with_binary;
        ] );
      ( "data",
        [
          Alcotest.test_case "AddLoad / AddStore" `Quick test_add_load_store;
          Alcotest.test_case "synonym family" `Quick test_synonym_family;
          Alcotest.test_case "ReplaceConstantWithUniform" `Quick
            test_replace_constant_with_uniform;
          Alcotest.test_case "CompositeConstruct / Extract" `Quick test_composites;
        ] );
      ( "functions",
        [
          Alcotest.test_case "SetFunctionControl" `Quick test_set_function_control;
          Alcotest.test_case "FunctionCall / InlineFunction" `Quick
            test_function_call_and_inline;
          Alcotest.test_case "AddParameter" `Quick test_add_parameter;
          Alcotest.test_case "ReplaceIrrelevantId" `Quick test_replace_irrelevant_id;
          Alcotest.test_case "AddUniform (module+input co-transformation)" `Quick
            test_add_uniform;
          Alcotest.test_case "AddFunction from donor" `Quick test_add_function_from_donor;
        ] );
      ("properties", qcheck [ prop_fixture_prefixes ]);
    ]
