(* Tests for the memory/alias static-analysis layer: access-path
   resolution with in-bounds proofs (Spirv_ir.Memory), alias-verdict
   soundness against the interpreter's memory trace, the symbolic memory
   model that folds proven-finite dynamic indices instead of abstaining,
   the four memory lint rules, the optimizer's DSE cross-check, the
   injected store-forwarding bug and its blame attribution, and the
   per-reason abstention counter codec of the jobs journal. *)

open Spirv_ir

let main_fn (m : Module_ir.t) : Func.t =
  List.find
    (fun (f : Func.t) -> Id.equal f.Func.id m.Module_ir.entry)
    m.Module_ir.functions

let analyze m (fn : Func.t) =
  Memory.analyze m fn ~avail:(Dataflow.Availability.make m fn)

let mem_corpus = Corpus.memory_references
let mem_module name = List.assoc name mem_corpus

let full_corpus () =
  Lazy.force Corpus.lowered_references
  @ Lazy.force Corpus.lowered_loop_references
  @ mem_corpus

(* ------------------------------------------------------------------ *)
(* Access-path resolution and in-bounds proofs                         *)

(* every access of the memory corpus resolves and proves in-bounds, even
   though the indices are computed at runtime *)
let test_corpus_fully_resolved () =
  List.iter
    (fun (name, m) ->
      let mem = analyze m (main_fn m) in
      let s = Memory.stats mem in
      Alcotest.(check int)
        (name ^ " all resolved")
        (s.Memory.n_loads + s.Memory.n_stores)
        s.Memory.n_resolved;
      Alcotest.(check int)
        (name ^ " all in-bounds")
        s.Memory.n_resolved s.Memory.n_in_bounds;
      Alcotest.(check bool)
        (name ^ " classified pairs") true (s.Memory.n_pairs > 0))
    mem_corpus

(* dynamic same-array accesses are May_alias, distinct allocations are
   No_alias, and a repeated constant chain is Must_alias *)
let test_verdict_families () =
  let m = mem_module "mem_swizzle" in
  let mem = analyze m (main_fn m) in
  let s = Memory.stats mem in
  Alcotest.(check bool) "has no-alias" true (s.Memory.n_no_alias > 0);
  Alcotest.(check bool) "has may-alias" true (s.Memory.n_may_alias > 0);
  Alcotest.(check bool) "has must-alias" true (s.Memory.n_must_alias > 0)

(* ------------------------------------------------------------------ *)
(* Alias soundness against the interpreter                             *)

(* Run every fragment with the memory trace on, recording the concrete
   (root, path) cells each pointer id touches.  A [No_alias] verdict
   claims its two accesses touch disjoint cells in every execution; any
   overlap is an unsoundness.  An [in_bounds] proof claims every concrete
   index lies inside the composite; any out-of-range component is too. *)
let check_memory_sound name (m : Module_ir.t) (input : Input.t) =
  let funcs =
    List.filter (fun (f : Func.t) -> f.Func.blocks <> []) m.Module_ir.functions
  in
  let mems = List.map (fun f -> analyze m f) funcs in
  let no_alias_pairs =
    List.concat_map
      (fun mem ->
        let accs = Memory.accesses mem in
        List.concat_map
          (fun (a : Memory.access) ->
            List.filter_map
              (fun (b : Memory.access) ->
                if
                  a.Memory.ord < b.Memory.ord
                  && Memory.alias mem a b = Memory.No_alias
                then Some (a.Memory.a_ptr, b.Memory.a_ptr)
                else None)
              accs)
          accs)
      mems
  in
  let bounds_of =
    (* ptr id -> seg lengths, for accesses carrying an in-bounds proof *)
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun mem ->
        List.iter
          (fun (a : Memory.access) ->
            match a.Memory.a_path with
            | Some p when a.Memory.in_bounds ->
                Hashtbl.replace tbl a.Memory.a_ptr
                  (List.map (fun (s : Memory.seg) -> s.Memory.seg_len) p.Memory.segs)
            | _ -> ())
          (Memory.accesses mem))
      mems;
    tbl
  in
  let touched : (Id.t, (Id.t * int list, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 64
  in
  let bad = ref None in
  let mem_trace ~kind:_ ~ptr ~root ~path =
    (match Hashtbl.find_opt bounds_of ptr with
    | Some lens when List.length lens = List.length path ->
        List.iter2
          (fun len i ->
            if (i < 0 || i >= len) && Option.is_none !bad then
              bad := Some (Printf.sprintf "in-bounds access %s hit index %d of %d"
                             (Id.to_string ptr) i len))
          lens path
    | _ -> ());
    let cells =
      match Hashtbl.find_opt touched ptr with
      | Some c -> c
      | None ->
          let c = Hashtbl.create 4 in
          Hashtbl.replace touched ptr c;
          c
    in
    Hashtbl.replace cells (root, path) ()
  in
  for y = 0 to input.Input.height - 1 do
    for x = 0 to input.Input.width - 1 do
      ignore (Interp.run_fragment ~mem_trace m input ~frag_x:x ~frag_y:y)
    done
  done;
  (match !bad with
  | Some msg -> Alcotest.failf "%s: %s" name msg
  | None -> ());
  List.iter
    (fun (p, q) ->
      match (Hashtbl.find_opt touched p, Hashtbl.find_opt touched q) with
      | Some cp, Some cq ->
          Hashtbl.iter
            (fun (root, path) () ->
              if Hashtbl.mem cq (root, path) then
                Alcotest.failf
                  "%s: no-alias pair %s / %s both touched %s[%s]" name
                  (Id.to_string p) (Id.to_string q) (Id.to_string root)
                  (String.concat "," (List.map string_of_int path)))
            cp
      | _ -> ())
    no_alias_pairs

let test_alias_sound_on_corpus () =
  List.iter
    (fun (name, m) -> check_memory_sound name m Corpus.default_input)
    (full_corpus ())

let prop_alias_sound_on_generated =
  QCheck.Test.make ~count:30
    ~name:"memory analysis sound vs Interp on generated modules"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let m = Generator.generate (Tbct.Rng.make seed) in
      check_memory_sound
        (Printf.sprintf "seed %d" seed)
        m Generator.default_input;
      true)

(* the memory corpus clamps every index into range, so the in-bounds
   proofs and alias verdicts must survive arbitrary uniform values *)
let prop_alias_sound_on_hostile_uniforms =
  QCheck.Test.make ~count:25
    ~name:"memory corpus sound under arbitrary uniforms"
    QCheck.(pair small_signed_int (float_range (-64.) 64.))
    (fun (mode, scale) ->
      let input =
        Input.make ~width:4 ~height:4
          [
            ("u_zero", Value.VFloat 0.0);
            ("u_one", Value.VFloat 1.0);
            ("u_half", Value.VFloat 0.5);
            ("u_scale", Value.VFloat scale);
            ("u_steps", Value.VInt 4l);
            ("u_mode", Value.VInt (Int32.of_int mode));
            ("u_true", Value.VBool true);
            ("u_false", Value.VBool false);
          ]
      in
      List.iter
        (fun (name, m) ->
          Alcotest.(check bool) (name ^ " well-defined") true
            (Interp.well_defined m input);
          check_memory_sound name m input)
        mem_corpus;
      true)

(* ------------------------------------------------------------------ *)
(* The symbolic memory model                                           *)

(* TV covers the memory corpus completely: no pass is blamed and no step
   abstains — the dynamic indices are folded, not given up on *)
let test_tv_memory_corpus_covered () =
  List.iter
    (fun (name, m) ->
      match Compilers.Optimizer.(run_tv standard) m with
      | Error s -> Alcotest.failf "%s: pipeline crashed: %s" name s
      | Ok report ->
          List.iter
            (fun (p, v) ->
              match v with
              | Compilers.Tv.Equivalent -> ()
              | Compilers.Tv.Mismatch _ ->
                  Alcotest.failf "%s: mismatch in %s" name
                    (Compilers.Optimizer.show_pass_name p)
              | Compilers.Tv.Abstained r ->
                  Alcotest.failf "%s: %s abstained: %s" name
                    (Compilers.Optimizer.show_pass_name p)
                    r)
            report.Compilers.Optimizer.tv_steps)
    mem_corpus

(* and the folds are counted: the counted checker reports the proofs the
   memory analysis licensed *)
let test_mem_proofs_counted () =
  let m = mem_module "mem_rotate" in
  let m' = Compilers.Optimizer.(run standard) m in
  let v, proofs = Compilers.Tv.check_pass_counted m m' in
  (match v with
  | Compilers.Tv.Equivalent -> ()
  | _ -> Alcotest.fail "expected equivalence on mem_rotate");
  Alcotest.(check bool) "proofs counted" true (proofs > 0)

(* an unclamped dynamic index has no finite proven range, so Symval still
   abstains — with the dynamic-index reason, not a wrong verdict.
   [extra] plants a dead pure instruction: same semantics, different
   digest, so the engine cannot short-circuit the TV check. *)
let unclamped_index_module ?(extra = false) () =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  let fc = Builder.frag_coord b in
  let arr_t = Builder.array_ty b ~elem:(Builder.float_ty b) ~len:4 in
  let fb, main, _ =
    Builder.begin_function b ~name:"main" ~ret:void_t ~params:[]
  in
  let l0 = Builder.new_label fb in
  Builder.start_block fb l0;
  if extra then ignore (Builder.iadd fb (Builder.cint b 1) (Builder.cint b 2));
  let a = Builder.hoisted_var fb ~pointee:arr_t in
  List.iteri
    (fun j v ->
      Builder.store fb
        (Builder.access_chain fb a [ Builder.cint b j ])
        (Builder.cfloat b v))
    [ 0.1; 0.2; 0.3; 0.4 ];
  let xy = Builder.load fb fc in
  let x = Builder.extract fb xy [ 0 ] in
  let j = Builder.f_to_s fb x in
  (* j is whatever the fragment coordinate converts to: no clamp, no
     proven range, so the fold is not licensed *)
  let r = Builder.load fb (Builder.access_chain fb a [ j ]) in
  let one = Builder.cfloat b 1.0 in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ r; r; r; one ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  (Builder.finish b ~entry:main, main, l0)

let test_unclamped_index_abstains () =
  let m, _, _ = unclamped_index_module () in
  let ctx = Symval.create () in
  match Symval.summarize ctx m with
  | _ -> Alcotest.fail "expected a dynamic-index abstention"
  | exception Symval.Abstain (`Dynamic_index, _) -> ()

(* the per-reason label list is the engine's counter vocabulary *)
let test_reason_labels_stable () =
  Alcotest.(check (list string)) "labels"
    [ "loop-unbounded"; "budget"; "dynamic-index"; "forced-unroll";
      "unsupported"; "internal" ]
    Symval.reason_labels

(* ------------------------------------------------------------------ *)
(* Memory lint rules                                                   *)

let scaffold () =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  let fb, main, _ =
    Builder.begin_function b ~name:"main" ~ret:void_t ~params:[]
  in
  let l0 = Builder.new_label fb in
  Builder.start_block fb l0;
  (b, fb, main, l0, out)

let finish_color (b : Builder.t) fb main ~out r =
  let one = Builder.cfloat b 1.0 in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ r; r; r; one ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  Builder.finish b ~entry:main

let find_rule rule findings =
  List.find_opt (fun (f : Lint.finding) -> String.equal f.Lint.rule rule)
    findings

let test_lint_out_of_bounds () =
  let b, fb, main, l0, out = scaffold () in
  let arr_t = Builder.array_ty b ~elem:(Builder.float_ty b) ~len:4 in
  let a = Builder.hoisted_var fb ~pointee:arr_t in
  Builder.store fb
    (Builder.access_chain fb a [ Builder.cint b 0 ])
    (Builder.cfloat b 0.5);
  (* constant index 7 into a length-4 array: resolved, provably out *)
  let r = Builder.load fb (Builder.access_chain fb a [ Builder.cint b 7 ]) in
  let m = finish_color b fb main ~out r in
  match find_rule "possible-out-of-bounds" (Lint.check_module m) with
  | None -> Alcotest.fail "possible-out-of-bounds not reported"
  | Some f ->
      Alcotest.(check bool) "is an error" true (f.Lint.severity = Lint.Error);
      (* golden line format: severity[rule] fn/block: message *)
      Alcotest.(check string) "pp line"
        (Printf.sprintf "error[possible-out-of-bounds] %s/%s: %s"
           (Id.to_string main) (Id.to_string l0) f.Lint.message)
        (Lint.to_string f)

let test_lint_uninitialized_load () =
  let b, fb, main, _, out = scaffold () in
  let arr_t = Builder.array_ty b ~elem:(Builder.float_ty b) ~len:2 in
  let a = Builder.hoisted_var fb ~pointee:arr_t in
  let r = Builder.load fb (Builder.access_chain fb a [ Builder.cint b 1 ]) in
  let m = finish_color b fb main ~out r in
  match find_rule "uninitialized-load" (Lint.check_module m) with
  | None -> Alcotest.fail "uninitialized-load not reported"
  | Some f ->
      Alcotest.(check bool) "is a warning" true (f.Lint.severity = Lint.Warning)

let test_lint_dead_store () =
  let b, fb, main, _, out = scaffold () in
  let arr_t = Builder.array_ty b ~elem:(Builder.float_ty b) ~len:2 in
  let a = Builder.hoisted_var fb ~pointee:arr_t in
  (* a[0] is stored but only a[1] is ever loaded *)
  Builder.store fb
    (Builder.access_chain fb a [ Builder.cint b 0 ])
    (Builder.cfloat b 0.25);
  Builder.store fb
    (Builder.access_chain fb a [ Builder.cint b 1 ])
    (Builder.cfloat b 0.75);
  let r = Builder.load fb (Builder.access_chain fb a [ Builder.cint b 1 ]) in
  let m = finish_color b fb main ~out r in
  match find_rule "dead-store" (Lint.check_module m) with
  | None -> Alcotest.fail "dead-store not reported"
  | Some f ->
      Alcotest.(check bool) "is a warning" true (f.Lint.severity = Lint.Warning)

let test_lint_redundant_load () =
  let b, fb, main, _, out = scaffold () in
  let arr_t = Builder.array_ty b ~elem:(Builder.float_ty b) ~len:2 in
  let a = Builder.hoisted_var fb ~pointee:arr_t in
  Builder.store fb
    (Builder.access_chain fb a [ Builder.cint b 0 ])
    (Builder.cfloat b 0.25);
  let r1 = Builder.load fb (Builder.access_chain fb a [ Builder.cint b 0 ]) in
  let r2 = Builder.load fb (Builder.access_chain fb a [ Builder.cint b 0 ]) in
  let r = Builder.fadd fb r1 r2 in
  let m = finish_color b fb main ~out r in
  match find_rule "redundant-load" (Lint.check_module m) with
  | None -> Alcotest.fail "redundant-load not reported"
  | Some f ->
      Alcotest.(check bool) "is a warning" true (f.Lint.severity = Lint.Warning)

(* the whole corpus, memory family included, is clean under all four
   rules (a CI gate repeats this through the CLI) *)
let test_corpus_lint_clean () =
  let mem_rules =
    [ "possible-out-of-bounds"; "uninitialized-load"; "dead-store";
      "redundant-load" ]
  in
  List.iter
    (fun (name, m) ->
      List.iter
        (fun (f : Lint.finding) ->
          if List.mem f.Lint.rule mem_rules then
            Alcotest.failf "%s: %s" name (Lint.to_string f))
        (Lint.check_module m))
    (full_corpus ())

(* ------------------------------------------------------------------ *)
(* DSE cross-check                                                     *)

let test_dse_cross_check_clean () =
  List.iter
    (fun (name, m) ->
      match Compilers.Passes.dse_cross_check m with
      | [] -> ()
      | v :: _ -> Alcotest.failf "%s: %s" name v)
    (full_corpus ())

(* ------------------------------------------------------------------ *)
(* The injected store-forwarding bug                                   *)

let aliased_flags flags =
  { flags with Compilers.Passes.bug_forward_aliased_store = true }

(* with the bug off, store forwarding preserves the memory corpus *)
let test_store_forward_clean () =
  List.iter
    (fun (name, m) ->
      let m' =
        Compilers.Passes.store_forward Compilers.Passes.no_bugs m
      in
      match
        ( Interp.render m Corpus.default_input,
          Interp.render m' Corpus.default_input )
      with
      | Ok a, Ok b ->
          Alcotest.(check bool) (name ^ " image unchanged") true
            (Image.equal a b)
      | _ -> Alcotest.failf "%s: render failed" name)
    (full_corpus ())

(* the bug is a real miscompilation: forwarding a[0] across the
   may-aliasing dynamic store changes the rendered image *)
let test_bug_miscompiles () =
  let m = mem_module "mem_mask" in
  let m' =
    Compilers.Passes.store_forward
      (aliased_flags Compilers.Passes.no_bugs)
      m
  in
  match
    ( Interp.render m Corpus.default_input,
      Interp.render m' Corpus.default_input )
  with
  | Ok a, Ok b ->
      Alcotest.(check bool) "images differ" false (Image.equal a b)
  | _ -> Alcotest.fail "render failed"

(* Table-4-style blame attribution: on every target's flag roster with
   the bug enabled, the memory-aware TV oracle names Store_forward as the
   guilty pass — the render oracle alone could only say "wrong image" *)
let test_bug_blamed_on_all_targets () =
  let m = mem_module "mem_mask" in
  List.iter
    (fun (t : Compilers.Target.t) ->
      match
        Compilers.Optimizer.run_tv
          ~flags:(aliased_flags t.Compilers.Target.opt_flags)
          Compilers.Optimizer.standard m
      with
      | Error s ->
          Alcotest.failf "%s: pipeline crashed: %s" t.Compilers.Target.name s
      | Ok report ->
          Alcotest.(check bool)
            (t.Compilers.Target.name ^ " blames Store_forward")
            true
            (report.Compilers.Optimizer.tv_guilty
            = Some Compilers.Optimizer.Store_forward))
    Compilers.Target.all

(* no target ships the bug by default (the campaign hit lists of the
   earlier experiments must stay byte-identical) *)
let test_bug_latent_by_default () =
  let spec =
    match Compilers.Bug.find_pass_bug "bug_forward_aliased_store" with
    | Some s -> s
    | None -> Alcotest.fail "bug_forward_aliased_store not registered"
  in
  List.iter
    (fun (t : Compilers.Target.t) ->
      Alcotest.(check bool)
        (t.Compilers.Target.name ^ " latent")
        false
        (spec.Compilers.Bug.pb_enabled t.Compilers.Target.opt_flags))
    Compilers.Target.all

(* the registry's metadata mirror stays in sync with the optimizer's
   roster (id, host pass, kind) *)
let test_registry_pass_bugs_in_sync () =
  let from_bug =
    List.map
      (fun (s : Compilers.Bug.pass_bug_spec) ->
        ( s.Compilers.Bug.pb_id,
          Compilers.Optimizer.show_pass_name s.Compilers.Bug.pb_pass,
          Compilers.Bug.pass_bug_kind_to_string s.Compilers.Bug.pb_kind ))
      Compilers.Bug.all_pass_bugs
  in
  Alcotest.(check (list (triple string string string)))
    "registry mirrors the optimizer roster" from_bug
    Spirv_fuzz.Registry.injected_pass_bugs

(* ------------------------------------------------------------------ *)
(* Abstention counters: codec round-trip                               *)

(* every reason label survives the jobs-journal counter codec across a
   close/reopen — the path `tbct serve` uses to persist per-job
   tv-abstain buckets and `store stats --json` uses to report them *)
let test_counter_codec_round_trip () =
  let dir = Filename.temp_file "tbct_mem_test" "" in
  Sys.remove dir;
  let record =
    {
      Tbct_store.Jobs.id = "job-1";
      tool = "tbct";
      seeds = 4;
      targets = [];
      weights = "";
      tv = true;
    }
  in
  let counters =
    List.mapi
      (fun i label -> ("tv-abstain:" ^ label, i + 1))
      Symval.reason_labels
  in
  let t = Tbct_store.Jobs.open_ ~dir () in
  Tbct_store.Jobs.add t record;
  Tbct_store.Jobs.set_counters t ~id:"job-1" counters;
  Tbct_store.Jobs.close t;
  let t = Tbct_store.Jobs.open_ ~dir () in
  let restored = Tbct_store.Jobs.counters t ~id:"job-1" in
  Tbct_store.Jobs.close t;
  Alcotest.(check (list (pair string int)))
    "restored after reopen"
    (List.sort compare counters)
    restored

(* a clamped-index twin of the corpus rotate module; [extra] as above *)
let clamped_index_module ?(extra = false) () =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  let fc = Builder.frag_coord b in
  let arr_t = Builder.array_ty b ~elem:(Builder.float_ty b) ~len:4 in
  let fb, main, _ =
    Builder.begin_function b ~name:"main" ~ret:void_t ~params:[]
  in
  let l0 = Builder.new_label fb in
  Builder.start_block fb l0;
  if extra then ignore (Builder.iadd fb (Builder.cint b 1) (Builder.cint b 2));
  let a = Builder.hoisted_var fb ~pointee:arr_t in
  List.iteri
    (fun j v ->
      Builder.store fb
        (Builder.access_chain fb a [ Builder.cint b j ])
        (Builder.cfloat b v))
    [ 0.1; 0.2; 0.3; 0.4 ];
  let xy = Builder.load fb fc in
  let x = Builder.extract fb xy [ 0 ] in
  let four = Builder.cint b 4 in
  let j =
    Builder.smod fb
      (Builder.iadd fb (Builder.smod fb (Builder.f_to_s fb x) four) four)
      four
  in
  let r = Builder.load fb (Builder.access_chain fb a [ j ]) in
  let one = Builder.cfloat b 1.0 in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ r; r; r; one ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  Builder.finish b ~entry:main

(* a fresh engine bumps the per-reason counter that the scheduler
   attributes to jobs *)
let test_engine_dynamic_index_counter () =
  let e = Harness.Engine.create () in
  let m, _, _ = unclamped_index_module () in
  let m', _, _ = unclamped_index_module ~extra:true () in
  if String.equal (Digest.of_module m) (Digest.of_module m') then
    Alcotest.fail "module pair is digest-identical";
  (match Harness.Engine.tv_check e ~before:m ~after:m' with
  | Compilers.Tv.Abstained _ -> ()
  | _ -> Alcotest.fail "expected a dynamic-index abstention");
  let stats = Harness.Engine.stats e in
  Alcotest.(check (option int)) "counter bumped" (Some 1)
    (List.assoc_opt "tv-abstain:dynamic-index" stats.Harness.Engine.counters)

(* and a proven-in-bounds dynamic index bumps mem-proofs, not an abstain
   bucket *)
let test_engine_mem_proofs_counter () =
  let e = Harness.Engine.create () in
  let m = clamped_index_module () in
  let m' = clamped_index_module ~extra:true () in
  if String.equal (Digest.of_module m) (Digest.of_module m') then
    Alcotest.fail "module pair is digest-identical";
  (match Harness.Engine.tv_check e ~before:m ~after:m' with
  | Compilers.Tv.Equivalent -> ()
  | _ -> Alcotest.fail "expected equivalence");
  let stats = Harness.Engine.stats e in
  Alcotest.(check bool) "mem-proofs counted" true
    (match List.assoc_opt "mem-proofs" stats.Harness.Engine.counters with
    | Some n -> n > 0
    | None -> false);
  Alcotest.(check (option int)) "no dynamic-index abstention" None
    (List.assoc_opt "tv-abstain:dynamic-index" stats.Harness.Engine.counters)

(* ------------------------------------------------------------------ *)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "memory"
    [
      ( "paths",
        [
          Alcotest.test_case "memory corpus fully resolved" `Quick
            test_corpus_fully_resolved;
          Alcotest.test_case "verdict families present" `Quick
            test_verdict_families;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "sound on the corpus" `Quick
            test_alias_sound_on_corpus;
        ]
        @ qcheck
            [
              prop_alias_sound_on_generated;
              prop_alias_sound_on_hostile_uniforms;
            ] );
      ( "symval",
        [
          Alcotest.test_case "memory corpus fully covered" `Quick
            test_tv_memory_corpus_covered;
          Alcotest.test_case "mem proofs counted" `Quick
            test_mem_proofs_counted;
          Alcotest.test_case "unclamped index abstains" `Quick
            test_unclamped_index_abstains;
          Alcotest.test_case "reason labels stable" `Quick
            test_reason_labels_stable;
        ] );
      ( "lint",
        [
          Alcotest.test_case "possible-out-of-bounds" `Quick
            test_lint_out_of_bounds;
          Alcotest.test_case "uninitialized-load" `Quick
            test_lint_uninitialized_load;
          Alcotest.test_case "dead-store" `Quick test_lint_dead_store;
          Alcotest.test_case "redundant-load" `Quick test_lint_redundant_load;
          Alcotest.test_case "corpus clean" `Quick test_corpus_lint_clean;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "dse cross-check clean" `Quick
            test_dse_cross_check_clean;
          Alcotest.test_case "store-forward clean" `Quick
            test_store_forward_clean;
          Alcotest.test_case "bug miscompiles" `Quick test_bug_miscompiles;
          Alcotest.test_case "bug blamed on all targets" `Quick
            test_bug_blamed_on_all_targets;
          Alcotest.test_case "bug latent by default" `Quick
            test_bug_latent_by_default;
          Alcotest.test_case "registry mirror in sync" `Quick
            test_registry_pass_bugs_in_sync;
        ] );
      ( "counters",
        [
          Alcotest.test_case "codec round-trip" `Quick
            test_counter_codec_round_trip;
          Alcotest.test_case "engine dynamic-index counter" `Quick
            test_engine_dynamic_index_counter;
          Alcotest.test_case "engine mem-proofs counter" `Quick
            test_engine_mem_proofs_counter;
        ] );
    ]
