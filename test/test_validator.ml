(* Systematic validator tests: one crafted invalid module per rule, checking
   that the right class of error is reported — plus interpreter semantics
   checks for every operator. *)

open Spirv_ir

(* Build a minimal valid module and then break it with [mutate]. *)
let base () =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let l = Builder.new_label fb in
  Builder.start_block fb l;
  let one = Builder.cfloat b 1.0 in
  let half = Builder.cfloat b 0.5 in
  let v = Builder.fadd fb one half in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ v; one; half; one ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  Builder.finish b ~entry:main

let expect_error ~substring name mutate =
  let m = mutate (base ()) in
  match Validate.check m with
  | Ok () -> Alcotest.failf "%s: expected a validation error" name
  | Error errors ->
      let rendered = String.concat "\n" (List.map Validate.error_to_string errors) in
      let found =
        try
          ignore (Str.search_forward (Str.regexp_string substring) rendered 0);
          true
        with Not_found -> false
      in
      if not found then
        Alcotest.failf "%s: errors do not mention %S:\n%s" name substring rendered

let map_main m f =
  {
    m with
    Module_ir.functions =
      List.map
        (fun (fn : Func.t) ->
          if Id.equal fn.Func.id m.Module_ir.entry then f fn else fn)
        m.Module_ir.functions;
  }

let map_entry_block m f =
  map_main m (fun fn ->
      match fn.Func.blocks with
      | b :: rest -> { fn with Func.blocks = f b :: rest }
      | [] -> fn)

let test_bad_vector_size () =
  expect_error ~substring:"out of range" "vector size 5" (fun m ->
      let float_id = Option.get (Module_ir.find_type_id m Ty.Float) in
      {
        m with
        Module_ir.types =
          m.Module_ir.types
          @ [ { Module_ir.td_id = m.Module_ir.id_bound; td_ty = Ty.Vector (float_id, 5) } ];
        Module_ir.id_bound = m.Module_ir.id_bound + 1;
      })

let test_vector_of_vector () =
  expect_error ~substring:"must be a scalar" "vector of vector" (fun m ->
      let float_id = Option.get (Module_ir.find_type_id m Ty.Float) in
      let vec = Option.get (Module_ir.find_type_id m (Ty.Vector (float_id, 4))) in
      {
        m with
        Module_ir.types =
          m.Module_ir.types
          @ [ { Module_ir.td_id = m.Module_ir.id_bound; td_ty = Ty.Vector (vec, 2) } ];
        Module_ir.id_bound = m.Module_ir.id_bound + 1;
      })

let test_forward_type_reference () =
  expect_error ~substring:"not declared earlier" "forward type reference" (fun m ->
      (* an array referencing a type id declared after it *)
      let a = m.Module_ir.id_bound and b = m.Module_ir.id_bound + 1 in
      {
        m with
        Module_ir.types =
          m.Module_ir.types
          @ [
              { Module_ir.td_id = a; td_ty = Ty.Array (b, 2) };
              { Module_ir.td_id = b; td_ty = Ty.Int };
            ];
        Module_ir.id_bound = b + 1;
      })

let test_composite_constant_arity () =
  expect_error ~substring:"arity" "composite constant arity" (fun m ->
      let float_id = Option.get (Module_ir.find_type_id m Ty.Float) in
      let vec4 = Option.get (Module_ir.find_type_id m (Ty.Vector (float_id, 4))) in
      let one =
        Option.get (Module_ir.find_constant_id m ~ty:float_id ~value:(Constant.Float 1.0))
      in
      {
        m with
        Module_ir.constants =
          m.Module_ir.constants
          @ [
              {
                Module_ir.cd_id = m.Module_ir.id_bound;
                cd_ty = vec4;
                cd_value = Constant.Composite [ one ];
              };
            ];
        Module_ir.id_bound = m.Module_ir.id_bound + 1;
      })

let test_global_non_pointer () =
  expect_error ~substring:"must be a pointer" "global with value type" (fun m ->
      let float_id = Option.get (Module_ir.find_type_id m Ty.Float) in
      {
        m with
        Module_ir.globals =
          m.Module_ir.globals
          @ [ { Module_ir.gd_id = m.Module_ir.id_bound; gd_ty = float_id; gd_name = "bad"; gd_init = None } ];
        Module_ir.id_bound = m.Module_ir.id_bound + 1;
      })

let test_entry_with_params () =
  expect_error ~substring:"no parameters" "entry with parameters" (fun m ->
      map_main m (fun fn ->
          {
            fn with
            Func.params = [ { Func.param_id = m.Module_ir.id_bound + 5; Func.param_ty = 1 } ];
          }))

let test_branch_to_unknown_block () =
  expect_error ~substring:"unknown block" "dangling branch" (fun m ->
      map_entry_block m (fun b -> { b with Block.terminator = Block.Branch 99999 }))

let test_branch_to_entry () =
  expect_error ~substring:"entry block" "branch to entry" (fun m ->
      map_entry_block m (fun b -> { b with Block.terminator = Block.Branch b.Block.label }))

let test_return_value_from_void () =
  expect_error ~substring:"return" "return value from void fn" (fun m ->
      let v =
        (* any defined float id *)
        let f = Module_ir.entry_function m in
        Option.get (List.hd (Func.entry_block f).Block.instrs).Instr.result
      in
      map_entry_block m (fun b -> { b with Block.terminator = Block.ReturnValue v }))

let test_store_missing_value_type () =
  expect_error ~substring:"store value type mismatch" "ill-typed store" (fun m ->
      let f = Module_ir.entry_function m in
      let bad_value =
        (* store a bool-typed... base has no bool; use the vec4 color's
           first scalar constant 1.0 stored into vec4 pointer *)
        Option.get
          (Module_ir.find_constant_id m
             ~ty:(Option.get (Module_ir.find_type_id m Ty.Float))
             ~value:(Constant.Float 1.0))
      in
      let out = (List.hd m.Module_ir.globals).Module_ir.gd_id in
      ignore f;
      map_entry_block m (fun b ->
          {
            b with
            Block.instrs =
              List.map
                (fun (i : Instr.t) ->
                  match i.Instr.op with
                  | Instr.Store (p, _) when Id.equal p out ->
                      { i with Instr.op = Instr.Store (p, bad_value) }
                  | _ -> i)
                b.Block.instrs;
          }))

let test_phi_in_entry_block () =
  expect_error ~substring:"phi in entry block" "phi in entry" (fun m ->
      let float_id = Option.get (Module_ir.find_type_id m Ty.Float) in
      let one =
        Option.get (Module_ir.find_constant_id m ~ty:float_id ~value:(Constant.Float 1.0))
      in
      map_entry_block m (fun b ->
          {
            b with
            Block.instrs =
              Instr.make ~result:m.Module_ir.id_bound ~ty:float_id
                (Instr.Phi [ (one, b.Block.label) ])
              :: b.Block.instrs;
          }))

let test_duplicate_block_labels () =
  expect_error ~substring:"duplicate" "duplicate labels" (fun m ->
      map_main m (fun fn ->
          match fn.Func.blocks with
          | b :: rest ->
              {
                fn with
                Func.blocks =
                  { b with Block.terminator = Block.Branch b.Block.label } :: b :: rest;
              }
          | [] -> fn))

let test_unknown_callee () =
  expect_error ~substring:"unknown function" "dangling call" (fun m ->
      let float_id = Option.get (Module_ir.find_type_id m Ty.Float) in
      map_entry_block m (fun b ->
          {
            b with
            Block.instrs =
              b.Block.instrs
              @ [
                  Instr.make ~result:m.Module_ir.id_bound ~ty:float_id
                    (Instr.FunctionCall (4242, []));
                ];
          }))

let test_block_order_violation () =
  (* build a two-block function and put the dominated block first *)
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let l0 = Builder.new_label fb in
  let l1 = Builder.new_label fb in
  Builder.start_block fb l0;
  Builder.branch fb l1;
  Builder.start_block fb l1;
  let one = Builder.cfloat b 1.0 in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ one; one; one; one ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  Alcotest.(check bool) "in order valid" true (Validate.is_valid m);
  (* swapping puts l1 (dominated) before l0, and also gives the entry block
     a predecessor: both errors *)
  let m_bad =
    {
      m with
      Module_ir.functions =
        List.map
          (fun (fn : Func.t) ->
            { fn with Func.blocks = List.rev fn.Func.blocks })
          m.Module_ir.functions;
    }
  in
  Alcotest.(check bool) "reversed invalid" false (Validate.is_valid m_bad)

(* ------------------------------------------------------------------ *)
(* Operator semantics (every binop/unop through the interpreter) *)

let eval_binop_fn op a bv =
  (* build a module computing op(a, b) and evaluate via run_function *)
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  let arg_ty v = match v with
    | Value.VInt _ -> Builder.int_ty b
    | Value.VFloat _ -> Builder.float_ty b
    | Value.VBool _ -> Builder.bool_ty b
    | Value.VComposite _ -> Builder.vec2f b
  in
  let fb, fn, params =
    Builder.begin_function b ~name:"f"
      ~ret:(let r = Ops.eval_binop op a bv in arg_ty r)
      ~params:[ arg_ty a; arg_ty bv ]
  in
  let pa, pb = match params with [ x; y ] -> (x, y) | _ -> assert false in
  let l = Builder.new_label fb in
  Builder.start_block fb l;
  let r = Builder.binop fb op pa pb in
  Builder.ret_value fb r;
  ignore (Builder.end_function fb);
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let l = Builder.new_label fb in
  Builder.start_block fb l;
  let one = Builder.cfloat b 1.0 in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ one; one; one; one ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  match Interp.run_function m ~fn ~args:[ a; bv ] with
  | Ok (Some v) -> v
  | Ok None -> Alcotest.fail "void result"
  | Error t -> Alcotest.failf "trap: %s" (Interp.trap_to_string t)

let vi i = Value.VInt (Int32.of_int i)
let vf f = Value.VFloat f
let vb x = Value.VBool x

let check_value name expected actual =
  Alcotest.(check bool) name true (Value.equal expected actual)

let test_integer_ops () =
  check_value "add" (vi 7) (eval_binop_fn Instr.IAdd (vi 3) (vi 4));
  check_value "sub" (vi (-1)) (eval_binop_fn Instr.ISub (vi 3) (vi 4));
  check_value "mul" (vi 12) (eval_binop_fn Instr.IMul (vi 3) (vi 4));
  check_value "div" (vi 2) (eval_binop_fn Instr.SDiv (vi 9) (vi 4));
  check_value "div by zero is 0" (vi 0) (eval_binop_fn Instr.SDiv (vi 9) (vi 0));
  check_value "mod" (vi 1) (eval_binop_fn Instr.SMod (vi 9) (vi 4));
  check_value "mod by zero is 0" (vi 0) (eval_binop_fn Instr.SMod (vi 9) (vi 0));
  check_value "neg mod truncates" (vi (-1)) (eval_binop_fn Instr.SMod (vi (-9)) (vi 4));
  check_value "overflow wraps" (vi (-2147483648))
    (eval_binop_fn Instr.IAdd (vi 2147483647) (vi 1))

let test_integer_comparisons () =
  check_value "lt" (vb true) (eval_binop_fn Instr.SLessThan (vi 1) (vi 2));
  check_value "le eq" (vb true) (eval_binop_fn Instr.SLessThanEqual (vi 2) (vi 2));
  check_value "gt" (vb false) (eval_binop_fn Instr.SGreaterThan (vi 1) (vi 2));
  check_value "ge" (vb false) (eval_binop_fn Instr.SGreaterThanEqual (vi 1) (vi 2));
  check_value "eq" (vb false) (eval_binop_fn Instr.IEqual (vi 1) (vi 2));
  check_value "ne" (vb true) (eval_binop_fn Instr.INotEqual (vi 1) (vi 2))

let test_float_ops () =
  check_value "fadd" (vf 3.5) (eval_binop_fn Instr.FAdd (vf 1.25) (vf 2.25));
  check_value "fsub" (vf (-1.0)) (eval_binop_fn Instr.FSub (vf 1.0) (vf 2.0));
  check_value "fmul" (vf 2.5) (eval_binop_fn Instr.FMul (vf 1.25) (vf 2.0));
  check_value "fdiv" (vf 0.625) (eval_binop_fn Instr.FDiv (vf 1.25) (vf 2.0));
  check_value "fdiv by zero is 0" (vf 0.0) (eval_binop_fn Instr.FDiv (vf 1.25) (vf 0.0));
  check_value "flt" (vb true) (eval_binop_fn Instr.FOrdLessThan (vf 1.0) (vf 2.0));
  check_value "fge" (vb false) (eval_binop_fn Instr.FOrdGreaterThanEqual (vf 1.0) (vf 2.0));
  check_value "feq" (vb true) (eval_binop_fn Instr.FOrdEqual (vf 1.0) (vf 1.0))

let test_bool_ops () =
  check_value "and" (vb false) (eval_binop_fn Instr.LogicalAnd (vb true) (vb false));
  check_value "or" (vb true) (eval_binop_fn Instr.LogicalOr (vb true) (vb false))

let test_unops () =
  check_value "snegate" (Value.VInt (-3l)) (Ops.eval_unop Instr.SNegate (vi 3));
  check_value "fnegate" (vf (-1.5)) (Ops.eval_unop Instr.FNegate (vf 1.5));
  check_value "not" (vb false) (Ops.eval_unop Instr.LogicalNot (vb true));
  check_value "s2f" (vf 3.0) (Ops.eval_unop Instr.ConvertSToF (vi 3));
  check_value "f2s truncates" (vi 3) (Ops.eval_unop Instr.ConvertFToS (vf 3.9));
  check_value "f2s negative truncates" (vi (-3)) (Ops.eval_unop Instr.ConvertFToS (vf (-3.9)))

(* ------------------------------------------------------------------ *)
(* Analysis availability *)

let test_availability () =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let l0 = Builder.new_label fb in
  let lt = Builder.new_label fb in
  let le = Builder.new_label fb in
  let lm = Builder.new_label fb in
  Builder.start_block fb l0;
  let one = Builder.cfloat b 1.0 in
  let v0 = Builder.fadd fb one one in
  let c = Builder.flt fb v0 one in
  Builder.branch_cond fb c lt le;
  Builder.start_block fb lt;
  let v1 = Builder.fadd fb v0 one in
  Builder.branch fb lm;
  Builder.start_block fb le;
  Builder.branch fb lm;
  Builder.start_block fb lm;
  let phi = Builder.phi fb ~ty:(Builder.float_ty b) [ (v1, lt); (v0, le) ] in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ phi; one; one; one ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  let f = Module_ir.entry_function m in
  let a = Analysis.make m f in
  (* v0 (entry) is available everywhere *)
  Alcotest.(check bool) "v0 at lm" true (Analysis.available_at_end a ~block:lm v0);
  (* v1 (then-arm) is not available in the merge block *)
  Alcotest.(check bool) "v1 not at lm" false (Analysis.available_at a ~block:lm ~index:1 v1);
  (* v1 is available at the end of its own block *)
  Alcotest.(check bool) "v1 at lt end" true (Analysis.available_at_end a ~block:lt v1);
  (* constants are available everywhere *)
  Alcotest.(check bool) "const everywhere" true (Analysis.available_at a ~block:le ~index:0 one);
  (* candidates of float type at the merge include v0 but not v1 *)
  let float_id = Option.get (Module_ir.find_type_id m Ty.Float) in
  let cands = Analysis.available_ids_of_type a ~block:lm ~index:1 ~ty:float_id in
  Alcotest.(check bool) "v0 candidate" true (List.mem v0 cands);
  Alcotest.(check bool) "v1 not candidate" false (List.mem v1 cands)

(* Two deliberate errors in different sections of the module: the reported
   list must follow source order (types before function bodies) — errors are
   appended to a queue in check order, and this pins that down. *)
let test_error_source_order () =
  let m = base () in
  let float_id = Option.get (Module_ir.find_type_id m Ty.Float) in
  let bad_ty =
    { Module_ir.td_id = m.Module_ir.id_bound; td_ty = Ty.Vector (float_id, 5) }
  in
  let m =
    map_entry_block
      {
        m with
        Module_ir.types = m.Module_ir.types @ [ bad_ty ];
        Module_ir.id_bound = m.Module_ir.id_bound + 1;
      }
      (fun b -> { b with Block.terminator = Block.ReturnValue 9999 })
  in
  match Validate.check m with
  | Ok () -> Alcotest.fail "expected two validation errors"
  | Error errors ->
      let messages = List.map Validate.error_to_string errors in
      let index_of sub =
        let rec go i = function
          | [] -> Alcotest.failf "no error mentioning %S in:\n%s" sub
                    (String.concat "\n" messages)
          | msg :: rest ->
              (try
                 ignore (Str.search_forward (Str.regexp_string sub) msg 0);
                 i
               with Not_found -> go (i + 1) rest)
        in
        go 0 messages
      in
      let type_err = index_of "out of range" in
      let fn_err = index_of "%9999" in
      Alcotest.(check bool)
        (Printf.sprintf "type error (#%d) precedes function error (#%d)"
           type_err fn_err)
        true (type_err < fn_err)

let () =
  Alcotest.run "validator_and_ops"
    [
      ( "validator-negative",
        [
          Alcotest.test_case "vector size out of range" `Quick test_bad_vector_size;
          Alcotest.test_case "vector of vector" `Quick test_vector_of_vector;
          Alcotest.test_case "forward type reference" `Quick test_forward_type_reference;
          Alcotest.test_case "composite constant arity" `Quick test_composite_constant_arity;
          Alcotest.test_case "global with non-pointer type" `Quick test_global_non_pointer;
          Alcotest.test_case "entry point with parameters" `Quick test_entry_with_params;
          Alcotest.test_case "branch to unknown block" `Quick test_branch_to_unknown_block;
          Alcotest.test_case "branch to entry block" `Quick test_branch_to_entry;
          Alcotest.test_case "return value from void function" `Quick
            test_return_value_from_void;
          Alcotest.test_case "ill-typed store" `Quick test_store_missing_value_type;
          Alcotest.test_case "phi in entry block" `Quick test_phi_in_entry_block;
          Alcotest.test_case "duplicate block labels" `Quick test_duplicate_block_labels;
          Alcotest.test_case "call to unknown function" `Quick test_unknown_callee;
          Alcotest.test_case "block order violation" `Quick test_block_order_violation;
          Alcotest.test_case "errors come out in source order" `Quick
            test_error_source_order;
        ] );
      ( "operators",
        [
          Alcotest.test_case "integer arithmetic" `Quick test_integer_ops;
          Alcotest.test_case "integer comparisons" `Quick test_integer_comparisons;
          Alcotest.test_case "float arithmetic" `Quick test_float_ops;
          Alcotest.test_case "boolean operators" `Quick test_bool_ops;
          Alcotest.test_case "unary operators" `Quick test_unops;
        ] );
      ( "analysis",
        [ Alcotest.test_case "availability" `Quick test_availability ] );
    ]
