(* Tests for the flat compiled execution kernel (Spirv_ir.Compile).

   The kernel's contract is golden bit-equality with the reference
   interpreter: same images (Value bit-for-bit, NaNs included), same traps
   with the same messages, same trap ordering and step accounting.  These
   tests drive both engines over the corpus, generated modules, corrupted
   modules (the engine executes post-miscompile modules that need not
   validate), step-limit sweeps and a trap-at-fragment-k regression —
   plus the compiled-program cache in Harness.Engine and the binary run
   codec in Tbct_store. *)

open Spirv_ir

(* ------------------------------------------------------------------ *)
(* Bit-exact comparison (Image.equal has a numeric tolerance; here we
   want exact bits — Value.equal compares floats by Int64.bits_of_float) *)

let pixel_eq a b =
  match (a, b) with
  | Image.Killed, Image.Killed -> true
  | Image.Color u, Image.Color v -> Value.equal u v
  | Image.Killed, Image.Color _ | Image.Color _, Image.Killed -> false

let image_eq (a : Image.t) (b : Image.t) =
  a.Image.width = b.Image.width
  && a.Image.height = b.Image.height
  && Array.for_all2 pixel_eq a.Image.pixels b.Image.pixels

let render_result_eq a b =
  match (a, b) with
  | Ok x, Ok y -> image_eq x y
  | Error (s : Interp.trap), Error t -> s = t
  | Ok _, Error _ | Error _, Ok _ -> false

let pp_render_result fmt = function
  | Ok img -> Format.fprintf fmt "Ok:@,%s" (Image.to_ascii img)
  | Error t -> Format.fprintf fmt "Error (%s)" (Interp.trap_to_string t)

let outcome_eq (a : Interp.outcome) (b : Interp.outcome) =
  match (a, b) with
  | Ok x, Ok y -> pixel_eq x y
  | Error s, Error t -> s = t
  | Ok _, Error _ | Error _, Ok _ -> false

let pp_outcome fmt = function
  | Ok px -> Format.fprintf fmt "Ok (%s)" (Image.show_pixel px)
  | Error t -> Format.fprintf fmt "Error (%s)" (Interp.trap_to_string t)

(* Renders can also end in an escaping exception on corrupt modules (e.g. a
   constant that fails to materialize); the kernel must reproduce those
   exceptions too, so compare under a catch-all. *)
let observe f =
  match f () with
  | r -> Ok r
  | exception e -> Error (Printexc.to_string e)

let check_same_render name m input =
  let ref_r = observe (fun () -> Interp.render m input) in
  let com_r = observe (fun () -> Compile.render_batch (Compile.lower m) input) in
  let same =
    match (ref_r, com_r) with
    | Ok a, Ok b -> render_result_eq a b
    | Error a, Error b -> String.equal a b
    | Ok _, Error _ | Error _, Ok _ -> false
  in
  if not same then
    Alcotest.failf "%s: compiled execution diverges from the interpreter@.ref: %a@.com: %a"
      name
      (Format.pp_print_result ~ok:pp_render_result ~error:Format.pp_print_string)
      ref_r
      (Format.pp_print_result ~ok:pp_render_result ~error:Format.pp_print_string)
      com_r

let all_corpus () =
  Lazy.force Corpus.lowered_references
  @ Lazy.force Corpus.lowered_loop_references
  @ List.map (fun (n, m) -> ("mem_" ^ n, m)) Corpus.memory_references

(* ------------------------------------------------------------------ *)
(* Corpus bit-equality *)

let test_corpus_bit_equality () =
  List.iter
    (fun (name, m) -> check_same_render name m Corpus.default_input)
    (all_corpus ())

let test_corpus_hostile_inputs () =
  let base = Corpus.default_input in
  let inputs =
    [
      ("no-uniforms", Input.make ~width:3 ~height:2 []);
      ("1x1", { base with Input.width = 1; height = 1 });
      ("wide", { base with Input.width = 16; height = 1 });
    ]
  in
  List.iter
    (fun (iname, input) ->
      List.iter
        (fun (name, m) -> check_same_render (name ^ "/" ^ iname) m input)
        (all_corpus ()))
    inputs

let test_corpus_run_fragment () =
  List.iter
    (fun (name, m) ->
      let prog = Compile.lower m in
      List.iter
        (fun (x, y) ->
          let a =
            Interp.run_fragment m Corpus.default_input ~frag_x:x ~frag_y:y
          in
          let b =
            Compile.run_fragment prog Corpus.default_input ~frag_x:x ~frag_y:y
          in
          if not (outcome_eq a b) then
            Alcotest.failf "%s (%d,%d): %a vs %a" name x y pp_outcome a
              pp_outcome b)
        [ (0, 0); (3, 1); (7, 7) ])
    (all_corpus ())

(* ------------------------------------------------------------------ *)
(* Step-limit parity: the tick accounting must match exactly, so a sweep
   of tight limits over a loopy module must trap at the same budgets. *)

let test_step_limit_parity () =
  let mods =
    List.filter
      (fun (n, _) -> n = "loop_sum" || n = "nested_loops" || n = "kitchen_sink")
      (Lazy.force Corpus.lowered_references)
  in
  Alcotest.(check bool) "sweep modules found" true (mods <> []);
  List.iter
    (fun (name, m) ->
      let prog = Compile.lower m in
      for k = 0 to 120 do
        let a = Interp.render ~step_limit:k m Corpus.default_input in
        let b = Compile.render_batch ~step_limit:k prog Corpus.default_input in
        if not (render_result_eq a b) then
          Alcotest.failf "%s at step_limit %d: %a vs %a" name k
            pp_render_result a pp_render_result b
      done)
    mods

(* ------------------------------------------------------------------ *)
(* Generated and corrupted modules.  The engine executes modules after
   optimizer passes and miscompile rewrites, which need not validate, so
   the kernel must agree with the interpreter on arbitrarily broken
   modules: unbound ids, type confusion, bad branch targets, bad entries. *)

let corrupt rng (m : Module_ir.t) : Module_ir.t =
  let pick_id () = 1 + Tbct.Rng.int rng (m.Module_ir.id_bound + 4) in
  match Tbct.Rng.int rng 4 with
  | 0 ->
      (* rewire every use of one id to another (possibly unbound) id *)
      let old_id = pick_id () and new_id = pick_id () in
      {
        m with
        Module_ir.functions =
          List.map (Func.substitute_uses ~old_id ~new_id) m.Module_ir.functions;
      }
  | 1 ->
      (* drop a constant out from under its uses *)
      let cs = m.Module_ir.constants in
      if cs = [] then m
      else
        let k = Tbct.Rng.int rng (List.length cs) in
        { m with Module_ir.constants = List.filteri (fun i _ -> i <> k) cs }
  | 2 ->
      (* retarget the entry point at a random id *)
      { m with Module_ir.entry = pick_id () }
  | _ ->
      (* drop a global out from under its uses *)
      let gs = m.Module_ir.globals in
      if gs = [] then m
      else
        let k = Tbct.Rng.int rng (List.length gs) in
        { m with Module_ir.globals = List.filteri (fun i _ -> i <> k) gs }

let test_generated_bit_equality =
  QCheck.Test.make ~count:150 ~name:"generated modules: compiled == interp"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let m = Generator.generate (Tbct.Rng.make seed) in
      check_same_render (Printf.sprintf "gen %d" seed) m Generator.default_input;
      true)

let test_corrupted_bit_equality =
  QCheck.Test.make ~count:300 ~name:"corrupted modules: compiled == interp"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Tbct.Rng.make (seed * 2 + 1) in
      let m = Generator.generate rng in
      let rounds = 1 + Tbct.Rng.int rng 3 in
      let m = ref m in
      for _ = 1 to rounds do
        m := corrupt rng !m
      done;
      check_same_render
        (Printf.sprintf "corrupt %d" seed)
        !m Generator.default_input;
      true)

(* ------------------------------------------------------------------ *)
(* Trap-at-fragment-k regression: a module that traps only on fragments
   with x >= 3.  Both engines must abort the render with the identical
   trap (no partial image can escape on the Error path), and agree
   fragment-by-fragment on exactly which fragments trap. *)

let frag_trap_module () =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let frag = Builder.frag_coord b in
  let out = Builder.output_color b in
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let l = Builder.new_label fb in
  Builder.start_block fb l;
  let fc = Builder.load fb frag in
  let x = Builder.extract fb fc [ 0 ] in
  let limit = Builder.cfloat b 2.9 in
  let cond = Builder.flt fb x limit in
  let good = Builder.cfloat b 1.0 in
  let bad = Builder.cfloat b 2.0 in
  let sel = Builder.select fb cond good bad in
  let color =
    Builder.composite fb ~ty:(Builder.vec4f b) [ sel; sel; sel; sel ]
  in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  (* Corrupt the else-arm of the select: its constant becomes an unbound
     id, so only fragments with x >= 3 (cond false) evaluate it and trap. *)
  let unbound = m.Module_ir.id_bound + 1 in
  ( {
      m with
      Module_ir.functions =
        List.map
          (Func.substitute_uses ~old_id:bad ~new_id:unbound)
          m.Module_ir.functions;
    },
    unbound )

let test_trap_at_fragment_k () =
  let m, unbound = frag_trap_module () in
  let input = Input.make ~width:8 ~height:4 [] in
  let expected_trap =
    Interp.Invalid_module (Printf.sprintf "unbound id %s" (Id.to_string unbound))
  in
  let prog = Compile.lower m in
  (* whole-grid render: both must abort with the same trap — an Ok here
     would mean a partially-written image escaped the Error path *)
  let ref_r = Interp.render m input in
  let com_r = Compile.render_batch prog input in
  (match ref_r with
  | Error t -> Alcotest.(check bool) "interp trap" true (t = expected_trap)
  | Ok _ -> Alcotest.fail "interpreter leaked a partial image on a trapping render");
  (match com_r with
  | Error t -> Alcotest.(check bool) "compiled trap" true (t = expected_trap)
  | Ok _ -> Alcotest.fail "compiled kernel leaked a partial image on a trapping render");
  (* fragment-by-fragment: traps exactly on x >= 3, identically on both *)
  for y = 0 to 3 do
    for x = 0 to 7 do
      let a = Interp.run_fragment m input ~frag_x:x ~frag_y:y in
      let b = Compile.run_fragment prog input ~frag_x:x ~frag_y:y in
      if not (outcome_eq a b) then
        Alcotest.failf "fragment (%d,%d): %a vs %a" x y pp_outcome a pp_outcome b;
      match a with
      | Ok _ when x < 3 -> ()
      | Error t when x >= 3 ->
          Alcotest.(check bool)
            (Printf.sprintf "trap at (%d,%d)" x y)
            true (t = expected_trap)
      | _ -> Alcotest.failf "fragment (%d,%d): wrong trap boundary" x y
    done
  done

(* The first Error a render reports must belong to the first trapping
   fragment in y-major order, for both engines: tighten the step budget so
   different fragments exhaust it at different times. *)
let test_trap_order_is_y_major () =
  let name, m =
    List.find (fun (n, _) -> n = "loop_sum") (Lazy.force Corpus.lowered_references)
  in
  ignore name;
  let prog = Compile.lower m in
  for k = 0 to 200 do
    let a = Interp.render ~step_limit:k m Corpus.default_input in
    let b = Compile.render_batch ~step_limit:k prog Corpus.default_input in
    if not (render_result_eq a b) then
      Alcotest.failf "loop_sum budget %d: %a vs %a" k pp_render_result a
        pp_render_result b
  done

(* ------------------------------------------------------------------ *)
(* Harness.Engine: the per-digest compiled-program cache *)

let run_eq (a : Compilers.Backend.run_result) (b : Compilers.Backend.run_result) =
  match (a, b) with
  | Compilers.Backend.Compiled_ok, Compilers.Backend.Compiled_ok -> true
  | Compilers.Backend.Crashed s, Compilers.Backend.Crashed t -> String.equal s t
  | Compilers.Backend.Rendered x, Compilers.Backend.Rendered y -> image_eq x y
  | _, _ -> false

let test_engine_program_cache () =
  let m = snd (List.hd (Lazy.force Corpus.lowered_references)) in
  let t = Compilers.Target.swiftshader in
  let in1 = Corpus.default_input in
  let in2 = { in1 with Input.width = in1.Input.width + 1 } in
  let engine = Harness.Engine.create () in
  let r1 = Harness.Engine.run engine t m in1 in
  let s1 = Harness.Engine.stats engine in
  Alcotest.(check int) "first render lowers the module" 1
    s1.Harness.Engine.compiles;
  Alcotest.(check int) "no program-cache hit yet" 0
    s1.Harness.Engine.compile_hits;
  (* a different input misses the run memo but reuses the lowered program *)
  ignore (Harness.Engine.run engine t m in2);
  let s2 = Harness.Engine.stats engine in
  Alcotest.(check int) "second input reuses the program" 1
    s2.Harness.Engine.compiles;
  Alcotest.(check int) "one program-cache hit" 1
    s2.Harness.Engine.compile_hits;
  (* the reference-interpreter engine never lowers and agrees bit-exactly *)
  let ref_engine = Harness.Engine.create ~compiled:false () in
  let r1' = Harness.Engine.run ref_engine t m in1 in
  Alcotest.(check bool) "compiled engine == reference engine" true
    (run_eq r1 r1');
  let sr = Harness.Engine.stats ref_engine in
  Alcotest.(check int) "reference engine never lowers" 0
    sr.Harness.Engine.compiles;
  (* reset clears the program cache and its counters *)
  Harness.Engine.reset engine;
  let s3 = Harness.Engine.stats engine in
  Alcotest.(check int) "reset zeroes compiles" 0 s3.Harness.Engine.compiles;
  Alcotest.(check int) "reset zeroes compile_hits" 0
    s3.Harness.Engine.compile_hits

let test_engine_program_eviction () =
  let refs = Lazy.force Corpus.lowered_references in
  let m1 = snd (List.nth refs 0) and m2 = snd (List.nth refs 1) in
  let t = Compilers.Target.swiftshader in
  let in1 = Corpus.default_input in
  let in2 = { in1 with Input.width = in1.Input.width + 1 } in
  let engine = Harness.Engine.create ~memo_capacity:1 () in
  ignore (Harness.Engine.run engine t m1 in1);
  ignore (Harness.Engine.run engine t m2 in1) (* evicts m1's program *);
  ignore (Harness.Engine.run engine t m1 in2) (* must re-lower *);
  let s = Harness.Engine.stats engine in
  Alcotest.(check int) "capacity 1 re-lowers the evicted module" 3
    s.Harness.Engine.compiles;
  Alcotest.(check int) "no hit survives eviction" 0
    s.Harness.Engine.compile_hits;
  Alcotest.(check bool) "evictions are counted" true
    (s.Harness.Engine.memo_evictions > 0)

(* ------------------------------------------------------------------ *)
(* Run codec: binary format, hostile floats, legacy-store read-back *)

let hostile_floats =
  [
    0.; -0.; 1.5; -1.; 1e-310 (* denormal *); -1e300; infinity; neg_infinity;
    nan;
    Int64.float_of_bits 0x7ff8000000000001L (* quiet NaN, payload bit 0 *);
    Int64.float_of_bits 0x7ff0000000000001L (* signalling NaN *);
    Int64.float_of_bits 0xfff7deadbeef0001L (* negative NaN, wide payload *);
    Int64.float_of_bits 1L (* smallest denormal *);
  ]

let hostile_image () =
  let w = List.length hostile_floats in
  let img = Image.create ~width:w ~height:2 in
  List.iteri
    (fun i f ->
      img.Image.pixels.(i) <- Image.Color (Value.VFloat f);
      img.Image.pixels.(w + i) <-
        (if i mod 5 = 4 then Image.Killed
         else
           Image.Color
             (Value.VComposite
                [|
                  Value.VFloat f;
                  Value.VInt (Int32.of_int i);
                  Value.VBool (i mod 2 = 0);
                |])))
    hostile_floats;
  img

let hostile_runs () =
  [
    Compilers.Backend.Compiled_ok;
    Compilers.Backend.Crashed "sig with\nnewline\tand \x00 byte";
    Compilers.Backend.Rendered (hostile_image ());
  ]

let test_codec_hostile_floats () =
  let check what dec enc r =
    match dec (enc r) with
    | Some r' when run_eq r r' -> ()
    | Some _ -> Alcotest.failf "%s: decoded to a different run" what
    | None -> Alcotest.failf "%s: failed to decode" what
  in
  List.iter
    (fun r ->
      check "binary codec" Tbct_store.Run_codec.decode_run
        Tbct_store.Run_codec.encode_run r;
      check "text codec" Tbct_store.Run_codec.decode_run_text
        Tbct_store.Run_codec.encode_run_text r;
      (* a legacy store object (text) must still decode through the
         version-sniffing entry point *)
      check "legacy read-back" Tbct_store.Run_codec.decode_run
        Tbct_store.Run_codec.encode_run_text r)
    (hostile_runs ())

let test_value_codec_hostile_floats () =
  List.iter
    (fun f ->
      let v = Value.VFloat f in
      match
        Tbct_store.Run_codec.value_of_string
          (Tbct_store.Run_codec.value_to_string v)
      with
      | Some v' when Value.equal v v' -> ()
      | _ ->
          Alcotest.failf "value codec lost bits of %h (%Lx)" f
            (Int64.bits_of_float f))
    hostile_floats

let hostile_value_gen =
  let open QCheck.Gen in
  let hostile_float =
    oneof [ oneofl hostile_floats; float ]
  in
  let base =
    oneof
      [
        map (fun b -> Value.VBool b) bool;
        map (fun i -> Value.VInt (Int32.of_int i)) int;
        map (fun f -> Value.VFloat f) hostile_float;
      ]
  in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then base
          else
            frequency
              [
                (3, base);
                ( 1,
                  map
                    (fun vs -> Value.VComposite (Array.of_list vs))
                    (list_size (int_range 0 4) (self (n / 2))) );
              ])
        (min n 8))

let hostile_run_gen =
  let open QCheck.Gen in
  let image =
    int_range 1 5 >>= fun width ->
    int_range 1 5 >>= fun height ->
    list_repeat (width * height)
      (oneof
         [
           return Image.Killed;
           map (fun v -> Image.Color v) hostile_value_gen;
         ])
    >|= fun pixels ->
    let img = Image.create ~width ~height in
    List.iteri (fun i p -> img.Image.pixels.(i) <- p) pixels;
    img
  in
  oneof
    [
      return Compilers.Backend.Compiled_ok;
      map (fun s -> Compilers.Backend.Crashed s) (string_size (int_range 0 40));
      map (fun img -> Compilers.Backend.Rendered img) image;
    ]

let test_codec_hostile_qcheck =
  QCheck.Test.make ~count:300
    ~name:"hostile-float run results round-trip in both codecs"
    (QCheck.make hostile_run_gen)
    (fun r ->
      let ok dec enc =
        match dec (enc r) with Some r' -> run_eq r r' | None -> false
      in
      ok Tbct_store.Run_codec.decode_run Tbct_store.Run_codec.encode_run
      && ok Tbct_store.Run_codec.decode_run_text
           Tbct_store.Run_codec.encode_run_text
      && ok Tbct_store.Run_codec.decode_run Tbct_store.Run_codec.encode_run_text)

let test_binary_codec_rejects_truncation () =
  List.iter
    (fun r ->
      let enc = Tbct_store.Run_codec.encode_run r in
      Alcotest.(check char) "binary version byte" '\001' enc.[0];
      (* every strict prefix (past the version byte) is corrupt, never a
         misdecode *)
      for i = 1 to String.length enc - 1 do
        if Tbct_store.Run_codec.decode_run (String.sub enc 0 i) <> None then
          Alcotest.failf "truncation at byte %d still decoded" i
      done)
    (hostile_runs ())

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "compile"
    [
      ( "bit-equality",
        [
          Alcotest.test_case "corpus default input" `Quick
            test_corpus_bit_equality;
          Alcotest.test_case "corpus hostile inputs" `Quick
            test_corpus_hostile_inputs;
          Alcotest.test_case "corpus run_fragment" `Quick
            test_corpus_run_fragment;
          Alcotest.test_case "step-limit parity" `Quick test_step_limit_parity;
          QCheck_alcotest.to_alcotest test_generated_bit_equality;
          QCheck_alcotest.to_alcotest test_corrupted_bit_equality;
        ] );
      ( "trap-ordering",
        [
          Alcotest.test_case "trap at fragment k" `Quick test_trap_at_fragment_k;
          Alcotest.test_case "trap order y-major" `Quick
            test_trap_order_is_y_major;
        ] );
      ( "engine-cache",
        [
          Alcotest.test_case "program cache hits" `Quick
            test_engine_program_cache;
          Alcotest.test_case "program cache eviction" `Quick
            test_engine_program_eviction;
        ] );
      ( "run-codec",
        [
          Alcotest.test_case "hostile floats round-trip" `Quick
            test_codec_hostile_floats;
          Alcotest.test_case "value codec hostile floats" `Quick
            test_value_codec_hostile_floats;
          Alcotest.test_case "binary truncation rejected" `Quick
            test_binary_codec_rejects_truncation;
          QCheck_alcotest.to_alcotest test_codec_hostile_qcheck;
        ] );
    ]
