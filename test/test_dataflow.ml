(* Tests for the shared dataflow engine (Spirv_ir.Dataflow), its analyses
   (reaching definitions, liveness, availability, constant propagation) and
   the lint suite built on them. *)

open Spirv_ir

let mem = Id.Set.mem

let main_fn (m : Module_ir.t) : Func.t =
  List.find
    (fun (f : Func.t) -> Id.equal f.Func.id m.Module_ir.entry)
    m.Module_ir.functions

let map_main m f =
  {
    m with
    Module_ir.functions =
      List.map
        (fun (fn : Func.t) ->
          if Id.equal fn.Func.id m.Module_ir.entry then f fn else fn)
        m.Module_ir.functions;
  }

(* ------------------------------------------------------------------ *)
(* Crafted CFGs                                                        *)

(* entry l0 (defines v0) branches to lt (vt) / le (ve), joining in lm with
   a phi p — the classic diamond. *)
let diamond () =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  let fb, main, _ =
    Builder.begin_function b ~name:"main" ~ret:void_t ~params:[]
  in
  let l0 = Builder.new_label fb in
  let lt = Builder.new_label fb in
  let le = Builder.new_label fb in
  let lm = Builder.new_label fb in
  Builder.start_block fb l0;
  let c = Builder.cbool b true in
  let one = Builder.cfloat b 1.0 in
  let half = Builder.cfloat b 0.5 in
  let v0 = Builder.fadd fb one half in
  Builder.branch_cond fb c lt le;
  Builder.start_block fb lt;
  let vt = Builder.fadd fb v0 one in
  Builder.branch fb lm;
  Builder.start_block fb le;
  let ve = Builder.fmul fb v0 half in
  Builder.branch fb lm;
  Builder.start_block fb lm;
  let p = Builder.phi fb ~ty:(Builder.float_ty b) [ (vt, lt); (ve, le) ] in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ p; p; p; p ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  (m, (l0, lt, le, lm), (v0, vt, ve, p))

(* l0 -> lh (phi i, i < 10?) -> lb (i2 = i + 1, back-edge) | lx (return) *)
let loop () =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  let fb, main, _ =
    Builder.begin_function b ~name:"main" ~ret:void_t ~params:[]
  in
  let l0 = Builder.new_label fb in
  let lh = Builder.new_label fb in
  let lb = Builder.new_label fb in
  let lx = Builder.new_label fb in
  let zero = Builder.cint b 0 in
  let one = Builder.cint b 1 in
  let ten = Builder.cint b 10 in
  let onef = Builder.cfloat b 1.0 in
  Builder.start_block fb l0;
  Builder.branch fb lh;
  Builder.start_block fb lh;
  let i = Builder.phi fb ~ty:(Builder.int_ty b) [ (zero, l0); (zero, lb) ] in
  let cond = Builder.slt fb i ten in
  Builder.branch_cond fb cond lb lx;
  Builder.start_block fb lb;
  let i2 = Builder.iadd fb i one in
  Builder.branch fb lh;
  Builder.patch_phi fb ~phi:i ~pred:lb ~value:i2;
  Builder.start_block fb lx;
  let color =
    Builder.composite fb ~ty:(Builder.vec4f b) [ onef; onef; onef; onef ]
  in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  (m, (l0, lh, lb, lx), (i, i2, zero))

(* ------------------------------------------------------------------ *)
(* Reaching definitions                                                *)

let test_reaching_defs () =
  let m, (l0, lt, le, lm), (v0, vt, ve, p) = diamond () in
  let rd = Dataflow.Reaching_defs.compute (main_fn m) in
  let at_entry = Dataflow.Reaching_defs.at_entry rd in
  let at_exit = Dataflow.Reaching_defs.at_exit rd in
  Alcotest.(check bool) "nothing reaches entry" true (Id.Set.is_empty (at_entry l0));
  Alcotest.(check bool) "v0 reaches then" true (mem v0 (at_entry lt));
  Alcotest.(check bool) "v0 reaches else" true (mem v0 (at_entry le));
  Alcotest.(check bool) "vt not in else" false (mem vt (at_entry le));
  Alcotest.(check bool) "vt may-reach merge" true (mem vt (at_entry lm));
  Alcotest.(check bool) "ve may-reach merge" true (mem ve (at_entry lm));
  Alcotest.(check bool) "phi def at merge exit" true (mem p (at_exit lm));
  (* around a loop, the body def reaches the header entry via the back-edge *)
  let m, (_, lh, lb, _), (i, i2, _) = loop () in
  let rd = Dataflow.Reaching_defs.compute (main_fn m) in
  Alcotest.(check bool) "i2 reaches header via back-edge" true
    (mem i2 (Dataflow.Reaching_defs.at_entry rd lh));
  Alcotest.(check bool) "phi def reaches body" true
    (mem i (Dataflow.Reaching_defs.at_entry rd lb))

(* ------------------------------------------------------------------ *)
(* Liveness                                                            *)

let test_liveness () =
  let m, (l0, lh, lb, lx), (i, i2, zero) = loop () in
  let lv = Dataflow.Liveness.compute (main_fn m) in
  let live_in = Dataflow.Liveness.live_in lv in
  let live_out = Dataflow.Liveness.live_out lv in
  (* the phi's value operands are uses at the end of the matching
     predecessor, not in the phi's own block *)
  Alcotest.(check bool) "i2 live out of latch (phi use)" true (mem i2 (live_out lb));
  Alcotest.(check bool) "zero live out of entry (phi use)" true (mem zero (live_out l0));
  Alcotest.(check bool) "phi result not live into its own block" false
    (mem i (live_in lh));
  Alcotest.(check bool) "i live into body" true (mem i (live_in lb));
  Alcotest.(check bool) "i live across header exit" true (mem i (live_out lh));
  Alcotest.(check bool) "i2 not live at entry" false (mem i2 (live_in l0));
  Alcotest.(check bool) "loop counter dead after exit" false (mem i (live_in lx))

(* ------------------------------------------------------------------ *)
(* Availability                                                        *)

let test_availability () =
  let m, (_, lh, lb, lx), (i, i2, zero) = loop () in
  let av = Dataflow.Availability.make m (main_fn m) in
  let at ~block ~index id = Dataflow.Availability.available_at av ~block ~index id in
  Alcotest.(check bool) "phi def available in dominated body" true
    (at ~block:lb ~index:0 i);
  Alcotest.(check bool) "body def not available in header" false
    (at ~block:lh ~index:1 i2);
  Alcotest.(check bool) "body def available at body end" true
    (Dataflow.Availability.available_at_end av ~block:lb i2);
  Alcotest.(check bool) "constants always available" true
    (at ~block:lh ~index:0 zero);
  Alcotest.(check bool) "module-level id recognized" true
    (Dataflow.Availability.is_module_level av zero);
  (match Dataflow.Availability.def_site av i2 with
  | Some (blk, _) -> Alcotest.(check bool) "i2 defined in body" true (Id.equal blk lb)
  | None -> Alcotest.fail "i2 has no def site");
  (* the intersection-join (must-defined) formulation *)
  let must = Dataflow.Availability.must_defined_at_entry av in
  Alcotest.(check bool) "i must-defined at exit" true (mem i (must ~block:lx));
  Alcotest.(check bool) "i2 not must-defined at header" false
    (mem i2 (must ~block:lh))

(* Uses inside unreachable blocks only need the id defined somewhere — the
   validator's relaxation. *)
let test_unreachable_relaxation () =
  let m, (_, lt, _, _), (_, vt, _, _) = diamond () in
  let dead_label = m.Module_ir.id_bound in
  let dead =
    { Block.label = dead_label; instrs = []; terminator = Block.Return }
  in
  let m =
    map_main
      { m with Module_ir.id_bound = m.Module_ir.id_bound + 1 }
      (fun fn -> { fn with Func.blocks = fn.Func.blocks @ [ dead ] })
  in
  let av = Dataflow.Availability.make m (main_fn m) in
  Alcotest.(check bool) "defined-somewhere id usable in dead block" true
    (Dataflow.Availability.available_at av ~block:dead_label ~index:0 vt);
  Alcotest.(check bool) "undefined id still rejected in dead block" false
    (Dataflow.Availability.available_at av ~block:dead_label ~index:0 99999);
  Alcotest.(check bool) "normal dominance untouched: vt defined in lt" true
    (Dataflow.Availability.available_at_end av ~block:lt vt)

(* An entry block that loops to itself is invalid per the validator, but
   every analysis must still terminate on it. *)
let test_entry_self_loop () =
  let m, _, _ = diamond () in
  let fn = main_fn m in
  let fn_ty = fn.Func.fn_ty in
  let lbl = m.Module_ir.id_bound in
  let res = m.Module_ir.id_bound + 1 in
  let float_id = Option.get (Module_ir.find_type_id m Ty.Float) in
  let cfloat_one =
    List.find_map
      (fun (c : Module_ir.const_decl) ->
        match c.Module_ir.cd_value with
        | Constant.Float f when f = 1.0 -> Some c.Module_ir.cd_id
        | _ -> None)
      m.Module_ir.constants
    |> Option.get
  in
  let blk =
    {
      Block.label = lbl;
      instrs =
        [
          {
            Instr.result = Some res;
            ty = Some float_id;
            op = Instr.Binop (Instr.FAdd, cfloat_one, cfloat_one);
          };
        ];
      terminator = Block.Branch lbl;
    }
  in
  let selfloop =
    {
      Func.id = m.Module_ir.id_bound + 2;
      name = "selfloop";
      fn_ty;
      control = Func.CNone;
      params = [];
      blocks = [ blk ];
    }
  in
  let m =
    {
      m with
      Module_ir.functions = m.Module_ir.functions @ [ selfloop ];
      Module_ir.id_bound = m.Module_ir.id_bound + 3;
    }
  in
  (* all of these must reach a fixpoint rather than spin *)
  let rd = Dataflow.Reaching_defs.compute selfloop in
  Alcotest.(check bool) "self-loop def flows around the back-edge" true
    (mem res (Dataflow.Reaching_defs.at_entry rd lbl));
  let lv = Dataflow.Liveness.compute selfloop in
  Alcotest.(check bool) "nothing live out of a returnless loop" false
    (mem res (Dataflow.Liveness.live_out lv lbl));
  let av = Dataflow.Availability.make m selfloop in
  Alcotest.(check bool) "own def not available at block entry" false
    (Dataflow.Availability.available_at av ~block:lbl ~index:0 res);
  ignore (Dataflow.Availability.must_defined_at_entry av ~block:lbl);
  ignore (Dataflow.Constprop.compute m selfloop)

(* ------------------------------------------------------------------ *)
(* Constant propagation                                                *)

let test_constprop () =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  let float_t = Builder.float_ty b in
  let u = Builder.uniform b ~pointee:float_t ~name:"u" in
  let fb, main, _ =
    Builder.begin_function b ~name:"main" ~ret:void_t ~params:[]
  in
  let l0 = Builder.new_label fb in
  let lt = Builder.new_label fb in
  let le = Builder.new_label fb in
  let lm = Builder.new_label fb in
  let c = Builder.cbool b true in
  let one = Builder.cfloat b 1.0 in
  let half = Builder.cfloat b 0.5 in
  let two = Builder.cint b 2 in
  let three = Builder.cint b 3 in
  Builder.start_block fb l0;
  let folded = Builder.iadd fb two three in
  let uval = Builder.load fb u in
  Builder.branch_cond fb c lt le;
  Builder.start_block fb lt;
  Builder.branch fb lm;
  Builder.start_block fb le;
  Builder.branch fb lm;
  Builder.start_block fb lm;
  let p_same = Builder.phi fb ~ty:float_t [ (one, lt); (one, le) ] in
  let p_diff = Builder.phi fb ~ty:float_t [ (one, lt); (half, le) ] in
  let through = Builder.fadd fb p_same p_diff in
  let color =
    Builder.composite fb ~ty:(Builder.vec4f b) [ through; uval; p_same; p_diff ]
  in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  let fn = main_fn m in
  let cp = Dataflow.Constprop.compute m fn in
  let check_val ?(cp = cp) name id expected =
    match (Dataflow.Constprop.value_of cp id, expected) with
    | Some v, Some e ->
        Alcotest.(check bool) name true (Value.equal v e)
    | None, None -> ()
    | got, _ ->
        Alcotest.failf "%s: got %s" name
          (match got with Some v -> Value.show v | None -> "none")
  in
  check_val "binop folds" folded (Some (Value.VInt 5l));
  check_val "agreeing phi propagates" p_same (Some (Value.VFloat 1.0));
  check_val "disagreeing phi does not" p_diff None;
  check_val "uniform unknown without input" uval None;
  let input = Input.make [ ("u", Value.VFloat 2.5) ] in
  let cp' = Dataflow.Constprop.compute ~input m fn in
  check_val ~cp:cp' "uniform load picks up the input" uval
    (Some (Value.VFloat 2.5));
  Alcotest.(check bool) "known lists the fold" true
    (List.exists (fun (id, _) -> Id.equal id folded) (Dataflow.Constprop.known cp'))

(* ------------------------------------------------------------------ *)
(* Write-only locals                                                   *)

let write_only_module () =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  let float_t = Builder.float_ty b in
  let fb, main, _ =
    Builder.begin_function b ~name:"main" ~ret:void_t ~params:[]
  in
  let l = Builder.new_label fb in
  Builder.start_block fb l;
  let one = Builder.cfloat b 1.0 in
  let w = Builder.local_var fb ~pointee:float_t in
  let r = Builder.local_var fb ~pointee:float_t in
  Builder.store fb w one;
  Builder.store fb r one;
  let v = Builder.load fb r in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ v; v; v; v ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  (Builder.finish b ~entry:main, w, r)

let test_write_only_locals () =
  let m, w, r = write_only_module () in
  let wo = Dataflow.write_only_locals (main_fn m) in
  Alcotest.(check bool) "stored-only local detected" true (mem w wo);
  Alcotest.(check bool) "loaded local kept" false (mem r wo)

(* ------------------------------------------------------------------ *)
(* Lint rules, one golden module per rule                              *)

let has_rule rule findings =
  List.exists (fun (f : Lint.finding) -> String.equal f.Lint.rule rule) findings

let severity_of rule findings =
  (List.find (fun (f : Lint.finding) -> String.equal f.Lint.rule rule) findings)
    .Lint.severity

let test_lint_clean_baseline () =
  let m, _, _ = diamond () in
  Alcotest.(check (list string)) "diamond lints clean" []
    (List.map Lint.to_string (Lint.check_module m))

let test_lint_dead_block () =
  let m, _, _ = diamond () in
  let dead =
    { Block.label = m.Module_ir.id_bound; instrs = []; terminator = Block.Return }
  in
  let m =
    map_main
      { m with Module_ir.id_bound = m.Module_ir.id_bound + 1 }
      (fun fn -> { fn with Func.blocks = fn.Func.blocks @ [ dead ] })
  in
  let fs = Lint.check_module m in
  Alcotest.(check bool) "dead-block reported" true (has_rule "dead-block" fs);
  Alcotest.(check bool) "as a warning" true
    (Lint.equal_severity (severity_of "dead-block" fs) Lint.Warning);
  Alcotest.(check int) "no errors" 0 (Lint.error_count fs)

let test_lint_dead_result () =
  let m, (l0, _, _, _), (_, _, _, _) = diamond () in
  let float_id = Option.get (Module_ir.find_type_id m Ty.Float) in
  let unused = m.Module_ir.id_bound in
  let m =
    map_main
      { m with Module_ir.id_bound = m.Module_ir.id_bound + 1 }
      (fun fn ->
        Func.replace_block fn
          (let b = Func.block_exn fn l0 in
           {
             b with
             Block.instrs =
               b.Block.instrs
               @ [
                   (match (List.rev b.Block.instrs : Instr.t list) with
                   | last :: _ ->
                       {
                         Instr.result = Some unused;
                         ty = Some float_id;
                         op =
                           Instr.Binop
                             ( Instr.FAdd,
                               Option.get last.Instr.result,
                               Option.get last.Instr.result );
                       }
                   | [] -> assert false);
                 ];
           }))
  in
  let fs = Lint.check_module m in
  Alcotest.(check bool) "dead-result reported" true (has_rule "dead-result" fs);
  Alcotest.(check bool) "as a warning" true
    (Lint.equal_severity (severity_of "dead-result" fs) Lint.Warning)

let test_lint_phi_arg_mismatch () =
  let m, (_, lt, _, lm), (_, vt, _, p) = diamond () in
  let m =
    map_main m (fun fn ->
        Func.replace_block fn
          (let b = Func.block_exn fn lm in
           {
             b with
             Block.instrs =
               List.map
                 (fun (i : Instr.t) ->
                   if i.Instr.result = Some p then
                     { i with Instr.op = Instr.Phi [ (vt, lt) ] }
                   else i)
                 b.Block.instrs;
           }))
  in
  let fs = Lint.check_module m in
  Alcotest.(check bool) "phi-arg-mismatch reported" true
    (has_rule "phi-arg-mismatch" fs);
  Alcotest.(check bool) "as an error" true
    (Lint.equal_severity (severity_of "phi-arg-mismatch" fs) Lint.Error)

let test_lint_undominated_use () =
  let m, (_, _, le, _), (_, vt, _, _) = diamond () in
  let float_id = Option.get (Module_ir.find_type_id m Ty.Float) in
  let fresh = m.Module_ir.id_bound in
  let m =
    map_main
      { m with Module_ir.id_bound = m.Module_ir.id_bound + 1 }
      (fun fn ->
        Func.replace_block fn
          (let b = Func.block_exn fn le in
           {
             b with
             Block.instrs =
               b.Block.instrs
               @ [
                   {
                     Instr.result = Some fresh;
                     ty = Some float_id;
                     (* vt is defined in the sibling branch: no dominance *)
                     op = Instr.Binop (Instr.FAdd, vt, vt);
                   };
                 ];
           }))
  in
  let fs = Lint.check_module m in
  Alcotest.(check bool) "undominated-use reported" true
    (has_rule "undominated-use" fs);
  Alcotest.(check bool) "as an error" true
    (Lint.equal_severity (severity_of "undominated-use" fs) Lint.Error);
  Alcotest.(check bool) "the validator rejects it too" true
    (Result.is_error (Validate.check m))

let test_lint_store_never_read () =
  let m, _, _ = write_only_module () in
  let fs = Lint.check_module m in
  Alcotest.(check bool) "store-never-read reported" true
    (has_rule "store-never-read" fs);
  Alcotest.(check bool) "as a warning" true
    (Lint.equal_severity (severity_of "store-never-read" fs) Lint.Warning)

let test_lint_block_order () =
  (* chain l0 -> l1 -> l2, then list l2 before l1: l1 strictly dominates l2,
     so the layout is non-canonical *)
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  let fb, main, _ =
    Builder.begin_function b ~name:"main" ~ret:void_t ~params:[]
  in
  let l0 = Builder.new_label fb in
  let l1 = Builder.new_label fb in
  let l2 = Builder.new_label fb in
  let one = Builder.cfloat b 1.0 in
  Builder.start_block fb l0;
  Builder.branch fb l1;
  Builder.start_block fb l1;
  let v = Builder.fadd fb one one in
  Builder.branch fb l2;
  Builder.start_block fb l2;
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ v; v; v; v ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  Alcotest.(check int) "canonical order is clean" 0
    (Lint.error_count (Lint.check_module m));
  let m =
    map_main m (fun fn ->
        let blk = Func.block_exn fn in
        { fn with Func.blocks = [ blk l0; blk l2; blk l1 ] })
  in
  let fs = Lint.check_module m in
  Alcotest.(check bool) "block-order reported" true (has_rule "block-order" fs);
  Alcotest.(check bool) "as an error" true
    (Lint.equal_severity (severity_of "block-order" fs) Lint.Error)

(* ------------------------------------------------------------------ *)
(* Corpus-wide properties                                              *)

let test_lint_clean_on_corpus () =
  List.iter
    (fun (name, m) ->
      match Lint.errors (Lint.check_module m) with
      | [] -> ()
      | f :: _ ->
          Alcotest.failf "reference %s has lint errors: %s" name
            (Lint.to_string f))
    (Lazy.force Corpus.lowered_references)

(* On valid modules, the dominance answer and the intersection-join
   (must-defined) worklist answer agree at every reachable block entry. *)
let test_must_defined_agrees_with_dominance () =
  List.iter
    (fun (name, (m : Module_ir.t)) ->
      List.iter
        (fun (fn : Func.t) ->
          if fn.Func.blocks <> [] then begin
            let av = Dataflow.Availability.make m fn in
            let cfg = Dataflow.Availability.cfg av in
            let defined =
              List.concat_map
                (fun (b : Block.t) ->
                  List.filter_map
                    (fun (i : Instr.t) -> i.Instr.result)
                    b.Block.instrs)
                fn.Func.blocks
            in
            List.iter
              (fun (b : Block.t) ->
                if Cfg.is_reachable cfg b.Block.label then begin
                  let must =
                    Dataflow.Availability.must_defined_at_entry av
                      ~block:b.Block.label
                  in
                  List.iter
                    (fun id ->
                      let dom =
                        Dataflow.Availability.available_at av
                          ~block:b.Block.label ~index:0 id
                      in
                      if dom <> mem id must then
                        Alcotest.failf
                          "%s/%s: dominance and must-defined disagree on %s \
                           at %s"
                          name fn.Func.name (Id.to_string id)
                          (Id.to_string b.Block.label))
                    defined
                end)
              fn.Func.blocks
          end)
        m.Module_ir.functions)
    (Lazy.force Corpus.lowered_references)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "dataflow_and_lint"
    [
      ( "dataflow",
        [
          Alcotest.test_case "reaching definitions" `Quick test_reaching_defs;
          Alcotest.test_case "liveness with loop phi" `Quick test_liveness;
          Alcotest.test_case "availability" `Quick test_availability;
          Alcotest.test_case "unreachable-block relaxation" `Quick
            test_unreachable_relaxation;
          Alcotest.test_case "entry self-loop terminates" `Quick
            test_entry_self_loop;
          Alcotest.test_case "constant propagation" `Quick test_constprop;
          Alcotest.test_case "write-only locals" `Quick test_write_only_locals;
        ] );
      ( "lint",
        [
          Alcotest.test_case "clean baseline" `Quick test_lint_clean_baseline;
          Alcotest.test_case "dead-block" `Quick test_lint_dead_block;
          Alcotest.test_case "dead-result" `Quick test_lint_dead_result;
          Alcotest.test_case "phi-arg-mismatch" `Quick
            test_lint_phi_arg_mismatch;
          Alcotest.test_case "undominated-use" `Quick test_lint_undominated_use;
          Alcotest.test_case "store-never-read" `Quick
            test_lint_store_never_read;
          Alcotest.test_case "block-order" `Quick test_lint_block_order;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "references lint clean" `Quick
            test_lint_clean_on_corpus;
          Alcotest.test_case "must-defined agrees with dominance" `Quick
            test_must_defined_agrees_with_dominance;
        ] );
    ]
