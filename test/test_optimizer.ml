(* Focused unit tests for individual optimizer passes: each pass's intended
   rewrite is checked structurally on a crafted module (semantics
   preservation is covered separately in test_compilers). *)

open Spirv_ir

let mk_module build =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let l = Builder.new_label fb in
  Builder.start_block fb l;
  let result = build b fb in
  let one = Builder.cfloat b 1.0 in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ result; one; one; one ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  (match Validate.check m with
  | Ok () -> ()
  | Error (e :: _) -> Alcotest.failf "crafted module invalid: %s" (Validate.error_to_string e)
  | Error [] -> Alcotest.fail "invalid");
  m

let count_op m pred =
  List.fold_left
    (fun acc (f : Func.t) ->
      acc + List.length (List.filter pred (Func.all_instrs f)))
    0 m.Module_ir.functions

let is_binop (i : Instr.t) = match i.Instr.op with Instr.Binop _ -> true | _ -> false
let is_copy (i : Instr.t) = match i.Instr.op with Instr.CopyObject _ -> true | _ -> false
let is_load (i : Instr.t) = match i.Instr.op with Instr.Load _ -> true | _ -> false
let is_store (i : Instr.t) = match i.Instr.op with Instr.Store _ -> true | _ -> false
let is_call (i : Instr.t) = match i.Instr.op with Instr.FunctionCall _ -> true | _ -> false

let run1 pass m = Compilers.Optimizer.run [ pass ] m

(* ------------------------------------------------------------------ *)

let test_const_fold_folds_constants () =
  let m =
    mk_module (fun b fb ->
        (* 1.5 + 2.5 on constants *)
        Builder.fadd fb (Builder.cfloat b 1.5) (Builder.cfloat b 2.5))
  in
  let m' = run1 Compilers.Optimizer.Const_fold m in
  Alcotest.(check int) "binop replaced" 0 (count_op m' is_binop);
  (* the folded 4.0 constant exists *)
  let float_id = Option.get (Module_ir.find_type_id m' Ty.Float) in
  Alcotest.(check bool) "4.0 interned" true
    (Module_ir.find_constant_id m' ~ty:float_id ~value:(Constant.Float 4.0) <> None)

let test_const_fold_leaves_dynamic_alone () =
  let m =
    mk_module (fun b fb ->
        let frag = Builder.frag_coord b in
        ignore frag;
        (* dynamic value: no folding possible *)
        Builder.fadd fb (Builder.cfloat b 1.5) (Builder.cfloat b 2.5))
  in
  (* add a dynamic add on top *)
  let m_dyn =
    mk_module (fun b fb ->
        let frag = Builder.frag_coord b in
        let fc = Builder.load fb frag in
        let x = Builder.extract fb fc [ 0 ] in
        Builder.fadd fb x (Builder.cfloat b 2.5))
  in
  ignore m;
  let m' = run1 Compilers.Optimizer.Const_fold m_dyn in
  Alcotest.(check int) "dynamic binop kept" 1 (count_op m' is_binop)

let test_copy_prop_collapses_chains () =
  let m =
    mk_module (fun b fb ->
        let v = Builder.fadd fb (Builder.cfloat b 0.25) (Builder.cfloat b 0.5) in
        let c1 = Builder.copy fb v in
        let c2 = Builder.copy fb c1 in
        let c3 = Builder.copy fb c2 in
        c3)
  in
  let m' = run1 Compilers.Optimizer.Copy_prop m in
  (* the color composite now references the original value directly *)
  let uses_of id =
    List.fold_left
      (fun acc (f : Func.t) ->
        acc
        + List.length
            (List.filter
               (fun (i : Instr.t) -> List.mem id (Instr.used_ids i))
               (Func.all_instrs f)))
      0 m'.Module_ir.functions
  in
  let copies =
    List.concat_map
      (fun (f : Func.t) ->
        List.filter_map
          (fun (i : Instr.t) -> if is_copy i then i.Instr.result else None)
          (Func.all_instrs f))
      m'.Module_ir.functions
  in
  List.iter
    (fun c -> Alcotest.(check int) "copy results unused" 0 (uses_of c))
    copies

let test_dce_removes_unused () =
  let m =
    mk_module (fun b fb ->
        let dead = Builder.fmul fb (Builder.cfloat b 3.0) (Builder.cfloat b 4.0) in
        ignore dead;
        Builder.cfloat b 0.5 |> fun c -> Builder.fadd fb c c)
  in
  let before = count_op m is_binop in
  let m' = run1 Compilers.Optimizer.Dce m in
  Alcotest.(check int) "dead binop removed" (before - 1) (count_op m' is_binop)

let test_dce_keeps_stores_and_calls () =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let float_t = Builder.float_ty b in
  let out = Builder.output_color b in
  let g = Builder.global b Ty.Private ~pointee:float_t ~name:"g" () in
  (* helper writes the global: a call with a side effect *)
  let fb, helper, _ = Builder.begin_function b ~name:"w" ~ret:float_t ~params:[] in
  let l = Builder.new_label fb in
  Builder.start_block fb l;
  Builder.store fb g (Builder.cfloat b 0.75);
  Builder.ret_value fb (Builder.cfloat b 0.0);
  ignore (Builder.end_function fb);
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let l = Builder.new_label fb in
  Builder.start_block fb l;
  let unused_call = Builder.call fb helper [] in
  ignore unused_call;
  let v = Builder.load fb g in
  let one = Builder.cfloat b 1.0 in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ v; one; one; one ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  let m' = run1 Compilers.Optimizer.Dce m in
  Alcotest.(check int) "call kept" 1
    (count_op m' (fun i -> is_call i && (match i.Instr.op with
         | Instr.FunctionCall (c, _) -> Id.equal c helper
         | _ -> false)))

let test_simplify_cfg_folds_constant_branch () =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let l0 = Builder.new_label fb in
  let lt = Builder.new_label fb in
  let le = Builder.new_label fb in
  let lm = Builder.new_label fb in
  let t = Builder.cbool b true in
  Builder.start_block fb l0;
  Builder.branch_cond fb t lt le;
  Builder.start_block fb lt;
  Builder.branch fb lm;
  Builder.start_block fb le;
  Builder.branch fb lm;
  Builder.start_block fb lm;
  let one = Builder.cfloat b 1.0 in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ one; one; one; one ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  let m' = run1 Compilers.Optimizer.Simplify_cfg m in
  let f = Module_ir.entry_function m' in
  (* the false arm is unreachable and removed; straight-line merging
     collapses the rest into a single block *)
  Alcotest.(check int) "one block remains" 1 (List.length f.Func.blocks);
  Alcotest.(check bool) "still valid" true (Validate.is_valid m')

let test_phi_simplify_single_entry () =
  (* after removing one arm, φs become single-entry; phi_simplify turns them
     into copies *)
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let l0 = Builder.new_label fb in
  let lt = Builder.new_label fb in
  let le = Builder.new_label fb in
  let lm = Builder.new_label fb in
  let t = Builder.cbool b true in
  Builder.start_block fb l0;
  Builder.branch_cond fb t lt le;
  Builder.start_block fb lt;
  let vt = Builder.fadd fb (Builder.cfloat b 0.25) (Builder.cfloat b 0.25) in
  Builder.branch fb lm;
  Builder.start_block fb le;
  let ve = Builder.fadd fb (Builder.cfloat b 0.5) (Builder.cfloat b 0.25) in
  Builder.branch fb lm;
  Builder.start_block fb lm;
  let phi = Builder.phi fb ~ty:(Builder.float_ty b) [ (vt, lt); (ve, le) ] in
  let one = Builder.cfloat b 1.0 in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ phi; one; one; one ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  let m' =
    Compilers.Optimizer.run
      [ Compilers.Optimizer.Simplify_cfg; Compilers.Optimizer.Phi_simplify ]
      m
  in
  Alcotest.(check int) "no phis left" 0 (count_op m' Instr.is_phi);
  Alcotest.(check bool) "valid" true (Validate.is_valid m')

let test_cse_dedups_within_block () =
  let m =
    mk_module (fun b fb ->
        let x = Builder.fadd fb (Builder.cfloat b 0.25) (Builder.cfloat b 0.5) in
        let y = Builder.fadd fb (Builder.cfloat b 0.25) (Builder.cfloat b 0.5) in
        Builder.fmul fb x y)
  in
  let m' = run1 Compilers.Optimizer.Cse m in
  (* one of the two identical adds became a CopyObject *)
  Alcotest.(check int) "one add collapsed" 1 (count_op m' is_copy)

let test_inline_replaces_call () =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let float_t = Builder.float_ty b in
  let out = Builder.output_color b in
  let fb, helper, params = Builder.begin_function b ~name:"h" ~ret:float_t ~params:[ float_t ] in
  let p = List.hd params in
  let l = Builder.new_label fb in
  Builder.start_block fb l;
  let r = Builder.fmul fb p (Builder.cfloat b 2.0) in
  Builder.ret_value fb r;
  ignore (Builder.end_function fb);
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let l = Builder.new_label fb in
  Builder.start_block fb l;
  let v = Builder.call fb helper [ Builder.cfloat b 0.25 ] in
  let one = Builder.cfloat b 1.0 in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ v; one; one; one ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  let m' = run1 Compilers.Optimizer.Inline m in
  Alcotest.(check int) "no calls left" 0 (count_op m' is_call);
  Alcotest.(check bool) "valid" true (Validate.is_valid m');
  (* DontInline prevents it *)
  let m_ni =
    {
      m with
      Module_ir.functions =
        List.map
          (fun (f : Func.t) ->
            if Id.equal f.Func.id helper then { f with Func.control = Func.DontInline }
            else f)
          m.Module_ir.functions;
    }
  in
  let m_ni' = run1 Compilers.Optimizer.Inline m_ni in
  Alcotest.(check int) "DontInline call kept" 1 (count_op m_ni' is_call)

let test_store_forward_and_dse () =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let float_t = Builder.float_ty b in
  let out = Builder.output_color b in
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let l = Builder.new_label fb in
  Builder.start_block fb l;
  let var = Builder.local_var fb ~pointee:float_t in
  Builder.store fb var (Builder.cfloat b 0.75);
  let v = Builder.load fb var in
  let one = Builder.cfloat b 1.0 in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ v; one; one; one ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  let m' =
    Compilers.Optimizer.run
      Compilers.Optimizer.
        [ Store_forward; Copy_prop; Dse; Dce ]
      m
  in
  (* the local variable, its store and its load are all gone *)
  Alcotest.(check int) "no loads" 0 (count_op m' is_load);
  Alcotest.(check int) "one store (the output)" 1 (count_op m' is_store);
  Alcotest.(check int) "no variables" 0
    (count_op m' (fun i -> match i.Instr.op with Instr.Variable _ -> true | _ -> false))

let test_store_forward_blocked_by_call () =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let float_t = Builder.float_ty b in
  let out = Builder.output_color b in
  let g = Builder.global b Ty.Private ~pointee:float_t ~name:"g" () in
  let fb, writer, _ = Builder.begin_function b ~name:"w" ~ret:float_t ~params:[] in
  let l = Builder.new_label fb in
  Builder.start_block fb l;
  Builder.store fb g (Builder.cfloat b 0.5);
  Builder.ret_value fb (Builder.cfloat b 0.0);
  ignore (Builder.end_function fb);
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let l = Builder.new_label fb in
  Builder.start_block fb l;
  Builder.store fb g (Builder.cfloat b 0.25);
  let _call = Builder.call fb writer [] in
  let v = Builder.load fb g in
  let one = Builder.cfloat b 1.0 in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ v; one; one; one ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  let m' = run1 Compilers.Optimizer.Store_forward m in
  (* the load must NOT be forwarded to 0.25: the call wrote 0.5 *)
  Alcotest.(check int) "load survives" 1 (count_op m' is_load);
  (* and the whole pipeline still renders 0.5 in the red channel *)
  let input = Input.make ~width:1 ~height:1 [] in
  match Interp.render (Compilers.Optimizer.run Compilers.Optimizer.standard m) input with
  | Ok img -> (
      match Image.get img ~x:0 ~y:0 with
      | Image.Color (Value.VComposite [| Value.VFloat r; _; _; _ |]) ->
          Alcotest.(check (float 1e-9)) "red is the callee's write" 0.5 r
      | _ -> Alcotest.fail "pixel shape")
  | Error t -> Alcotest.failf "trap: %s" (Interp.trap_to_string t)

let test_optimizer_idempotent_on_corpus () =
  List.iter
    (fun (name, m) ->
      let once = Compilers.Optimizer.run Compilers.Optimizer.standard m in
      let twice = Compilers.Optimizer.run Compilers.Optimizer.standard once in
      if Module_ir.instruction_count twice > Module_ir.instruction_count once then
        Alcotest.failf "%s grows on re-optimization" name)
    (Lazy.force Corpus.lowered_references)

(* ------------------------------------------------------------------ *)
(* Checked pipelines: validate + lint as a post-pass oracle             *)

let test_run_checked_clean () =
  List.iter
    (fun (name, m) ->
      match Compilers.Optimizer.run_checked Compilers.Optimizer.standard m with
      | Ok m' ->
          let plain = Compilers.Optimizer.run Compilers.Optimizer.standard m in
          Alcotest.(check bool)
            (name ^ ": checked run produces the same module") true
            (Module_ir.equal m' plain)
      | Error ((pass, detail) :: _) ->
          Alcotest.failf "%s: clean pipeline flagged at %s: %s" name
            (Compilers.Optimizer.show_pass_name pass)
            detail
      | Error [] -> Alcotest.failf "%s: empty failure list" name)
    (Lazy.force Corpus.lowered_references)

(* the stale-phi optimizer bug leaves a phi entry for a deleted block; the
   checked pipeline must catch it at the offending pass *)
let test_run_checked_catches_stale_phi () =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let l0 = Builder.new_label fb in
  let lt = Builder.new_label fb in
  let le = Builder.new_label fb in
  let lm = Builder.new_label fb in
  Builder.start_block fb l0;
  let c = Builder.cbool b true in
  let one = Builder.cfloat b 1.0 in
  let half = Builder.cfloat b 0.5 in
  Builder.branch_cond fb c lt le;
  Builder.start_block fb lt;
  let vt = Builder.fadd fb one half in
  Builder.branch fb lm;
  Builder.start_block fb le;
  let ve = Builder.fmul fb one half in
  Builder.branch fb lm;
  Builder.start_block fb lm;
  let p = Builder.phi fb ~ty:(Builder.float_ty b) [ (vt, lt); (ve, le) ] in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ p; p; p; p ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  let buggy =
    { Compilers.Passes.no_bugs with Compilers.Passes.bug_keep_stale_phi_entries = true }
  in
  (match
     Compilers.Optimizer.run_checked ~flags:buggy
       [ Compilers.Optimizer.Simplify_cfg ] m
   with
  | Ok _ -> Alcotest.fail "stale-phi bug not caught"
  | Error [] -> Alcotest.fail "empty failure list"
  | Error ((pass, _) :: _) ->
      Alcotest.(check bool) "flagged at simplify_cfg" true
        (Compilers.Optimizer.equal_pass_name pass Compilers.Optimizer.Simplify_cfg));
  (* the same pipeline without the bug passes the checks *)
  match Compilers.Optimizer.run_checked [ Compilers.Optimizer.Simplify_cfg ] m with
  | Ok _ -> ()
  | Error [] -> Alcotest.fail "empty failure list"
  | Error ((pass, detail) :: _) ->
      Alcotest.failf "clean simplify_cfg flagged: %s: %s"
        (Compilers.Optimizer.show_pass_name pass)
        detail

let () =
  Alcotest.run "optimizer"
    [
      ( "passes",
        [
          Alcotest.test_case "const_fold folds constants" `Quick test_const_fold_folds_constants;
          Alcotest.test_case "const_fold leaves dynamic ops" `Quick
            test_const_fold_leaves_dynamic_alone;
          Alcotest.test_case "copy_prop collapses chains" `Quick test_copy_prop_collapses_chains;
          Alcotest.test_case "dce removes unused" `Quick test_dce_removes_unused;
          Alcotest.test_case "dce keeps stores and calls" `Quick test_dce_keeps_stores_and_calls;
          Alcotest.test_case "simplify_cfg folds constant branches" `Quick
            test_simplify_cfg_folds_constant_branch;
          Alcotest.test_case "phi_simplify" `Quick test_phi_simplify_single_entry;
          Alcotest.test_case "cse dedups within block" `Quick test_cse_dedups_within_block;
          Alcotest.test_case "inline replaces calls (honors DontInline)" `Quick
            test_inline_replaces_call;
          Alcotest.test_case "store forwarding + DSE" `Quick test_store_forward_and_dse;
          Alcotest.test_case "store forwarding blocked by calls" `Quick
            test_store_forward_blocked_by_call;
          Alcotest.test_case "idempotent on corpus" `Quick test_optimizer_idempotent_on_corpus;
          Alcotest.test_case "run_checked clean on corpus" `Quick test_run_checked_clean;
          Alcotest.test_case "run_checked catches stale-phi bug" `Quick
            test_run_checked_catches_stale_phi;
        ] );
    ]
