(* Tests for the loop-aware static-analysis layer: the natural-loop forest
   (Spirv_ir.Loops), the interval/range analysis with trip-count bounds
   (Spirv_ir.Dataflow.Ranges), their consumption by the symbolic TV oracle,
   the loop-invariant code-motion pass with its injected bug, and the loop
   lint rules. *)

open Spirv_ir

let main_fn (m : Module_ir.t) : Func.t =
  List.find
    (fun (f : Func.t) -> Id.equal f.Func.id m.Module_ir.entry)
    m.Module_ir.functions

let facts m (fn : Func.t) =
  let av = Dataflow.Availability.make m fn in
  let cfg = Dataflow.Availability.cfg av in
  let dom = Dataflow.Availability.dominance av in
  let forest = Loops.analyze cfg dom in
  let ranges = Dataflow.Ranges.compute m fn ~cfg ~loops:forest in
  (forest, ranges)

let loop_corpus = Corpus.lowered_loop_references
let corpus_module name = List.assoc name (Lazy.force loop_corpus)

(* ------------------------------------------------------------------ *)
(* Crafted CFGs                                                        *)

(* l0 -> lh (phi i; i < 10 ? lb : lx); lb: i2 = i + 1 -> lh *)
let counted_loop () =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  let fb, main, _ =
    Builder.begin_function b ~name:"main" ~ret:void_t ~params:[]
  in
  let l0 = Builder.new_label fb in
  let lh = Builder.new_label fb in
  let lb = Builder.new_label fb in
  let lx = Builder.new_label fb in
  let zero = Builder.cint b 0 in
  let one = Builder.cint b 1 in
  let ten = Builder.cint b 10 in
  let onef = Builder.cfloat b 1.0 in
  Builder.start_block fb l0;
  Builder.branch fb lh;
  Builder.start_block fb lh;
  let i = Builder.phi fb ~ty:(Builder.int_ty b) [ (zero, l0); (zero, lb) ] in
  let cond = Builder.slt fb i ten in
  Builder.branch_cond fb cond lb lx;
  Builder.start_block fb lb;
  let i2 = Builder.iadd fb i one in
  Builder.branch fb lh;
  Builder.patch_phi fb ~phi:i ~pred:lb ~value:i2;
  Builder.start_block fb lx;
  let color =
    Builder.composite fb ~ty:(Builder.vec4f b) [ onef; onef; onef; onef ]
  in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  (m, (l0, lh, lb, lx))

(* two nested counted loops:
   l0 -> h1 (phi i; i < 4 ? b1 : lx)
   b1 -> h2 (phi j; j < 3 ? b2 : lat1)
   b2: j2 = j + 1 -> h2
   lat1: i2 = i + 1 -> h1 *)
let nested_loop () =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  let fb, main, _ =
    Builder.begin_function b ~name:"main" ~ret:void_t ~params:[]
  in
  let l0 = Builder.new_label fb in
  let h1 = Builder.new_label fb in
  let b1 = Builder.new_label fb in
  let h2 = Builder.new_label fb in
  let b2 = Builder.new_label fb in
  let lat1 = Builder.new_label fb in
  let lx = Builder.new_label fb in
  let zero = Builder.cint b 0 in
  let one = Builder.cint b 1 in
  let four = Builder.cint b 4 in
  let three = Builder.cint b 3 in
  let onef = Builder.cfloat b 1.0 in
  Builder.start_block fb l0;
  Builder.branch fb h1;
  Builder.start_block fb h1;
  let i = Builder.phi fb ~ty:(Builder.int_ty b) [ (zero, l0); (zero, lat1) ] in
  let c1 = Builder.slt fb i four in
  Builder.branch_cond fb c1 b1 lx;
  Builder.start_block fb b1;
  Builder.branch fb h2;
  Builder.start_block fb h2;
  let j = Builder.phi fb ~ty:(Builder.int_ty b) [ (zero, b1); (zero, b2) ] in
  let c2 = Builder.slt fb j three in
  Builder.branch_cond fb c2 b2 lat1;
  Builder.start_block fb b2;
  let j2 = Builder.iadd fb j one in
  Builder.branch fb h2;
  Builder.patch_phi fb ~phi:j ~pred:b2 ~value:j2;
  Builder.start_block fb lat1;
  let i2 = Builder.iadd fb i one in
  Builder.branch fb h1;
  Builder.patch_phi fb ~phi:i ~pred:lat1 ~value:i2;
  Builder.start_block fb lx;
  let color =
    Builder.composite fb ~ty:(Builder.vec4f b) [ onef; onef; onef; onef ]
  in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  (m, (h1, h2, b2, lat1))

(* an irreducible region: l0 conditionally enters a or b, which branch to
   each other — neither dominates the other, so the retreating edge is not
   a natural back edge *)
let irreducible_cfg () =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  let fb, main, _ =
    Builder.begin_function b ~name:"main" ~ret:void_t ~params:[]
  in
  let l0 = Builder.new_label fb in
  let la = Builder.new_label fb in
  let lb = Builder.new_label fb in
  let lx = Builder.new_label fb in
  let t = Builder.cbool b true in
  let onef = Builder.cfloat b 1.0 in
  Builder.start_block fb l0;
  Builder.branch_cond fb t la lb;
  Builder.start_block fb la;
  Builder.branch_cond fb t lb lx;
  Builder.start_block fb lb;
  Builder.branch_cond fb t la lx;
  Builder.start_block fb lx;
  let color =
    Builder.composite fb ~ty:(Builder.vec4f b) [ onef; onef; onef; onef ]
  in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  Builder.finish b ~entry:main

(* a self-loop with no exit edge: the infinite-loop lint rule's target *)
let endless_loop () =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let _out = Builder.output_color b in
  let fb, main, _ =
    Builder.begin_function b ~name:"main" ~ret:void_t ~params:[]
  in
  let l0 = Builder.new_label fb in
  let la = Builder.new_label fb in
  Builder.start_block fb l0;
  Builder.branch fb la;
  Builder.start_block fb la;
  Builder.branch fb la;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  (m, la)

(* ------------------------------------------------------------------ *)
(* Loop forest                                                         *)

let test_forest_simple () =
  let m, (_, lh, lb, lx) = counted_loop () in
  let forest, _ = facts m (main_fn m) in
  Alcotest.(check int) "one loop" 1 (List.length forest.Loops.loops);
  Alcotest.(check bool) "reducible" true (Loops.is_reducible forest);
  let l = List.hd forest.Loops.loops in
  Alcotest.(check bool) "header" true (Id.equal l.Loops.header lh);
  Alcotest.(check bool) "latch" true
    (l.Loops.latches = [ lb ]);
  Alcotest.(check int) "body size" 2 (Id.Set.cardinal l.Loops.blocks);
  Alcotest.(check bool) "exit edge" true
    (List.exists
       (fun (src, dst) -> Id.equal src lh && Id.equal dst lx)
       l.Loops.exits);
  Alcotest.(check int) "depth" 1 l.Loops.depth;
  Alcotest.(check bool) "no parent" true (l.Loops.parent = None)

let test_forest_nested () =
  let m, (h1, h2, b2, _) = nested_loop () in
  let forest, _ = facts m (main_fn m) in
  Alcotest.(check int) "two loops" 2 (List.length forest.Loops.loops);
  let outer =
    match Loops.header_of forest h1 with
    | Some l -> l
    | None -> Alcotest.fail "outer loop missing"
  in
  let inner =
    match Loops.header_of forest h2 with
    | Some l -> l
    | None -> Alcotest.fail "inner loop missing"
  in
  Alcotest.(check int) "outer depth" 1 outer.Loops.depth;
  Alcotest.(check int) "inner depth" 2 inner.Loops.depth;
  Alcotest.(check bool) "inner parent" true
    (inner.Loops.parent = Some h1);
  Alcotest.(check bool) "inner body inside outer" true
    (Id.Set.subset inner.Loops.blocks outer.Loops.blocks);
  (match Loops.innermost_containing forest b2 with
  | Some l -> Alcotest.(check bool) "innermost of b2" true (Id.equal l.Loops.header h2)
  | None -> Alcotest.fail "b2 not in any loop")

let test_forest_irreducible () =
  let m = irreducible_cfg () in
  let forest, _ = facts m (main_fn m) in
  Alcotest.(check bool) "irreducible edge found" true
    (forest.Loops.irreducible <> []);
  Alcotest.(check bool) "not reducible" false (Loops.is_reducible forest)

(* ------------------------------------------------------------------ *)
(* Ranges and trip bounds                                              *)

let test_trip_bound_phi_carried () =
  let m, (_, lh, _, _) = counted_loop () in
  let _, ranges = facts m (main_fn m) in
  Alcotest.(check (option int)) "i < 10 step 1" (Some 10)
    (Dataflow.Ranges.trip_bound ranges ~header:lh)

let test_trip_bound_nested () =
  let m, (h1, h2, _, _) = nested_loop () in
  let _, ranges = facts m (main_fn m) in
  Alcotest.(check (option int)) "outer" (Some 4)
    (Dataflow.Ranges.trip_bound ranges ~header:h1);
  Alcotest.(check (option int)) "inner" (Some 3)
    (Dataflow.Ranges.trip_bound ranges ~header:h2)

(* the clamped uniform bound is provable through the conditional-edge
   refinement; the raw uniform bound is not *)
let test_trip_bound_corpus () =
  let check name expected =
    let m = corpus_module name in
    let fn = main_fn m in
    let forest, ranges = facts m fn in
    match forest.Loops.loops with
    | [ l ] ->
        Alcotest.(check (option int)) name expected
          (Dataflow.Ranges.trip_bound ranges ~header:l.Loops.header)
    | ls -> Alcotest.failf "%s: expected 1 loop in main, got %d" name (List.length ls)
  in
  check "loop_uniform_clamped" (Some 8);
  check "loop_mode_clamped" (Some 4);
  check "loop_uniform_raw" None

(* soundness: every concrete SSA int value the interpreter binds lies
   within its computed interval *)
let interval_table (m : Module_ir.t) =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (fn : Func.t) ->
      if fn.Func.blocks <> [] then begin
        let _, ranges = facts m fn in
        List.iter
          (fun (id, itv) -> Hashtbl.replace tbl id itv)
          (Dataflow.Ranges.known ranges)
      end)
    m.Module_ir.functions;
  tbl

let check_ranges_sound name m (input : Input.t) =
  let tbl = interval_table m in
  let bad = ref None in
  let trace id v =
    match (Hashtbl.find_opt tbl id, v) with
    | Some itv, Value.VInt n ->
        if
          (not (Dataflow.Itv.mem (Int32.to_int n) itv))
          && Option.is_none !bad
        then bad := Some (id, n, itv)
    | _ -> ()
  in
  for y = 0 to input.Input.height - 1 do
    for x = 0 to input.Input.width - 1 do
      ignore (Interp.run_fragment ~trace m input ~frag_x:x ~frag_y:y)
    done
  done;
  match !bad with
  | None -> ()
  | Some (id, n, itv) ->
      Alcotest.failf "%s: %s bound to %ld outside %s" name (Id.to_string id)
        n
        (Dataflow.Itv.to_string itv)

let test_ranges_sound_on_corpus () =
  List.iter
    (fun (name, m) -> check_ranges_sound name m Corpus.default_input)
    (Lazy.force Corpus.lowered_references @ Lazy.force loop_corpus)

let prop_ranges_sound_on_generated =
  QCheck.Test.make ~count:30
    ~name:"range analysis sound vs Interp on generated modules"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let m = Generator.generate (Tbct.Rng.make seed) in
      check_ranges_sound (Printf.sprintf "seed %d" seed) m
        Generator.default_input;
      true)

(* ------------------------------------------------------------------ *)
(* TV over the loop corpus                                             *)

let test_tv_counted_corpus () =
  List.iter
    (fun name ->
      let m = corpus_module name in
      match Compilers.Optimizer.(run_tv standard) m with
      | Error s -> Alcotest.failf "%s: pipeline crashed: %s" name s
      | Ok report ->
          List.iter
            (fun (p, v) ->
              match v with
              | Compilers.Tv.Equivalent -> ()
              | Compilers.Tv.Mismatch _ ->
                  Alcotest.failf "%s: mismatch in %s" name
                    (Compilers.Optimizer.show_pass_name p)
              | Compilers.Tv.Abstained r ->
                  Alcotest.failf "%s: %s abstained: %s" name
                    (Compilers.Optimizer.show_pass_name p)
                    r)
            report.Compilers.Optimizer.tv_steps)
    Corpus.counted_loop_names

let test_tv_unbounded_abstains () =
  let m = corpus_module "loop_uniform_raw" in
  match Compilers.Optimizer.(run_tv standard) m with
  | Error s -> Alcotest.failf "pipeline crashed: %s" s
  | Ok report ->
      Alcotest.(check bool) "no guilty pass" true
        (report.Compilers.Optimizer.tv_guilty = None);
      let labels =
        List.filter_map
          (fun (_, v) -> Compilers.Tv.abstain_label v)
          report.Compilers.Optimizer.tv_steps
      in
      Alcotest.(check bool) "abstains with the loop-unbounded reason" true
        (List.mem "loop-unbounded" labels)

let test_reason_labels () =
  Alcotest.(check string) "budget" "budget" (Symval.reason_label `Budget);
  Alcotest.(check (list string)) "all labels"
    [ "loop-unbounded"; "budget"; "dynamic-index"; "forced-unroll";
      "unsupported"; "internal" ]
    Symval.reason_labels

(* the loop corpus itself is executable and lint-error-free *)
let test_loop_corpus_well_defined () =
  List.iter
    (fun (name, m) ->
      Alcotest.(check bool)
        (name ^ " renders") true
        (Interp.well_defined m Corpus.default_input);
      match Lint.errors (Lint.check_module m) with
      | [] -> ()
      | f :: _ ->
          Alcotest.failf "%s has lint errors: %s" name (Lint.to_string f))
    (Lazy.force loop_corpus)

(* ------------------------------------------------------------------ *)
(* Loop-invariant code motion                                          *)

let all_corpus () =
  Lazy.force Corpus.lowered_references @ Lazy.force loop_corpus

let test_hoist_preserves_semantics () =
  List.iter
    (fun (name, m) ->
      let m' = Compilers.Optimizer.run [ Compilers.Optimizer.Hoist_invariant ] m in
      Alcotest.(check bool) (name ^ " valid") true (Validate.is_valid m');
      (match
         ( Interp.render m Corpus.default_input,
           Interp.render m' Corpus.default_input )
       with
      | Ok a, Ok b ->
          Alcotest.(check bool) (name ^ " image unchanged") true
            (Image.equal a b)
      | _ -> Alcotest.failf "%s: render failed" name);
      match Compilers.Tv.check_pass m m' with
      | Compilers.Tv.Mismatch w ->
          Alcotest.failf "%s: TV mismatch at %s" name w.Compilers.Tv.w_slot
      | Compilers.Tv.Equivalent | Compilers.Tv.Abstained _ -> ())
    (all_corpus ())

(* the pass moves something: loop_counted recomputes gl_x / 8 every
   iteration, which is invariant *)
let test_hoist_moves_invariant_code () =
  let m = corpus_module "loop_counted" in
  let m' = Compilers.Optimizer.run [ Compilers.Optimizer.Hoist_invariant ] m in
  Alcotest.(check bool) "module changed" false
    (String.equal (Disasm.to_string m) (Disasm.to_string m'))

let bug_flags =
  { Compilers.Passes.no_bugs with Compilers.Passes.bug_hoist_loop_load = true }

(* the injected LICM bug hoists the accumulator load past the loop header;
   on a constant-bound loop TV unrolls concretely, catches the divergence
   and blames the pass by name *)
let test_hoist_bug_blamed () =
  let m = corpus_module "loop_counted" in
  match
    Compilers.Optimizer.run_tv ~flags:bug_flags
      [ Compilers.Optimizer.Hoist_invariant ] m
  with
  | Error s -> Alcotest.failf "pipeline crashed: %s" s
  | Ok report ->
      Alcotest.(check bool) "guilty pass named" true
        (report.Compilers.Optimizer.tv_guilty
        = Some Compilers.Optimizer.Hoist_invariant);
      (* and it is a real miscompilation, not a TV artifact *)
      let m' = Compilers.Passes.hoist_invariant bug_flags m in
      match
        ( Interp.render m Corpus.default_input,
          Interp.render m' Corpus.default_input )
      with
      | Ok a, Ok b ->
          Alcotest.(check bool) "images differ" false (Image.equal a b)
      | _ -> Alcotest.fail "render failed"

(* under forced loop exits (symbolic bound proven by the range analysis),
   a divergence is downgraded to a forced-unroll abstention rather than
   reported as a mismatch *)
let test_forced_unroll_downgrade () =
  let m = corpus_module "loop_uniform_clamped" in
  let m' = Compilers.Passes.hoist_invariant bug_flags m in
  match Compilers.Tv.check_pass m m' with
  | Compilers.Tv.Mismatch _ ->
      Alcotest.fail "mismatch under forced exits should be downgraded"
  | v ->
      Alcotest.(check (option string)) "forced-unroll label"
        (Some "forced-unroll")
        (Compilers.Tv.abstain_label v)

(* ------------------------------------------------------------------ *)
(* Engine: per-reason abstention counters                              *)

let test_engine_abstain_counter () =
  let e = Harness.Engine.create () in
  let m = corpus_module "loop_uniform_raw" in
  (* the engine short-circuits digest-identical pairs to Equivalent, so
     give it a genuinely transformed [after] module *)
  let m' = Compilers.Optimizer.run Compilers.Optimizer.standard m in
  if String.equal (Digest.of_module m) (Digest.of_module m') then
    Alcotest.fail "optimizing left the module unchanged";
  (match Harness.Engine.tv_check e ~before:m ~after:m' with
  | Compilers.Tv.Abstained _ -> ()
  | _ -> Alcotest.fail "expected an abstention on the unbounded loop");
  let stats = Harness.Engine.stats e in
  Alcotest.(check (option int)) "counter bumped" (Some 1)
    (List.assoc_opt "tv-abstain:loop-unbounded"
       stats.Harness.Engine.counters)

(* ------------------------------------------------------------------ *)
(* Lint loop rules                                                     *)

let has_rule rule sev findings =
  List.exists
    (fun (f : Lint.finding) ->
      String.equal f.Lint.rule rule && f.Lint.severity = sev)
    findings

let test_lint_infinite_loop () =
  let m, _ = endless_loop () in
  Alcotest.(check bool) "infinite-loop error" true
    (has_rule "infinite-loop" Lint.Error (Lint.check_module m))

let test_lint_irreducible () =
  let m = irreducible_cfg () in
  Alcotest.(check bool) "irreducible-cfg warning" true
    (has_rule "irreducible-cfg" Lint.Warning (Lint.check_module m))

let test_lint_loop_invariant_code () =
  (* plant a constant-operand add inside the counted loop's body *)
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  let fb, main, _ =
    Builder.begin_function b ~name:"main" ~ret:void_t ~params:[]
  in
  let l0 = Builder.new_label fb in
  let lh = Builder.new_label fb in
  let lb = Builder.new_label fb in
  let lx = Builder.new_label fb in
  let zero = Builder.cint b 0 in
  let one = Builder.cint b 1 in
  let ten = Builder.cint b 10 in
  let onef = Builder.cfloat b 1.0 in
  Builder.start_block fb l0;
  Builder.branch fb lh;
  Builder.start_block fb lh;
  let i = Builder.phi fb ~ty:(Builder.int_ty b) [ (zero, l0); (zero, lb) ] in
  let cond = Builder.slt fb i ten in
  Builder.branch_cond fb cond lb lx;
  Builder.start_block fb lb;
  let inv = Builder.fadd fb onef onef in
  let i2 = Builder.iadd fb i one in
  Builder.branch fb lh;
  Builder.patch_phi fb ~phi:i ~pred:lb ~value:i2;
  Builder.start_block fb lx;
  let color =
    Builder.composite fb ~ty:(Builder.vec4f b) [ onef; onef; onef; onef ]
  in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  ignore inv;
  Alcotest.(check bool) "loop-invariant-code warning" true
    (has_rule "loop-invariant-code" Lint.Warning (Lint.check_module m))

(* ------------------------------------------------------------------ *)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "loops"
    [
      ( "forest",
        [
          Alcotest.test_case "simple counted loop" `Quick test_forest_simple;
          Alcotest.test_case "nested loops" `Quick test_forest_nested;
          Alcotest.test_case "irreducible region" `Quick
            test_forest_irreducible;
        ] );
      ( "ranges",
        [
          Alcotest.test_case "phi-carried trip bound" `Quick
            test_trip_bound_phi_carried;
          Alcotest.test_case "nested trip bounds" `Quick
            test_trip_bound_nested;
          Alcotest.test_case "corpus trip bounds" `Quick
            test_trip_bound_corpus;
          Alcotest.test_case "sound on the corpus" `Quick
            test_ranges_sound_on_corpus;
        ]
        @ qcheck [ prop_ranges_sound_on_generated ] );
      ( "tv",
        [
          Alcotest.test_case "counted corpus fully covered" `Quick
            test_tv_counted_corpus;
          Alcotest.test_case "unbounded loop abstains" `Quick
            test_tv_unbounded_abstains;
          Alcotest.test_case "reason labels" `Quick test_reason_labels;
          Alcotest.test_case "loop corpus well-defined" `Quick
            test_loop_corpus_well_defined;
          Alcotest.test_case "engine abstain counters" `Quick
            test_engine_abstain_counter;
        ] );
      ( "hoist",
        [
          Alcotest.test_case "preserves semantics" `Quick
            test_hoist_preserves_semantics;
          Alcotest.test_case "moves invariant code" `Quick
            test_hoist_moves_invariant_code;
          Alcotest.test_case "injected bug blamed" `Quick
            test_hoist_bug_blamed;
          Alcotest.test_case "forced-unroll downgrade" `Quick
            test_forced_unroll_downgrade;
        ] );
      ( "lint",
        [
          Alcotest.test_case "infinite-loop" `Quick test_lint_infinite_loop;
          Alcotest.test_case "irreducible-cfg" `Quick test_lint_irreducible;
          Alcotest.test_case "loop-invariant-code" `Quick
            test_lint_loop_invariant_code;
        ] );
    ]
