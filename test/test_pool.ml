(* Tests for the work-stealing domain pool: deterministic task-id-ordered
   results at any worker count, workers > tasks, empty batches, exception
   propagation (smallest raising id, pool survives), reuse across batches
   and the with_pool cleanup contract. *)

let squares n = Array.init n (fun i -> i * i)

let test_map_identity workers () =
  Harness.Pool.with_pool ~workers (fun pool ->
      Alcotest.(check int) "worker count" (max 1 workers)
        (Harness.Pool.workers pool);
      let results = Harness.Pool.map pool 100 (fun i -> i * i) in
      Alcotest.(check bool)
        (Printf.sprintf "%d-worker map keyed by task id" workers)
        true
        (results = squares 100))

let test_workers_exceed_tasks () =
  (* more workers than tasks: surplus deques start empty and steal; every
     slot still holds its own task's result *)
  Harness.Pool.with_pool ~workers:8 (fun pool ->
      let results = Harness.Pool.map pool 3 (fun i -> i * i) in
      Alcotest.(check bool) "8 workers over 3 tasks" true (results = squares 3))

let test_empty_and_singleton () =
  Harness.Pool.with_pool ~workers:4 (fun pool ->
      Alcotest.(check int) "empty batch" 0
        (Array.length (Harness.Pool.map pool 0 (fun i -> i)));
      let one = Harness.Pool.map pool 1 (fun i -> i + 41) in
      Alcotest.(check bool) "singleton batch" true (one = [| 41 |]))

let test_map_worker_labels () =
  Harness.Pool.with_pool ~workers:4 (fun pool ->
      let seen = Array.make 64 (-1) in
      let results =
        Harness.Pool.map_worker pool 64 (fun ~worker id ->
            seen.(id) <- worker;
            id)
      in
      Alcotest.(check bool) "results keyed by id" true
        (results = Array.init 64 Fun.id);
      Array.iter
        (fun w ->
          Alcotest.(check bool) "worker label in range" true (w >= 0 && w < 4))
        seen)

let test_map_list_order () =
  Harness.Pool.with_pool ~workers:3 (fun pool ->
      let xs = List.init 50 (fun i -> 50 - i) in
      Alcotest.(check (list int)) "map_list preserves order"
        (List.map (fun x -> x * 2) xs)
        (Harness.Pool.map_list pool (fun x -> x * 2) xs))

exception Boom of int

let test_exception_propagates workers () =
  Harness.Pool.with_pool ~workers (fun pool ->
      (* several tasks raise; the pool must re-raise the smallest raising
         id whatever order the workers hit them in, and must not deadlock *)
      (match
         Harness.Pool.map pool 40 (fun i ->
             if i mod 10 = 7 then raise (Boom i) else i)
       with
      | _ -> Alcotest.fail "a raising batch returned normally"
      | exception Boom i ->
          Alcotest.(check int)
            (Printf.sprintf "%d workers: smallest raising id wins" workers)
            7 i);
      (* the same pool stays usable for further batches *)
      let results = Harness.Pool.map pool 20 (fun i -> i + 1) in
      Alcotest.(check bool) "pool reusable after a raising batch" true
        (results = Array.init 20 (fun i -> i + 1)))

let test_reuse_across_batches () =
  Harness.Pool.with_pool ~workers:4 (fun pool ->
      for n = 1 to 30 do
        let results = Harness.Pool.map pool n (fun i -> i * n) in
        Alcotest.(check bool)
          (Printf.sprintf "batch of %d" n)
          true
          (results = Array.init n (fun i -> i * n))
      done)

let test_stats_account_every_task () =
  Harness.Pool.with_pool ~workers:4 (fun pool ->
      ignore (Harness.Pool.map pool 100 Fun.id);
      ignore (Harness.Pool.map pool 28 Fun.id);
      let stats = Harness.Pool.stats pool in
      Alcotest.(check int) "one stats slot per worker" 4 (Array.length stats);
      let total =
        Array.fold_left
          (fun acc s -> acc + s.Harness.Pool.ws_tasks)
          0 stats
      in
      Alcotest.(check int) "every task accounted to exactly one worker" 128
        total;
      Alcotest.(check bool) "stats render" true
        (String.length (Harness.Pool.stats_to_string pool) > 0))

let test_shutdown_idempotent () =
  let pool = Harness.Pool.create ~workers:3 () in
  let results = Harness.Pool.map pool 10 Fun.id in
  Alcotest.(check bool) "batch before shutdown" true
    (results = Array.init 10 Fun.id);
  Harness.Pool.shutdown pool;
  Harness.Pool.shutdown pool (* second shutdown is a no-op, not a hang *)

let test_with_pool_cleans_up_on_raise () =
  match
    Harness.Pool.with_pool ~workers:3 (fun pool ->
        ignore (Harness.Pool.map pool 5 Fun.id);
        failwith "caller-side failure")
  with
  | () -> Alcotest.fail "with_pool swallowed the exception"
  | exception Failure msg ->
      Alcotest.(check string) "caller exception surfaces" "caller-side failure"
        msg

let () =
  Alcotest.run "pool"
    [
      ( "determinism",
        [
          Alcotest.test_case "1 worker" `Quick (test_map_identity 1);
          Alcotest.test_case "2 workers" `Quick (test_map_identity 2);
          Alcotest.test_case "3 workers" `Quick (test_map_identity 3);
          Alcotest.test_case "4 workers" `Quick (test_map_identity 4);
          Alcotest.test_case "8 workers" `Quick (test_map_identity 8);
          Alcotest.test_case "workers > tasks" `Quick test_workers_exceed_tasks;
          Alcotest.test_case "empty and singleton batches" `Quick
            test_empty_and_singleton;
          Alcotest.test_case "map_worker labels" `Quick test_map_worker_labels;
          Alcotest.test_case "map_list preserves order" `Quick
            test_map_list_order;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "propagates, 1 worker" `Quick
            (test_exception_propagates 1);
          Alcotest.test_case "propagates, 4 workers" `Quick
            (test_exception_propagates 4);
          Alcotest.test_case "propagates, 8 workers" `Quick
            (test_exception_propagates 8);
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "reusable across batches" `Quick
            test_reuse_across_batches;
          Alcotest.test_case "stats account every task" `Quick
            test_stats_account_every_task;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_shutdown_idempotent;
          Alcotest.test_case "with_pool cleans up on raise" `Quick
            test_with_pool_cleans_up_on_raise;
        ] );
    ]
