(* Tests for the persistent campaign store: the content-addressed object
   store, the checksummed journal with crash recovery, the bug bank, the
   exact run-result codecs, and the engine's disk-backed / LRU-bounded
   caches.

   The load-bearing properties are (a) every codec round-trips exactly, so
   disk-cached results cannot change what ddmin keeps; (b) a campaign
   killed mid-journal and resumed produces a hit list bit-identical to the
   uninterrupted run; and (c) cache eviction — in memory and on disk —
   never changes results, only what gets recomputed. *)

module Cas = Tbct_store.Cas
module Journal = Tbct_store.Journal
module Bugbank = Tbct_store.Bugbank
module Run_codec = Tbct_store.Run_codec

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "tbct-test-store-%d-%d" (Unix.getpid ()) !counter)
    in
    let rec rm path =
      match (Unix.lstat path).Unix.st_kind with
      | Unix.S_DIR ->
          Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
          Unix.rmdir path
      | _ -> Sys.remove path
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
    in
    rm dir;
    dir

(* ------------------------------------------------------------------ *)
(* Codecs: exact round trips *)

(* NaN payloads do round-trip (the text codec's #bits escape, the binary
   codec's Int64 bits) — the hostile-float properties live in
   test_compile.ml; this generator scrubs NaN only because the run
   round-trip below compares with structural (=), where nan <> nan *)
let value_gen =
  let open QCheck.Gen in
  let base =
    oneof
      [
        map (fun b -> Spirv_ir.Value.VBool b) bool;
        map (fun i -> Spirv_ir.Value.VInt (Int32.of_int i)) int;
        map
          (fun f -> Spirv_ir.Value.VFloat (if Float.is_nan f then 0.0 else f))
          float;
      ]
  in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then base
          else
            frequency
              [
                (3, base);
                ( 1,
                  map
                    (fun vs -> Spirv_ir.Value.VComposite (Array.of_list vs))
                    (list_size (int_range 0 4) (self (n / 2))) );
              ])
        (min n 8))

let value_arb = QCheck.make ~print:Run_codec.value_to_string value_gen

let qcheck_value_roundtrip =
  QCheck.Test.make ~name:"value codec round-trips exactly" ~count:500 value_arb
    (fun v ->
      match Run_codec.value_of_string (Run_codec.value_to_string v) with
      | Some v' -> Spirv_ir.Value.equal v v'
      | None -> false)

let run_result_gen =
  let open QCheck.Gen in
  let image =
    int_range 1 5 >>= fun width ->
    int_range 1 5 >>= fun height ->
    list_repeat (width * height)
      (oneof
         [
           return Spirv_ir.Image.Killed;
           map (fun v -> Spirv_ir.Image.Color v) value_gen;
         ])
    >|= fun pixels ->
    let img = Spirv_ir.Image.create ~width ~height in
    List.iteri (fun i p -> img.Spirv_ir.Image.pixels.(i) <- p) pixels;
    img
  in
  oneof
    [
      return Compilers.Backend.Compiled_ok;
      map (fun s -> Compilers.Backend.Crashed s) (string_size (int_range 0 40));
      map (fun img -> Compilers.Backend.Rendered img) image;
    ]

let qcheck_run_roundtrip =
  QCheck.Test.make ~name:"run-result codec round-trips exactly" ~count:200
    (QCheck.make run_result_gen) (fun r ->
      (* exclude newline-bearing crash signatures? no: the codec must quote *)
      match Run_codec.decode_run (Run_codec.encode_run r) with
      | Some r' -> r = r'
      | None -> false)

let test_run_codec_rejects_corruption () =
  let r =
    Compilers.Backend.Rendered
      (let img = Spirv_ir.Image.create ~width:2 ~height:2 in
       img.Spirv_ir.Image.pixels.(0) <-
         Spirv_ir.Image.Color (Spirv_ir.Value.VFloat 0.5);
       img)
  in
  let enc = Run_codec.encode_run r in
  Alcotest.(check bool) "truncated object decodes to None" true
    (Run_codec.decode_run (String.sub enc 0 (String.length enc / 2)) = None);
  Alcotest.(check bool) "garbage decodes to None" true
    (Run_codec.decode_run "not a run result" = None)

let test_module_codec_roundtrip () =
  List.iter
    (fun (name, m) ->
      match Run_codec.decode_module (Run_codec.encode_module m) with
      | None -> Alcotest.failf "%s: module codec failed to decode" name
      | Some m' ->
          Alcotest.(check string)
            (name ^ ": digest stable across module codec")
            (Spirv_ir.Digest.of_module m)
            (Spirv_ir.Digest.of_module m'))
    (Lazy.force Corpus.lowered_references)

let test_verdict_codec_roundtrip () =
  let verdicts =
    [
      Compilers.Tv.Equivalent;
      Compilers.Tv.Mismatch
        {
          Compilers.Tv.w_slot = "output";
          w_before = "construct(OpFSub(x,0),1)";
          w_after = "{0,1}";
        };
      Compilers.Tv.Mismatch
        { Compilers.Tv.w_slot = "kill"; w_before = "false"; w_after = "\"\t\n" };
      Compilers.Tv.Abstained "data-dependent back edge";
      Compilers.Tv.Abstained "";
    ]
  in
  List.iter
    (fun v ->
      match Run_codec.decode_verdict (Run_codec.encode_verdict v) with
      | Some v' ->
          Alcotest.(check bool)
            ("verdict round-trips: " ^ Compilers.Tv.verdict_to_string v)
            true
            (Compilers.Tv.equal_verdict v v')
      | None ->
          Alcotest.failf "verdict failed to decode: %s"
            (Compilers.Tv.verdict_to_string v))
    verdicts;
  Alcotest.(check bool) "garbage decodes to None" true
    (Run_codec.decode_verdict "not a verdict" = None);
  Alcotest.(check bool) "truncated mismatch decodes to None" true
    (Run_codec.decode_verdict "mismatch \"output\" \"a\"" = None)

(* ------------------------------------------------------------------ *)
(* Cas *)

let qcheck_cas_roundtrip =
  let dir = lazy (fresh_dir ()) in
  QCheck.Test.make ~name:"cas put/get round-trips arbitrary bytes" ~count:100
    QCheck.(string)
    (fun data ->
      let cas = Cas.open_ ~root:(Lazy.force dir) () in
      let key = Cas.key_of_string data in
      Cas.put cas ~key data;
      Cas.get cas ~key = Some data)

let test_cas_basics () =
  let root = fresh_dir () in
  let cas = Cas.open_ ~root () in
  let key = Cas.key_of_string "hello" in
  Alcotest.(check bool) "miss before put" true (Cas.get cas ~key = None);
  Cas.put cas ~key "payload";
  Alcotest.(check bool) "mem after put" true (Cas.mem cas ~key);
  Alcotest.(check bool) "hit after put" true (Cas.get cas ~key = Some "payload");
  (* a different handle on the same root sees the object (persistence) *)
  let cas2 = Cas.open_ ~root () in
  Alcotest.(check bool) "visible to a fresh handle" true
    (Cas.get cas2 ~key = Some "payload");
  let s = Cas.stats cas2 in
  Alcotest.(check int) "fresh handle indexed the object" 1 s.Cas.objects;
  Alcotest.(check int) "bytes accounted" (String.length "payload") s.Cas.bytes

let test_cas_size_bound_on_put () =
  let root = fresh_dir () in
  (* each object is 10 bytes; bound at 35 keeps at most 3 *)
  let cas = Cas.open_ ~max_bytes:35 ~root () in
  for i = 0 to 9 do
    Cas.put cas ~key:(Cas.key_of_string (string_of_int i)) (Printf.sprintf "%010d" i)
  done;
  let s = Cas.stats cas in
  Alcotest.(check bool) "size bound respected" true (s.Cas.bytes <= 35);
  Alcotest.(check bool) "evictions counted" true (s.Cas.evictions > 0);
  (* the most recent object must have survived *)
  Alcotest.(check bool) "most recent object survives" true
    (Cas.mem cas ~key:(Cas.key_of_string "9"))

let test_cas_gc_lru_order () =
  let root = fresh_dir () in
  let cas = Cas.open_ ~root () in
  let key i = Cas.key_of_string (string_of_int i) in
  for i = 0 to 4 do
    Cas.put cas ~key:(key i) (Printf.sprintf "%04d" i)
  done;
  (* touch 0 and 1 so 2 becomes the least recently used *)
  ignore (Cas.get cas ~key:(key 0));
  ignore (Cas.get cas ~key:(key 1));
  let evicted = Cas.gc ~max_bytes:16 cas in
  Alcotest.(check int) "gc evicted exactly one object" 1 evicted;
  Alcotest.(check bool) "LRU object evicted" false (Cas.mem cas ~key:(key 2));
  Alcotest.(check bool) "recently-used objects kept" true
    (Cas.mem cas ~key:(key 0) && Cas.mem cas ~key:(key 1))

let test_cas_concurrent_domains () =
  let root = fresh_dir () in
  let cas = Cas.open_ ~root () in
  let writer d () =
    for i = 0 to 49 do
      (* half the keys are shared between domains, half are private *)
      let name =
        if i mod 2 = 0 then Printf.sprintf "shared-%d" i
        else Printf.sprintf "private-%d-%d" d i
      in
      Cas.put cas ~key:(Cas.key_of_string name) name;
      ignore (Cas.get cas ~key:(Cas.key_of_string name))
    done
  in
  let domains = List.init 4 (fun d -> Domain.spawn (writer d)) in
  List.iter Domain.join domains;
  for d = 0 to 3 do
    for i = 0 to 49 do
      let name =
        if i mod 2 = 0 then Printf.sprintf "shared-%d" i
        else Printf.sprintf "private-%d-%d" d i
      in
      Alcotest.(check bool)
        (name ^ " readable after concurrent writes")
        true
        (Cas.get cas ~key:(Cas.key_of_string name) = Some name)
    done
  done

(* ------------------------------------------------------------------ *)
(* Journal *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let with_journal records =
  let dir = fresh_dir () in
  let path = Filename.concat dir "j.log" in
  let j = Journal.open_append ~path () in
  List.iter (Journal.append j) records;
  Journal.close j;
  path

let test_journal_roundtrip () =
  let records = [ "alpha"; "beta with spaces"; "gamma\tand tab" ] in
  let path = with_journal records in
  let r = Journal.replay ~path in
  Alcotest.(check (list string)) "all records replayed" records r.Journal.records;
  Alcotest.(check bool) "nothing dropped" false r.Journal.dropped

let test_journal_rejects_newline () =
  let path = Filename.concat (fresh_dir ()) "j.log" in
  let j = Journal.open_append ~path () in
  Alcotest.check_raises "newline payload rejected"
    (Invalid_argument "Journal.append: payload must be a single line")
    (fun () -> Journal.append j "two\nlines");
  Journal.close j

let test_journal_truncated_tail () =
  let records = [ "one"; "two"; "three" ] in
  let path = with_journal records in
  let text = read_file path in
  (* cut into the middle of the last record: a killed writer *)
  write_file path (String.sub text 0 (String.length text - 5));
  let r = Journal.replay ~path in
  Alcotest.(check (list string)) "valid prefix survives" [ "one"; "two" ]
    r.Journal.records;
  Alcotest.(check bool) "truncation detected" true r.Journal.dropped

let test_journal_corrupted_tail () =
  let records = [ "one"; "two"; "three" ] in
  let path = with_journal records in
  let text = read_file path in
  (* flip a payload byte in the last record: checksum must catch it *)
  let b = Bytes.of_string text in
  Bytes.set b (Bytes.length b - 2) '!';
  write_file path (Bytes.to_string b);
  let r = Journal.replay ~path in
  Alcotest.(check (list string)) "valid prefix survives" [ "one"; "two" ]
    r.Journal.records;
  Alcotest.(check bool) "corruption detected" true r.Journal.dropped

let test_journal_truncate_then_append () =
  let path = with_journal [ "one"; "two"; "three" ] in
  let text = read_file path in
  write_file path (String.sub text 0 (String.length text - 5));
  let r = Journal.replay ~path in
  (* the resume protocol: cut the torn suffix, then append *)
  Journal.truncate ~path ~bytes:r.Journal.valid_bytes;
  let j = Journal.open_append ~path () in
  Journal.append j "four";
  Journal.close j;
  let r' = Journal.replay ~path in
  Alcotest.(check (list string)) "appended record readable after recovery"
    [ "one"; "two"; "four" ] r'.Journal.records;
  Alcotest.(check bool) "journal healed" false r'.Journal.dropped

(* ------------------------------------------------------------------ *)
(* Bug bank *)

let test_bugbank_record_and_reload () =
  let dir = fresh_dir () in
  let bank = Bugbank.load ~dir in
  let types = [ "AddDeadBlock"; "DontInline" ] in
  Alcotest.(check bool) "first record is new" true
    (Bugbank.record bank ~target:"SwiftShader" ~bug_id:"b1" ~types = `New);
  Alcotest.(check bool) "same signature is known" true
    (Bugbank.record bank ~target:"SwiftShader" ~bug_id:"b1-again" ~types = `Known);
  Alcotest.(check bool) "same types on another target are new" true
    (Bugbank.record bank ~target:"Mesa" ~bug_id:"b1" ~types = `New);
  Bugbank.save bank;
  let bank' = Bugbank.load ~dir in
  Alcotest.(check int) "reloaded size" 2 (Bugbank.size bank');
  Alcotest.(check bool) "reloaded bank knows the signature" true
    (Bugbank.mem bank' ~target:"SwiftShader" ~types);
  (* type order must not matter *)
  Alcotest.(check bool) "signature is order-insensitive" true
    (Bugbank.mem bank' ~target:"SwiftShader"
       ~types:[ "DontInline"; "AddDeadBlock" ])

let test_bugbank_import_and_corruption () =
  let dir_a = fresh_dir () and dir_b = fresh_dir () in
  let a = Bugbank.load ~dir:dir_a in
  ignore (Bugbank.record a ~target:"Mesa" ~bug_id:"m1" ~types:[ "MoveBlockDown" ]);
  ignore (Bugbank.record a ~target:"Mesa" ~bug_id:"m2" ~types:[]);
  let b = Bugbank.load ~dir:dir_b in
  ignore (Bugbank.record b ~target:"Mesa" ~bug_id:"m1" ~types:[ "MoveBlockDown" ]);
  Alcotest.(check int) "import merges only the new signature" 1
    (Bugbank.import b (Bugbank.to_string a));
  Alcotest.(check int) "merged size" 2 (Bugbank.size b);
  (* a corrupt line degrades to a smaller bank, not a failure *)
  Bugbank.save b;
  let path = Filename.concat dir_b "bugbank.txt" in
  write_file path (read_file path ^ "garbage line without tabs\n");
  Alcotest.(check int) "corrupt line skipped on load" 2
    (Bugbank.size (Bugbank.load ~dir:dir_b))

(* ------------------------------------------------------------------ *)
(* Engine: bounded memo tables and the disk store backend *)

let gradient = lazy (List.assoc "gradient" (Lazy.force Corpus.lowered_references))

let test_engine_memo_eviction () =
  (* a tiny cap forces evictions; results must be unaffected *)
  let engine = Harness.Engine.create ~memo_capacity:2 () in
  let input = Corpus.default_input in
  let refs = Lazy.force Corpus.lowered_references in
  let t = Compilers.Target.swiftshader in
  let first = List.map (fun (_, m) -> Harness.Engine.run engine t m input) refs in
  let again = List.map (fun (_, m) -> Harness.Engine.run engine t m input) refs in
  Alcotest.(check bool) "evicted entries recompute to identical results" true
    (first = again);
  let s = Harness.Engine.stats engine in
  Alcotest.(check bool) "entry count bounded by capacity" true
    (s.Harness.Engine.memo_entries <= 2 * s.Harness.Engine.memo_capacity);
  Alcotest.(check int) "capacity reported" 2 s.Harness.Engine.memo_capacity;
  Alcotest.(check bool) "evictions counted" true
    (s.Harness.Engine.memo_evictions > 0)

let test_engine_optimize_memoized () =
  let engine = Harness.Engine.create () in
  let m = Lazy.force gradient in
  let o1 = Harness.Engine.optimize engine m in
  let o2 = Harness.Engine.optimize engine m in
  Alcotest.(check bool) "memoized optimize returns the same module" true
    (o1 = o2);
  let s = Harness.Engine.stats engine in
  Alcotest.(check int) "optimizer ran once" 1 s.Harness.Engine.opt_runs;
  Alcotest.(check int) "second call served from memo" 1 s.Harness.Engine.opt_hits

let test_engine_store_shares_runs_and_opts () =
  let dir = fresh_dir () in
  let m = Lazy.force gradient in
  let input = Corpus.default_input in
  let t = Compilers.Target.swiftshader in
  (* first engine executes and writes through *)
  let e1 = Harness.Engine.create ~store:(Harness.Persist.open_cas ~dir ()) () in
  let r1 = Harness.Engine.run e1 t m input in
  let o1 = Harness.Engine.optimize e1 m in
  let s1 = Harness.Engine.stats e1 in
  Alcotest.(check bool) "cold engine wrote through" true
    (s1.Harness.Engine.store_writes > 0);
  (* second engine has cold memory but a warm disk store *)
  let e2 = Harness.Engine.create ~store:(Harness.Persist.open_cas ~dir ()) () in
  let r2 = Harness.Engine.run e2 t m input in
  let o2 = Harness.Engine.optimize e2 m in
  let s2 = Harness.Engine.stats e2 in
  Alcotest.(check bool) "run served from disk, not executed" true
    (s2.Harness.Engine.runs_executed = 0 && s2.Harness.Engine.store_hits = 1);
  Alcotest.(check bool) "optimize served from disk, not run" true
    (s2.Harness.Engine.opt_runs = 0 && s2.Harness.Engine.opt_hits = 1);
  Alcotest.(check bool) "disk-served results identical" true
    (r1 = r2 && o1 = o2)

let test_engine_tv_memoized () =
  let dir = fresh_dir () in
  let m = Lazy.force gradient in
  let m' =
    match Compilers.Optimizer.optimize m with
    | Ok m' -> m'
    | Error e -> Alcotest.failf "optimize failed: %s" e
  in
  let e1 = Harness.Engine.create ~store:(Harness.Persist.open_cas ~dir ()) () in
  let v1 = Harness.Engine.tv_check e1 ~before:m ~after:m' in
  let v2 = Harness.Engine.tv_check e1 ~before:m ~after:m' in
  Alcotest.(check bool) "memoized verdict identical" true
    (Compilers.Tv.equal_verdict v1 v2);
  let s1 = Harness.Engine.stats e1 in
  Alcotest.(check int) "two checks requested" 2 s1.Harness.Engine.tv_checks;
  Alcotest.(check int) "second served from the memory memo" 1
    s1.Harness.Engine.tv_hits;
  (* identical digests short-circuit without validating *)
  let v_same = Harness.Engine.tv_check e1 ~before:m ~after:m in
  Alcotest.(check bool) "equal digests are trivially Equivalent" true
    (Compilers.Tv.equal_verdict v_same Compilers.Tv.Equivalent);
  Alcotest.(check int) "fast path counted as a hit" 2
    (Harness.Engine.stats e1).Harness.Engine.tv_hits;
  (* a fresh engine on the same store serves the verdict from disk *)
  let e2 = Harness.Engine.create ~store:(Harness.Persist.open_cas ~dir ()) () in
  let v3 = Harness.Engine.tv_check e2 ~before:m ~after:m' in
  Alcotest.(check bool) "disk-served verdict identical" true
    (Compilers.Tv.equal_verdict v1 v3);
  let s2 = Harness.Engine.stats e2 in
  Alcotest.(check int) "warm engine served the verdict from the CAS" 1
    s2.Harness.Engine.tv_hits;
  Alcotest.(check bool) "no symbolic validation billed on the warm engine" true
    (List.assoc_opt "tv" s2.Harness.Engine.stages = None)

(* ------------------------------------------------------------------ *)
(* Campaign persistence: kill and resume *)

let scale = { Harness.Experiments.default_scale with Harness.Experiments.seeds = 14 }
let tool = Harness.Pipeline.Spirv_fuzz_tool
let baseline_hits = lazy (Harness.Experiments.run_campaign ~scale tool)

let outcome_or_fail = function
  | Ok (o : Harness.Persist.outcome) -> o
  | Error e -> Alcotest.failf "campaign failed: %s" e

let run_persisted ?resume dir =
  outcome_or_fail (Harness.Persist.run_campaign ~scale ?resume ~dir tool)

let kill_journal ~keep_fraction dir =
  let path = Harness.Persist.journal_path dir in
  let text = read_file path in
  let keep = String.length text * keep_fraction / 100 in
  write_file path (String.sub text 0 keep)

let test_campaign_store_matches_plain () =
  let dir = fresh_dir () in
  let o = run_persisted dir in
  Alcotest.(check bool) "persisted campaign matches the plain one" true
    (o.Harness.Persist.hits = Lazy.force baseline_hits);
  Alcotest.(check int) "nothing skipped on a fresh run" 0
    o.Harness.Persist.seeds_skipped

let test_campaign_resume_after_truncation () =
  let dir = fresh_dir () in
  let o0 = run_persisted dir in
  kill_journal ~keep_fraction:60 dir;
  let o1 = run_persisted ~resume:true dir in
  Alcotest.(check bool) "kill detected" true o1.Harness.Persist.journal_dropped;
  Alcotest.(check bool) "some seeds replayed, some re-run" true
    (o1.Harness.Persist.seeds_skipped > 0 && o1.Harness.Persist.seeds_run > 0);
  Alcotest.(check bool) "resumed hit list is bit-identical" true
    (o1.Harness.Persist.hits = o0.Harness.Persist.hits);
  (* the journal must have healed: a second resume recomputes nothing *)
  let o2 = run_persisted ~resume:true dir in
  Alcotest.(check int) "second resume runs no seeds" 0
    o2.Harness.Persist.seeds_run;
  Alcotest.(check bool) "second resume still bit-identical" true
    (o2.Harness.Persist.hits = o0.Harness.Persist.hits)

let test_campaign_resume_after_corruption () =
  let dir = fresh_dir () in
  let o0 = run_persisted dir in
  (* flip a byte inside the final record instead of truncating *)
  let path = Harness.Persist.journal_path dir in
  let b = Bytes.of_string (read_file path) in
  Bytes.set b (Bytes.length b - 3) '#';
  write_file path (Bytes.to_string b);
  let o1 = run_persisted ~resume:true dir in
  Alcotest.(check bool) "corruption detected" true
    o1.Harness.Persist.journal_dropped;
  Alcotest.(check bool) "resumed hit list is bit-identical" true
    (o1.Harness.Persist.hits = o0.Harness.Persist.hits)

(* extending a finished campaign: resume at a larger scale replays the
   recorded seeds and computes only the new ones, bit-identically to a
   fresh run at the larger scale *)
let test_campaign_resume_extends () =
  let small = { scale with Harness.Experiments.seeds = 6 } in
  let dir = fresh_dir () in
  let o0 =
    outcome_or_fail (Harness.Persist.run_campaign ~scale:small ~dir tool)
  in
  Alcotest.(check (option int)) "fresh campaign is not an extension" None
    o0.Harness.Persist.extended_from;
  (* grow 0..5 to 0..13 *)
  let o1 =
    outcome_or_fail
      (Harness.Persist.run_campaign ~scale ~resume:true ~dir tool)
  in
  Alcotest.(check (option int)) "extension recorded" (Some 6)
    o1.Harness.Persist.extended_from;
  Alcotest.(check int) "all recorded seeds replayed" 6
    o1.Harness.Persist.seeds_skipped;
  Alcotest.(check int) "only the new seeds executed" 8
    o1.Harness.Persist.seeds_run;
  let fresh =
    outcome_or_fail
      (Harness.Persist.run_campaign ~scale ~dir:(fresh_dir ()) tool)
  in
  Alcotest.(check bool) "extended hit list bit-identical to a fresh run" true
    (o1.Harness.Persist.hits = fresh.Harness.Persist.hits);
  (* the journal now self-describes the new extent: a further resume at the
     same scale recomputes nothing and is no longer an extension *)
  let o2 =
    outcome_or_fail
      (Harness.Persist.run_campaign ~scale ~resume:true ~dir tool)
  in
  Alcotest.(check int) "nothing re-run after the extension" 0
    o2.Harness.Persist.seeds_run;
  Alcotest.(check (option int)) "same scale is not an extension" None
    o2.Harness.Persist.extended_from;
  Alcotest.(check bool) "still bit-identical" true
    (o2.Harness.Persist.hits = fresh.Harness.Persist.hits)

exception Hook_blew_up

(* a user on_seed hook that raises mid-campaign: the exception must
   propagate, the journal fd must still be closed (Fun.protect), and the
   seeds journaled before the raise must resume into a bit-identical run *)
let test_campaign_raising_hook_leaves_replayable_journal () =
  let dir = fresh_dir () in
  (match
     Harness.Persist.run_campaign ~scale ~domains:3
       ~on_seed:(fun seed _ -> if seed >= 7 then raise Hook_blew_up)
       ~dir tool
   with
  | Ok _ -> Alcotest.fail "raising on_seed hook did not propagate"
  | Error e -> Alcotest.failf "campaign refused instead of raising: %s" e
  | exception Hook_blew_up -> ());
  (* the journal left behind replays cleanly and a resume completes the
     campaign bit-identically to an uninterrupted run *)
  let replay =
    Tbct_store.Journal.replay ~path:(Harness.Persist.journal_path dir)
  in
  Alcotest.(check bool) "aborted journal has a valid prefix" true
    (List.length replay.Tbct_store.Journal.records > 1);
  let o = run_persisted ~resume:true dir in
  Alcotest.(check bool) "seeds recorded before the raise were replayed" true
    (o.Harness.Persist.seeds_skipped > 0);
  Alcotest.(check bool) "resumed hit list bit-identical to uninterrupted" true
    (o.Harness.Persist.hits = Lazy.force baseline_hits)

let test_campaign_resume_refuses_other_tool () =
  let dir = fresh_dir () in
  ignore (run_persisted dir);
  match
    Harness.Persist.run_campaign ~scale ~resume:true ~dir
      Harness.Pipeline.Glsl_fuzz_tool
  with
  | Ok _ -> Alcotest.fail "resume with a different tool must be refused"
  | Error e ->
      let contains hay needle =
        let n = String.length needle in
        let rec go i =
          i + n <= String.length hay
          && (String.equal (String.sub hay i n) needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "error names the journal's tool" true
        (contains e "spirv-fuzz")

(* ------------------------------------------------------------------ *)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "store"
    [
      ( "codec",
        qcheck [ qcheck_value_roundtrip; qcheck_run_roundtrip ]
        @ [
            Alcotest.test_case "corruption rejected" `Quick
              test_run_codec_rejects_corruption;
            Alcotest.test_case "module round trip" `Quick
              test_module_codec_roundtrip;
            Alcotest.test_case "verdict round trip" `Quick
              test_verdict_codec_roundtrip;
          ] );
      ( "cas",
        qcheck [ qcheck_cas_roundtrip ]
        @ [
            Alcotest.test_case "basics & persistence" `Quick test_cas_basics;
            Alcotest.test_case "size bound on put" `Quick
              test_cas_size_bound_on_put;
            Alcotest.test_case "gc evicts LRU first" `Quick
              test_cas_gc_lru_order;
            Alcotest.test_case "concurrent domain writers" `Quick
              test_cas_concurrent_domains;
          ] );
      ( "journal",
        [
          Alcotest.test_case "round trip" `Quick test_journal_roundtrip;
          Alcotest.test_case "newline rejected" `Quick
            test_journal_rejects_newline;
          Alcotest.test_case "truncated tail dropped" `Quick
            test_journal_truncated_tail;
          Alcotest.test_case "corrupted tail dropped" `Quick
            test_journal_corrupted_tail;
          Alcotest.test_case "truncate then append heals" `Quick
            test_journal_truncate_then_append;
        ] );
      ( "bugbank",
        [
          Alcotest.test_case "record & reload" `Quick
            test_bugbank_record_and_reload;
          Alcotest.test_case "import & corruption" `Quick
            test_bugbank_import_and_corruption;
        ] );
      ( "engine",
        [
          Alcotest.test_case "memo eviction is invisible" `Quick
            test_engine_memo_eviction;
          Alcotest.test_case "optimize memoized" `Quick
            test_engine_optimize_memoized;
          Alcotest.test_case "disk store shared across engines" `Quick
            test_engine_store_shares_runs_and_opts;
          Alcotest.test_case "tv verdicts memoized (memory + disk)" `Quick
            test_engine_tv_memoized;
        ] );
      ( "resume",
        [
          Alcotest.test_case "store-backed campaign = plain" `Slow
            test_campaign_store_matches_plain;
          Alcotest.test_case "kill (truncated) + resume" `Slow
            test_campaign_resume_after_truncation;
          Alcotest.test_case "kill (corrupted) + resume" `Slow
            test_campaign_resume_after_corruption;
          Alcotest.test_case "raising on_seed leaves a replayable journal"
            `Slow test_campaign_raising_hook_leaves_replayable_journal;
          Alcotest.test_case "resume refuses another tool" `Quick
            test_campaign_resume_refuses_other_tool;
          Alcotest.test_case "resume extends a finished campaign" `Slow
            test_campaign_resume_extends;
        ] );
    ]
