(* Registry-derived properties: the one table in Spirv_fuzz.Registry must
   stay a bijection with the transformation catalogue, derive the same
   pass list / dedup ignore set the consumers used to hard-code, and its
   per-entry hooks must respect the paper's contract — generated
   opportunities satisfy their precondition and apply preserves
   validity, lint cleanliness and the rendered image.  Also pins the
   zero-drift guarantee: uniform weights reproduce the historical RNG
   stream bit for bit, and non-uniform weights really shift sampling. *)

open Spirv_ir
module Registry = Spirv_fuzz.Registry

let catalogue = Spirv_fuzz.Transformation.catalogue
let entry_ids = List.map (fun (e : Registry.entry) -> e.Registry.type_id) Registry.all

(* ------------------------------------------------------------------ *)
(* completeness: table <-> catalogue bijection                         *)

let test_completeness () =
  Alcotest.(check int)
    "one entry per transformation type" (List.length catalogue)
    (List.length entry_ids);
  List.iter
    (fun id ->
      Alcotest.(check bool) ("registry covers " ^ id) true (List.mem id entry_ids))
    catalogue;
  List.iter
    (fun id ->
      Alcotest.(check bool) ("catalogue covers " ^ id) true (List.mem id catalogue))
    entry_ids;
  let sorted = List.sort_uniq String.compare entry_ids in
  Alcotest.(check int) "no duplicate entries" (List.length entry_ids)
    (List.length sorted)

let test_find () =
  List.iter
    (fun id ->
      match Registry.find id with
      | Some e -> Alcotest.(check string) "find returns the entry" id e.Registry.type_id
      | None -> Alcotest.failf "Registry.find %s returned None" id)
    catalogue;
  Alcotest.(check bool) "unknown id is None" true
    (Option.is_none (Registry.find "NoSuchTransformation"))

(* ------------------------------------------------------------------ *)
(* derived consumers: pass list and dedup ignore set                   *)

let test_pass_names () =
  let pass_names = Registry.pass_names in
  let all_names = List.map (fun (p : Spirv_fuzz.Pass.t) -> p.Spirv_fuzz.Pass.name) Spirv_fuzz.Pass.all in
  Alcotest.(check (list string)) "Pass.all is ordered by the registry"
    pass_names all_names;
  (* every named pass is the proposer of at least one entry *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " proposes an entry") true
        (List.exists
           (fun (e : Registry.entry) -> e.Registry.pass = Some name)
           Registry.all))
    pass_names

let test_dedup_ignored () =
  (* the section 3.5 ignore list the consumers used to hard-code *)
  let expected =
    [
      "AddType"; "AddConstant"; "AddNop"; "SplitBlock"; "ReplaceIdWithSynonym";
      "AddFunction"; "AddGlobalVariable"; "AddLocalVariable"; "AddUniform";
    ]
  in
  Alcotest.(check (list string)) "dedup ignore set from the dedup_relevant flags"
    (List.sort String.compare expected)
    (Spirv_fuzz.Dedup.String_set.elements Registry.dedup_ignored);
  List.iter
    (fun (e : Registry.entry) ->
      Alcotest.(check bool)
        (e.Registry.type_id ^ " flag matches the ignore set")
        (not e.Registry.dedup_relevant)
        (Spirv_fuzz.Dedup.String_set.mem e.Registry.type_id Registry.dedup_ignored))
    Registry.all

(* ------------------------------------------------------------------ *)
(* weights                                                             *)

let test_parse_weights () =
  (match Registry.parse_weights "control_flow=5, data=2" with
  | Ok w ->
      Alcotest.(check int) "two overrides parsed" 2 (List.length w);
      Alcotest.(check bool) "control_flow=5" true
        (List.mem (Registry.Control_flow, 5) w)
  | Error e -> Alcotest.failf "parse_weights rejected valid input: %s" e);
  (match Registry.parse_weights "obfuscation=0" with
  | Ok [ (Registry.Obfuscation, 0) ] -> ()
  | Ok _ -> Alcotest.fail "unexpected parse"
  | Error e -> Alcotest.failf "zero weight must parse: %s" e);
  Alcotest.(check bool) "unknown family rejected" true
    (Result.is_error (Registry.parse_weights "nonsense=3"));
  Alcotest.(check bool) "negative weight rejected" true
    (Result.is_error (Registry.parse_weights "data=-1"));
  Alcotest.(check bool) "malformed pair rejected" true
    (Result.is_error (Registry.parse_weights "data"))

let test_pass_weight () =
  List.iter
    (fun name ->
      Alcotest.(check int) ("uniform weight of " ^ name) 1
        (Registry.pass_weight name))
    Registry.pass_names;
  Alcotest.(check int) "unknown pass weighs 0" 0
    (Registry.pass_weight "no_such_pass");
  let w = [ (Registry.Control_flow, 7) ] in
  Alcotest.(check int) "family multiplier applies" 7
    (Registry.pass_weight ~weights:w "split_blocks");
  Alcotest.(check int) "other families keep weight 1" 1
    (Registry.pass_weight ~weights:w "add_loads")

(* ------------------------------------------------------------------ *)
(* per-entry contract: gen -> precondition -> apply preserves all      *)

(* fuzzer-enriched contexts: realistic modules with facts (dead blocks,
   synonyms, irrelevant ids) so fact-driven gens have material to work
   with.  Built once — rendering every (entry, ctx, salt) apply result is
   the expensive part, so keep the context count small. *)
let enriched =
  lazy
    (let refs = Lazy.force Corpus.lowered_references in
     let donors = List.map snd (Lazy.force Corpus.lowered_donors) in
     let config =
       {
         Spirv_fuzz.Fuzzer.default_config with
         Spirv_fuzz.Fuzzer.donors;
         Spirv_fuzz.Fuzzer.max_transformations = 40;
         Spirv_fuzz.Fuzzer.max_passes = 20;
       }
     in
     List.map
       (fun seed ->
         let _, m = List.nth refs (seed mod List.length refs) in
         let ctx = Spirv_fuzz.Context.make m Corpus.default_input in
         (Spirv_fuzz.Fuzzer.run ~config ~seed ctx).Spirv_fuzz.Fuzzer.final)
       [ 1; 2; 5 ])

let render_exn what (ctx : Spirv_fuzz.Context.t) =
  match Interp.render ctx.Spirv_fuzz.Context.m ctx.Spirv_fuzz.Context.input with
  | Ok img -> img
  | Error t -> Alcotest.failf "%s render trapped: %s" what (Interp.trap_to_string t)

(* one generated opportunity checked end to end; returns whether the gen
   produced anything on this (ctx, salt) *)
let check_one (e : Registry.entry) (ctx : Spirv_fuzz.Context.t) salt =
  let rng = Tbct.Rng.make salt in
  match e.Registry.gen ctx rng with
  | None -> false
  | Some (ctx', t) ->
      Alcotest.(check string)
        ("gen emits its own type: " ^ e.Registry.type_id)
        e.Registry.type_id
        (Spirv_fuzz.Transformation.type_id t);
      Alcotest.(check bool)
        ("generated opportunity satisfies precondition: " ^ e.Registry.type_id)
        true
        (Registry.precondition ctx' t);
      let before_img = render_exn (e.Registry.type_id ^ " before") ctx' in
      let before_lint =
        Lint.error_count (Lint.check_module ctx'.Spirv_fuzz.Context.m)
      in
      let after = Registry.apply ctx' t in
      (match Validate.check after.Spirv_fuzz.Context.m with
      | Ok () -> ()
      | Error (err :: _) ->
          Alcotest.failf "%s apply broke validation: %s" e.Registry.type_id
            (Validate.error_to_string err)
      | Error [] -> Alcotest.fail "invalid");
      Alcotest.(check bool)
        (e.Registry.type_id ^ " apply introduces no lint errors")
        true
        (Lint.error_count (Lint.check_module after.Spirv_fuzz.Context.m)
        <= before_lint);
      let after_img = render_exn (e.Registry.type_id ^ " after") after in
      Alcotest.(check bool)
        (e.Registry.type_id ^ " apply preserves the image")
        true
        (Image.equal before_img after_img);
      true

let test_entry_contracts () =
  let ctxs = Lazy.force enriched in
  let generated =
    List.filter
      (fun (e : Registry.entry) ->
        let hits = ref 0 in
        List.iter
          (fun ctx ->
            List.iter
              (fun salt -> if check_one e ctx salt then incr hits)
              [ 11; 23; 47 ])
          ctxs;
        !hits > 0)
      Registry.all
  in
  (* not every type finds an opportunity on every module (e.g. facts the
     fuzzer never recorded), but the overwhelming majority must *)
  Alcotest.(check bool)
    (Printf.sprintf "most entries generate opportunities (%d of %d)"
       (List.length generated) (List.length Registry.all))
    true
    (List.length generated >= 24)

let prop_gen_respects_contract =
  QCheck.Test.make ~name:"random gen draws satisfy the entry contract"
    ~count:60
    QCheck.(pair (int_bound 30) (int_bound 1_000_000))
    (fun (entry_idx, salt) ->
      let e = List.nth Registry.all (entry_idx mod List.length Registry.all) in
      let ctxs = Lazy.force enriched in
      let ctx = List.nth ctxs (salt mod List.length ctxs) in
      ignore (check_one e ctx salt);
      true)

(* ------------------------------------------------------------------ *)
(* scheduling: zero drift at uniform weights, real drift otherwise     *)

let run_with weights seed =
  let refs = Lazy.force Corpus.lowered_references in
  let donors = List.map snd (Lazy.force Corpus.lowered_donors) in
  let _, m = List.nth refs (seed mod List.length refs) in
  let ctx = Spirv_fuzz.Context.make m Corpus.default_input in
  let config =
    {
      Spirv_fuzz.Fuzzer.default_config with
      Spirv_fuzz.Fuzzer.donors;
      Spirv_fuzz.Fuzzer.weights = weights;
    }
  in
  Spirv_fuzz.Fuzzer.run ~config ~seed ctx

let uniform =
  List.map (fun f -> (f, 1)) Registry.families

let prop_uniform_stream_equality =
  QCheck.Test.make
    ~name:"explicit uniform weights reproduce the default stream bit for bit"
    ~count:8
    QCheck.(int_bound 1_000)
    (fun seed ->
      let a = run_with [] seed in
      let b = run_with uniform seed in
      a.Spirv_fuzz.Fuzzer.transformations = b.Spirv_fuzz.Fuzzer.transformations
      && a.Spirv_fuzz.Fuzzer.passes_run = b.Spirv_fuzz.Fuzzer.passes_run
      && a.Spirv_fuzz.Fuzzer.counters = b.Spirv_fuzz.Fuzzer.counters)

let test_nonuniform_changes_sampling () =
  let differs seed =
    let a = run_with [] seed in
    let b = run_with [ (Registry.Control_flow, 10) ] seed in
    a.Spirv_fuzz.Fuzzer.passes_run <> b.Spirv_fuzz.Fuzzer.passes_run
  in
  Alcotest.(check bool) "control_flow=10 shifts the pass stream" true
    (List.exists differs [ 0; 1; 2; 3; 4 ])

let test_zero_weight_family () =
  (* a family weighted 0 contributes nothing to the random draw: without
     recommendations its passes can never run *)
  let refs = Lazy.force Corpus.lowered_references in
  let _, m = List.nth refs 0 in
  let ctx = Spirv_fuzz.Context.make m Corpus.default_input in
  let config =
    {
      Spirv_fuzz.Fuzzer.default_config with
      Spirv_fuzz.Fuzzer.use_recommendations = false;
      Spirv_fuzz.Fuzzer.weights =
        List.map
          (fun f -> (f, if f = Registry.Control_flow then 0 else 1))
          Registry.families;
    }
  in
  let control_flow_passes =
    List.filter_map
      (fun (e : Registry.entry) ->
        if e.Registry.family = Registry.Control_flow then e.Registry.pass
        else None)
      Registry.all
  in
  List.iter
    (fun seed ->
      let r = Spirv_fuzz.Fuzzer.run ~config ~seed ctx in
      List.iter
        (fun p ->
          Alcotest.(check bool)
            (p ^ " never drawn at weight 0")
            false
            (List.mem p r.Spirv_fuzz.Fuzzer.passes_run))
        control_flow_passes)
    [ 3; 7; 9 ]

(* counters bookkeeping: proposed >= applied, applied sums to the recorded
   sequence length *)
let prop_counters_consistent =
  QCheck.Test.make ~name:"emitter counters tally the recorded stream"
    ~count:10
    QCheck.(int_bound 1_000)
    (fun seed ->
      let r = run_with [] seed in
      let applied_total =
        List.fold_left (fun acc (_, _, a) -> acc + a) 0
          r.Spirv_fuzz.Fuzzer.counters
      in
      List.for_all (fun (_, p, a) -> p >= a && a >= 0) r.Spirv_fuzz.Fuzzer.counters
      && applied_total = List.length r.Spirv_fuzz.Fuzzer.transformations)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "registry"
    [
      ( "table",
        [
          Alcotest.test_case "catalogue bijection" `Quick test_completeness;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "pass list derivation" `Quick test_pass_names;
          Alcotest.test_case "dedup ignore derivation" `Quick test_dedup_ignored;
        ] );
      ( "weights",
        [
          Alcotest.test_case "parse_weights" `Quick test_parse_weights;
          Alcotest.test_case "pass_weight" `Quick test_pass_weight;
          Alcotest.test_case "non-uniform shifts sampling" `Quick
            test_nonuniform_changes_sampling;
          Alcotest.test_case "zero-weight family never drawn" `Quick
            test_zero_weight_family;
        ] );
      ( "contract",
        Alcotest.test_case "every entry generates and preserves" `Slow
          test_entry_contracts
        :: qcheck
             [
               prop_gen_respects_contract; prop_uniform_stream_equality;
               prop_counters_consistent;
             ] );
    ]
