(* Tests for the generic framework: rng, reducer, dedup, spec. *)

let check_list name expected actual =
  Alcotest.(check (list int)) name expected actual

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let g1 = Tbct.Rng.make 42 and g2 = Tbct.Rng.make 42 in
  let draws g = List.init 100 (fun _ -> Tbct.Rng.int g 1000) in
  check_list "same seed, same stream" (draws g1) (draws g2)

let test_rng_different_seeds () =
  let g1 = Tbct.Rng.make 1 and g2 = Tbct.Rng.make 2 in
  let draws g = List.init 50 (fun _ -> Tbct.Rng.int g 1_000_000) in
  Alcotest.(check bool) "different streams" false (draws g1 = draws g2)

let test_rng_bounds () =
  let g = Tbct.Rng.make 7 in
  for _ = 1 to 1000 do
    let x = Tbct.Rng.int g 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_rng_int_in_range () =
  let g = Tbct.Rng.make 3 in
  for _ = 1 to 500 do
    let x = Tbct.Rng.int_in_range g ~lo:(-5) ~hi:5 in
    Alcotest.(check bool) "in range" true (x >= -5 && x <= 5)
  done

let test_rng_split_independent () =
  let g = Tbct.Rng.make 9 in
  let a, b = Tbct.Rng.split g in
  let da = List.init 20 (fun _ -> Tbct.Rng.int a 1000) in
  let db = List.init 20 (fun _ -> Tbct.Rng.int b 1000) in
  Alcotest.(check bool) "split streams differ" false (da = db)

let test_rng_shuffle_permutation () =
  let g = Tbct.Rng.make 11 in
  let xs = List.init 30 Fun.id in
  let ys = Tbct.Rng.shuffle g xs in
  check_list "same multiset" xs (List.sort compare ys)

let test_rng_sample () =
  let g = Tbct.Rng.make 13 in
  let xs = List.init 20 Fun.id in
  let ys = Tbct.Rng.sample g 5 xs in
  Alcotest.(check int) "sample size" 5 (List.length ys);
  Alcotest.(check bool) "sorted (order preserved)" true
    (List.sort compare ys = ys);
  Alcotest.(check bool) "distinct" true
    (List.length (List.sort_uniq compare ys) = 5)

let test_rng_choose_singleton () =
  let g = Tbct.Rng.make 1 in
  Alcotest.(check int) "singleton" 99 (Tbct.Rng.choose g [ 99 ])

let test_rng_chance_extremes () =
  let g = Tbct.Rng.make 5 in
  Alcotest.(check bool) "0/10 never" false (Tbct.Rng.chance g ~num:0 ~den:10);
  Alcotest.(check bool) "10/10 always" true (Tbct.Rng.chance g ~num:10 ~den:10)

(* ------------------------------------------------------------------ *)
(* Reducer *)

let test_reducer_single_culprit () =
  (* only element 7 matters *)
  let xs = List.init 20 Fun.id in
  let reduced, stats = Tbct.Reducer.reduce ~is_interesting:(List.mem 7) xs in
  check_list "minimal" [ 7 ] reduced;
  Alcotest.(check int) "stats.initial" 20 stats.Tbct.Reducer.initial;
  Alcotest.(check int) "stats.kept" 1 stats.Tbct.Reducer.kept

let test_reducer_pair_culprit () =
  (* both 3 and 15 needed *)
  let xs = List.init 20 Fun.id in
  let is_interesting ys = List.mem 3 ys && List.mem 15 ys in
  let reduced, _ = Tbct.Reducer.reduce ~is_interesting xs in
  check_list "minimal pair" [ 3; 15 ] reduced

let test_reducer_all_needed () =
  let xs = [ 1; 2; 3 ] in
  let is_interesting ys = List.length ys = 3 in
  let reduced, _ = Tbct.Reducer.reduce ~is_interesting xs in
  check_list "nothing removable" xs reduced

let test_reducer_none_needed () =
  let xs = List.init 10 Fun.id in
  let reduced, _ = Tbct.Reducer.reduce ~is_interesting:(fun _ -> true) xs in
  check_list "everything removable" [] reduced

let test_reducer_empty_input () =
  let reduced, stats = Tbct.Reducer.reduce ~is_interesting:(fun _ -> true) [] in
  check_list "empty stays empty" [] reduced;
  Alcotest.(check int) "no queries needed beyond the initial check" 1
    stats.Tbct.Reducer.queries

let test_reducer_rejects_boring_input () =
  Alcotest.check_raises "invalid input"
    (Invalid_argument "Reducer.reduce: input sequence is not interesting")
    (fun () -> ignore (Tbct.Reducer.reduce ~is_interesting:(fun _ -> false) [ 1 ]))

let test_reducer_preserves_order () =
  let xs = List.init 30 Fun.id in
  let is_interesting ys = List.mem 5 ys && List.mem 25 ys && List.mem 12 ys in
  let reduced, _ = Tbct.Reducer.reduce ~is_interesting xs in
  check_list "order kept" [ 5; 12; 25 ] reduced

(* 1-minimality property: removing any single element from the result makes
   the test fail. *)
let prop_one_minimal =
  QCheck.Test.make ~name:"reducer result is 1-minimal" ~count:100
    QCheck.(pair (small_list small_nat) (small_list small_nat))
    (fun (xs, needles) ->
      let needles = List.sort_uniq compare needles in
      let xs = List.sort_uniq compare (xs @ needles) in
      let is_interesting ys = List.for_all (fun n -> List.mem n ys) needles in
      let reduced, _ = Tbct.Reducer.reduce ~is_interesting xs in
      (* the reduced list satisfies the predicate... *)
      is_interesting reduced
      (* ...and removing any one element breaks it *)
      && List.for_all
           (fun x ->
             not (is_interesting (List.filter (fun y -> y <> x) reduced)))
           reduced)

let test_reduce_linear_agrees_with_chunked () =
  let xs = List.init 25 Fun.id in
  let is_interesting ys = List.mem 7 ys && List.mem 19 ys in
  let r1, _ = Tbct.Reducer.reduce ~is_interesting xs in
  let r2, s2 = Tbct.Reducer.reduce_linear ~is_interesting xs in
  check_list "same minimal result" r1 r2;
  (* the sweep threads the length instead of recomputing it; the stats it
     reports must still be the true sizes *)
  Alcotest.(check int) "linear stats: initial" (List.length xs)
    s2.Tbct.Reducer.initial;
  Alcotest.(check int) "linear stats: kept" (List.length r2)
    s2.Tbct.Reducer.kept

let prop_linear_one_minimal =
  QCheck.Test.make ~name:"linear reducer result is 1-minimal" ~count:50
    QCheck.(pair (small_list small_nat) (small_list small_nat))
    (fun (xs, needles) ->
      let needles = List.sort_uniq compare needles in
      let xs = List.sort_uniq compare (xs @ needles) in
      let is_interesting ys = List.for_all (fun n -> List.mem n ys) needles in
      let reduced, _ = Tbct.Reducer.reduce_linear ~is_interesting xs in
      is_interesting reduced
      && List.for_all
           (fun x -> not (is_interesting (List.filter (fun y -> y <> x) reduced)))
           reduced)

let test_reducer_cache_counts_fewer_queries () =
  let xs = List.init 16 Fun.id in
  let key ys = String.concat "," (List.map string_of_int ys) in
  let is_interesting ys = List.mem 9 ys in
  let _, s1 = Tbct.Reducer.reduce ~is_interesting xs in
  let _, s2 = Tbct.Reducer.reduce_with_cache ~key ~is_interesting xs in
  Alcotest.(check bool) "cache never evaluates more" true
    (s2.Tbct.Reducer.queries <= s1.Tbct.Reducer.queries)

(* ------------------------------------------------------------------ *)
(* Dedup *)

module SS = Tbct.Dedup.String_set

let mk_config ?(ignored = []) () =
  {
    Tbct.Dedup.types_of = (fun (_, tys) -> SS.of_list tys);
    Tbct.Dedup.ignored = SS.of_list ignored;
  }

let names tests = List.map fst tests

(* The scenario of section 2.1: set A uses {SplitBlock, AddDeadBlock,
   ChangeRHS}, set B uses {AddStore, AddLoad}, the rest mix at least four
   types.  The algorithm should pick one from A and one from B. *)
let test_dedup_paper_scenario () =
  let a i = (Printf.sprintf "a%d" i, [ "SplitBlock"; "AddDeadBlock"; "ChangeRHS" ]) in
  let b i = (Printf.sprintf "b%d" i, [ "AddStore"; "AddLoad" ]) in
  let mixed i =
    (Printf.sprintf "m%d" i, [ "SplitBlock"; "AddDeadBlock"; "ChangeRHS"; "AddStore" ])
  in
  let tests = List.init 35 a @ List.init 42 b @ List.init 23 mixed in
  let selected = Tbct.Dedup.select (mk_config ()) tests in
  Alcotest.(check int) "two reports" 2 (List.length selected);
  Alcotest.(check bool) "one from B (smaller set first)" true
    (List.exists (fun n -> String.length n > 0 && n.[0] = 'b') (names selected));
  Alcotest.(check bool) "one from A" true
    (List.exists (fun n -> String.length n > 0 && n.[0] = 'a') (names selected))

let test_dedup_disjoint_all_selected () =
  let tests = [ ("x", [ "T1" ]); ("y", [ "T2" ]); ("z", [ "T3" ]) ] in
  let selected = Tbct.Dedup.select (mk_config ()) tests in
  Alcotest.(check int) "all selected" 3 (List.length selected)

let test_dedup_prefers_small_type_sets () =
  let tests = [ ("big", [ "T1"; "T2"; "T3" ]); ("small", [ "T1" ]) ] in
  let selected = Tbct.Dedup.select (mk_config ()) tests in
  Alcotest.(check (list string)) "small wins" [ "small" ] (names selected)

let test_dedup_ignored_types () =
  let tests =
    [ ("x", [ "AddType"; "T1" ]); ("y", [ "AddType"; "T2" ]) ]
  in
  (* without the ignore list, x and y conflict on AddType; with it, both are
     selected *)
  let without = Tbct.Dedup.select (mk_config ()) tests in
  let with_ignore = Tbct.Dedup.select (mk_config ~ignored:[ "AddType" ] ()) tests in
  Alcotest.(check int) "conflict without ignoring" 1 (List.length without);
  Alcotest.(check int) "both with ignoring" 2 (List.length with_ignore)

let test_dedup_empty_type_set_dropped () =
  let tests = [ ("empty", []); ("only-ignored", [ "AddType" ]); ("real", [ "T1" ]) ] in
  let selected = Tbct.Dedup.select (mk_config ~ignored:[ "AddType" ] ()) tests in
  Alcotest.(check (list string)) "only the real test" [ "real" ] (names selected)

let test_dedup_empty_input () =
  Alcotest.(check int) "empty" 0 (List.length (Tbct.Dedup.select (mk_config ()) []))

let prop_dedup_disjoint =
  QCheck.Test.make ~name:"dedup selection is pairwise type-disjoint" ~count:200
    QCheck.(small_list (small_list (int_bound 10)))
    (fun raw ->
      let tests =
        List.mapi
          (fun i tys -> (string_of_int i, List.map (Printf.sprintf "T%d") tys))
          raw
      in
      let config = mk_config () in
      let selected = Tbct.Dedup.select config tests in
      Tbct.Dedup.pairwise_disjoint config selected)

let prop_dedup_maximal =
  QCheck.Test.make ~name:"no unselected test is disjoint from all selected"
    ~count:200
    QCheck.(small_list (small_list (int_bound 8)))
    (fun raw ->
      let tests =
        List.mapi
          (fun i tys -> (string_of_int i, List.map (Printf.sprintf "T%d") tys))
          raw
      in
      let config = mk_config () in
      let selected = Tbct.Dedup.select config tests in
      let selected_types =
        List.fold_left
          (fun acc t -> SS.union acc (config.Tbct.Dedup.types_of t))
          SS.empty selected
      in
      List.for_all
        (fun t ->
          let tys = config.Tbct.Dedup.types_of t in
          SS.is_empty tys || not (SS.is_empty (SS.inter tys selected_types)))
        tests)

(* ------------------------------------------------------------------ *)
(* Spec.Apply *)

(* toy language: context is an int list; transformations append values,
   with preconditions on the current head *)
module Toy = struct
  type context = int list
  type transformation = { name : string; needs : int option; appends : int }

  let type_id t = t.name

  let precondition ctx t =
    match t.needs with
    | None -> true
    | Some n -> (match ctx with [] -> false | h :: _ -> h = n)

  let apply ctx t = t.appends :: ctx
end

module Toy_apply = Tbct.Spec.Apply (Toy)

let t ?needs name appends = { Toy.name; needs; appends }

let test_apply_skips_failed_preconditions () =
  let seq = [ t "a" 1; t ~needs:99 "b" 2; t ~needs:1 "c" 3 ] in
  let ctx, steps = Toy_apply.sequence [] seq in
  Alcotest.(check (list int)) "b skipped" [ 3; 1 ] ctx;
  Alcotest.(check (list bool)) "applied flags" [ true; false; true ]
    (List.map (fun s -> s.Toy_apply.applied) steps)

let test_apply_subsequence () =
  let seq = [ t "a" 1; t ~needs:99 "b" 2; t ~needs:1 "c" 3 ] in
  let applied = Toy_apply.applied_subsequence [] seq in
  Alcotest.(check (list string)) "names" [ "a"; "c" ]
    (List.map Toy.type_id applied)

let test_apply_check_preserves () =
  (* semantics = parity of the sum; appending an even number preserves it *)
  let semantics ctx = List.fold_left ( + ) 0 ctx mod 2 in
  let equal = Int.equal in
  let good = [ t "a" 2; t "b" 4 ] in
  let bad = [ t "a" 2; t "b" 3 ] in
  Alcotest.(check bool) "good sequence preserves" true
    (Toy_apply.check_preserves ~semantics ~equal [] good = Ok ());
  Alcotest.(check bool) "bad sequence caught at step 1" true
    (Toy_apply.check_preserves ~semantics ~equal [] bad = Error 1)

(* ------------------------------------------------------------------ *)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "tbct"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_different_seeds;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "int_in_range" `Quick test_rng_int_in_range;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "sample" `Quick test_rng_sample;
          Alcotest.test_case "choose singleton" `Quick test_rng_choose_singleton;
          Alcotest.test_case "chance extremes" `Quick test_rng_chance_extremes;
        ] );
      ( "reducer",
        [
          Alcotest.test_case "single culprit" `Quick test_reducer_single_culprit;
          Alcotest.test_case "pair culprit" `Quick test_reducer_pair_culprit;
          Alcotest.test_case "all needed" `Quick test_reducer_all_needed;
          Alcotest.test_case "none needed" `Quick test_reducer_none_needed;
          Alcotest.test_case "empty input" `Quick test_reducer_empty_input;
          Alcotest.test_case "rejects boring input" `Quick test_reducer_rejects_boring_input;
          Alcotest.test_case "preserves order" `Quick test_reducer_preserves_order;
          Alcotest.test_case "cache reduces queries" `Quick
            test_reducer_cache_counts_fewer_queries;
          Alcotest.test_case "linear agrees with chunked" `Quick
            test_reduce_linear_agrees_with_chunked;
        ]
        @ qcheck [ prop_one_minimal; prop_linear_one_minimal ] );
      ( "dedup",
        [
          Alcotest.test_case "paper scenario (section 2.1)" `Quick test_dedup_paper_scenario;
          Alcotest.test_case "disjoint all selected" `Quick test_dedup_disjoint_all_selected;
          Alcotest.test_case "prefers small type sets" `Quick test_dedup_prefers_small_type_sets;
          Alcotest.test_case "ignore list" `Quick test_dedup_ignored_types;
          Alcotest.test_case "empty type sets dropped" `Quick test_dedup_empty_type_set_dropped;
          Alcotest.test_case "empty input" `Quick test_dedup_empty_input;
        ]
        @ qcheck [ prop_dedup_disjoint; prop_dedup_maximal ] );
      ( "spec",
        [
          Alcotest.test_case "skips failed preconditions" `Quick
            test_apply_skips_failed_preconditions;
          Alcotest.test_case "applied subsequence" `Quick test_apply_subsequence;
          Alcotest.test_case "check_preserves" `Quick test_apply_check_preserves;
        ] );
    ]
