(* Tests for the gfauto-analog harness: statistics, Venn partitions,
   signatures, the test pipeline and small-scale experiment drivers. *)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_median () =
  Alcotest.(check (float 1e-9)) "odd" 3.0 (Harness.Stats.median [ 1.0; 5.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "even" 2.5 (Harness.Stats.median [ 1.0; 2.0; 3.0; 4.0 ]);
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (Harness.Stats.median []))

let test_normal_cdf () =
  Alcotest.(check (float 1e-3)) "cdf(0)" 0.5 (Harness.Stats.normal_cdf 0.0);
  Alcotest.(check (float 1e-3)) "cdf(1.96)" 0.975 (Harness.Stats.normal_cdf 1.96);
  Alcotest.(check (float 1e-3)) "cdf(-1.96)" 0.025 (Harness.Stats.normal_cdf (-1.96))

let test_mwu_clear_separation () =
  let a = [ 10.0; 11.0; 12.0; 13.0; 14.0; 15.0; 16.0; 17.0; 18.0; 19.0 ] in
  let b = [ 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0; 9.0; 9.5 ] in
  let r = Harness.Stats.mann_whitney_u a b in
  Alcotest.(check bool) "A clearly greater" true (r.Harness.Stats.confidence_a_greater > 0.99);
  let r' = Harness.Stats.mann_whitney_u b a in
  Alcotest.(check bool) "B clearly smaller" true (r'.Harness.Stats.confidence_a_greater < 0.01)

let test_mwu_identical_samples () =
  let a = [ 5.0; 5.0; 5.0; 5.0 ] in
  let r = Harness.Stats.mann_whitney_u a a in
  Alcotest.(check (float 0.02)) "all ties -> 50%" 0.5 r.Harness.Stats.confidence_a_greater

let test_mwu_known_value () =
  (* hand-computable example: A = [3;4], B = [1;2]; U_A = 4, mu = 2,
     sigma = sqrt(4*5/12) ~ 1.29, z ~ 1.549 -> ~0.939 *)
  let r = Harness.Stats.mann_whitney_u [ 3.0; 4.0 ] [ 1.0; 2.0 ] in
  Alcotest.(check (float 1e-9)) "U statistic" 4.0 r.Harness.Stats.u_statistic;
  Alcotest.(check (float 0.01)) "confidence" 0.939 r.Harness.Stats.confidence_a_greater

let test_verdict_formatting () =
  Alcotest.(check string) "yes" "Yes (99.98%)" (Harness.Stats.verdict 0.9998);
  Alcotest.(check string) "no" "No (14.99%)" (Harness.Stats.verdict 0.1499)

(* ------------------------------------------------------------------ *)
(* Venn *)

module SS = Harness.Venn.String_set

let test_venn_partition () =
  let a = SS.of_list [ "x"; "y"; "z"; "w" ] in
  let b = SS.of_list [ "y"; "z"; "q" ] in
  let c = SS.of_list [ "z"; "w"; "q"; "r" ] in
  let v = Harness.Venn.partition ~a ~b ~c in
  Alcotest.(check int) "only a" 1 v.Harness.Venn.only_a;     (* x *)
  Alcotest.(check int) "only b" 0 v.Harness.Venn.only_b;
  Alcotest.(check int) "only c" 1 v.Harness.Venn.only_c;     (* r *)
  Alcotest.(check int) "ab" 1 v.Harness.Venn.ab;             (* y *)
  Alcotest.(check int) "ac" 1 v.Harness.Venn.ac;             (* w *)
  Alcotest.(check int) "bc" 1 v.Harness.Venn.bc;             (* q *)
  Alcotest.(check int) "abc" 1 v.Harness.Venn.abc;           (* z *)
  Alcotest.(check int) "total = |union|" 6 (Harness.Venn.total v)

let prop_venn_total =
  QCheck.Test.make ~name:"venn total equals union cardinality" ~count:200
    QCheck.(triple (small_list (int_bound 20)) (small_list (int_bound 20)) (small_list (int_bound 20)))
    (fun (xa, xb, xc) ->
      let s xs = SS.of_list (List.map string_of_int xs) in
      let a = s xa and b = s xb and c = s xc in
      Harness.Venn.total (Harness.Venn.partition ~a ~b ~c)
      = SS.cardinal (SS.union a (SS.union b c)))

(* ------------------------------------------------------------------ *)
(* Signatures *)

let test_signature_roundtrip () =
  List.iter
    (fun (spec : Compilers.Bug.crash_spec) ->
      Alcotest.(check string)
        ("bug id for " ^ spec.Compilers.Bug.bug_id)
        spec.Compilers.Bug.bug_id
        (Harness.Signature.bug_id_of_signature spec.Compilers.Bug.signature))
    Compilers.Bug.all_crash_bugs

let test_signature_derived () =
  Alcotest.(check string) "invalid output" "opt-invalid-output"
    (Harness.Signature.bug_id_of_signature
       "optimizer emitted invalid module: function %3, block %5: boom");
  Alcotest.(check string) "device lost" "device-lost"
    (Harness.Signature.bug_id_of_signature "device lost (timeout)");
  Alcotest.(check string) "miscompilation" "miscompilation"
    (Harness.Signature.bug_id_of_signature Harness.Signature.miscompilation)

(* ------------------------------------------------------------------ *)
(* Pipeline *)

let swiftshader = Compilers.Target.swiftshader

let dontinline_variant () =
  let m = List.assoc "helper_distance" (Lazy.force Corpus.lowered_references) in
  {
    m with
    Spirv_ir.Module_ir.functions =
      List.map
        (fun (f : Spirv_ir.Func.t) ->
          if not (Spirv_ir.Id.equal f.Spirv_ir.Func.id m.Spirv_ir.Module_ir.entry) then
            { f with Spirv_ir.Func.control = Spirv_ir.Func.DontInline }
          else f)
        m.Spirv_ir.Module_ir.functions;
  }

let test_pipeline_detects_crash () =
  let original = List.assoc "helper_distance" (Lazy.force Corpus.lowered_references) in
  let variant = dontinline_variant () in
  match
    Harness.Pipeline.run_variant (Harness.Engine.create ()) swiftshader
      ~ref_name:"helper_distance" ~original ~variant Corpus.default_input
  with
  | Some d ->
      Alcotest.(check string) "bug id" "dontinline-call"
        (Harness.Signature.bug_id_of_signature d.Harness.Pipeline.signature)
  | None -> Alcotest.fail "pipeline missed the crash"

let test_pipeline_no_detection_on_identity () =
  let original = List.assoc "gradient" (Lazy.force Corpus.lowered_references) in
  match
    Harness.Pipeline.run_variant (Harness.Engine.create ()) swiftshader
      ~ref_name:"gradient" ~original ~variant:original Corpus.default_input
  with
  | None -> ()
  | Some d -> Alcotest.failf "spurious detection: %s" d.Harness.Pipeline.signature

let test_interestingness_reproduces () =
  let engine = Harness.Engine.create () in
  let original = List.assoc "helper_distance" (Lazy.force Corpus.lowered_references) in
  let variant = dontinline_variant () in
  match
    Harness.Pipeline.run_variant engine swiftshader ~ref_name:"helper_distance"
      ~original ~variant Corpus.default_input
  with
  | None -> Alcotest.fail "no detection"
  | Some detection ->
      let test =
        Harness.Pipeline.interestingness engine swiftshader
          ~ref_name:"helper_distance" ~original ~detection Corpus.default_input
      in
      Alcotest.(check bool) "variant interesting" true
        (test variant Corpus.default_input);
      Alcotest.(check bool) "original boring" false
        (test original Corpus.default_input)

(* ------------------------------------------------------------------ *)
(* Small campaign smoke (deterministic) *)

let small_scale = { Harness.Experiments.default_scale with Harness.Experiments.seeds = 40 }

let campaign = lazy (Harness.Experiments.run_campaign ~scale:small_scale Harness.Pipeline.Spirv_fuzz_tool)

let test_campaign_is_deterministic () =
  let a = Lazy.force campaign in
  let b = Harness.Experiments.run_campaign ~scale:small_scale Harness.Pipeline.Spirv_fuzz_tool in
  Alcotest.(check int) "same size" (List.length a) (List.length b);
  List.iter2
    (fun (x : Harness.Experiments.hit) (y : Harness.Experiments.hit) ->
      Alcotest.(check string) "same signature"
        x.Harness.Experiments.hit_detection.Harness.Pipeline.signature
        y.Harness.Experiments.hit_detection.Harness.Pipeline.signature)
    a b

let test_campaign_finds_something () =
  Alcotest.(check bool) "some detections" true (Lazy.force campaign <> [])

let test_reduce_miscompilation_hit () =
  (* reductions must also work for image-mismatch detections, where the
     interestingness test compares images rather than signatures *)
  match
    List.find_opt
      (fun (h : Harness.Experiments.hit) ->
        Harness.Signature.is_miscompilation
          h.Harness.Experiments.hit_detection.Harness.Pipeline.signature)
      (Lazy.force campaign)
  with
  | None -> () (* no miscompilation at this small scale: acceptable *)
  | Some h -> (
      match Harness.Experiments.reduce_hit (Harness.Engine.create ()) h with
      | None -> Alcotest.fail "miscompilation did not reproduce under reduction"
      | Some outcome ->
          Alcotest.(check string) "signature" "miscompilation"
            outcome.Harness.Experiments.red_signature;
          Alcotest.(check bool) "kept at least one transformation" true
            (outcome.Harness.Experiments.red_kept >= 1))

let test_reduce_hit_reproduces () =
  match
    List.find_opt
      (fun (h : Harness.Experiments.hit) ->
        not
          (Harness.Signature.is_miscompilation
             h.Harness.Experiments.hit_detection.Harness.Pipeline.signature))
      (Lazy.force campaign)
  with
  | None -> Alcotest.fail "no crash hit in the small campaign"
  | Some h -> (
      match Harness.Experiments.reduce_hit (Harness.Engine.create ()) h with
      | None -> Alcotest.fail "reduction did not reproduce the detection"
      | Some outcome ->
          Alcotest.(check bool) "kept <= initial" true
            (outcome.Harness.Experiments.red_kept
            <= outcome.Harness.Experiments.red_initial);
          Alcotest.(check bool) "delta nonnegative" true
            (outcome.Harness.Experiments.red_delta >= 0))

let test_table3_structure () =
  let hits = [| Lazy.force campaign; []; [] |] in
  let t3 = Harness.Experiments.table3 ~scale:small_scale ~hits () in
  Alcotest.(check int) "nine target rows" 9 (List.length t3.Harness.Experiments.rows);
  List.iter
    (fun (r : Harness.Experiments.table3_row) ->
      Alcotest.(check bool) "empty tools have zero totals" true
        (r.Harness.Experiments.t3_total.(1) = 0 && r.Harness.Experiments.t3_total.(2) = 0))
    t3.Harness.Experiments.rows

let test_cap_hits () =
  let mk target signature seed =
    {
      Harness.Experiments.hit_tool = Harness.Pipeline.Spirv_fuzz_tool;
      Harness.Experiments.hit_seed = seed;
      Harness.Experiments.hit_ref = "r";
      Harness.Experiments.hit_target = target;
      Harness.Experiments.hit_detection =
        { Harness.Pipeline.signature; Harness.Pipeline.via_opt = false };
    }
  in
  let hits = List.init 10 (mk "T" "sig-a") @ List.init 3 (mk "T" "sig-b") in
  let capped = Harness.Experiments.cap_hits ~per_signature:2 hits in
  Alcotest.(check int) "2 + 2" 4 (List.length capped)

let test_figure3 () =
  match Harness.Experiments.figure3 () with
  | None -> Alcotest.fail "the DontInline scenario did not reproduce"
  | Some f ->
      Alcotest.(check int) "single surviving transformation" 1
        (List.length f.Harness.Experiments.fig3_kept);
      Alcotest.(check int) "reduced variant has the original's size"
        f.Harness.Experiments.fig3_original_size f.Harness.Experiments.fig3_reduced_size;
      (* the delta is a single changed line pair *)
      let lines =
        String.split_on_char '\n' f.Harness.Experiments.fig3_delta
        |> List.filter (fun l -> l <> "")
      in
      Alcotest.(check int) "one-line-pair delta" 2 (List.length lines)

let test_figure8 () =
  let f = Harness.Experiments.figure8 () in
  Alcotest.(check bool) "8a images differ" true f.Harness.Experiments.fig8a_images_differ;
  Alcotest.(check bool) "8b images differ" true f.Harness.Experiments.fig8b_images_differ

(* ------------------------------------------------------------------ *)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "harness"
    [
      ( "stats",
        [
          Alcotest.test_case "median" `Quick test_median;
          Alcotest.test_case "normal cdf" `Quick test_normal_cdf;
          Alcotest.test_case "MWU clear separation" `Quick test_mwu_clear_separation;
          Alcotest.test_case "MWU identical samples" `Quick test_mwu_identical_samples;
          Alcotest.test_case "MWU known value" `Quick test_mwu_known_value;
          Alcotest.test_case "verdict formatting" `Quick test_verdict_formatting;
        ] );
      ("venn", Alcotest.test_case "partition" `Quick test_venn_partition :: qcheck [ prop_venn_total ]);
      ( "signature",
        [
          Alcotest.test_case "crash signatures round trip" `Quick test_signature_roundtrip;
          Alcotest.test_case "derived signatures" `Quick test_signature_derived;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "detects a crash" `Quick test_pipeline_detects_crash;
          Alcotest.test_case "no detection on identity variant" `Quick
            test_pipeline_no_detection_on_identity;
          Alcotest.test_case "interestingness reproduces" `Quick test_interestingness_reproduces;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "campaign deterministic" `Slow test_campaign_is_deterministic;
          Alcotest.test_case "campaign finds something" `Slow test_campaign_finds_something;
          Alcotest.test_case "reduce_hit reproduces" `Slow test_reduce_hit_reproduces;
          Alcotest.test_case "miscompilation hits reduce too" `Slow
            test_reduce_miscompilation_hit;
          Alcotest.test_case "table3 structure" `Slow test_table3_structure;
          Alcotest.test_case "cap_hits" `Quick test_cap_hits;
          Alcotest.test_case "figure 3 reproduces" `Slow test_figure3;
          Alcotest.test_case "figure 8 reproduces" `Slow test_figure8;
        ] );
    ]
