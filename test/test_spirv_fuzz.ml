(* Tests for the spirv-fuzz instantiation: fact manager, individual
   transformations, fuzzer, replay stability, reducer and dedup. *)

open Spirv_ir

let default_input = Generator.default_input

let render_exn m input =
  match Interp.render m input with
  | Ok img -> img
  | Error t -> Alcotest.failf "render failed: %s" (Interp.trap_to_string t)

let check_valid name m =
  match Validate.check m with
  | Ok () -> ()
  | Error (e :: _) -> Alcotest.failf "%s: %s" name (Validate.error_to_string e)
  | Error [] -> Alcotest.failf "%s: invalid" name

let gen_ctx seed =
  let m = Generator.generate (Tbct.Rng.make seed) in
  Spirv_fuzz.Context.make m default_input

(* ------------------------------------------------------------------ *)
(* Fact manager *)

let test_facts_dead_blocks () =
  let f = Spirv_fuzz.Fact_manager.empty in
  let f = Spirv_fuzz.Fact_manager.add_dead_block f 7 in
  Alcotest.(check bool) "added" true (Spirv_fuzz.Fact_manager.is_dead_block f 7);
  Alcotest.(check bool) "other" false (Spirv_fuzz.Fact_manager.is_dead_block f 8)

let test_facts_synonym_closure () =
  let f = Spirv_fuzz.Fact_manager.empty in
  let f = Spirv_fuzz.Fact_manager.add_id_synonym f 1 2 in
  let f = Spirv_fuzz.Fact_manager.add_id_synonym f 2 3 in
  Alcotest.(check bool) "transitive" true (Spirv_fuzz.Fact_manager.are_synonymous f 1 3);
  Alcotest.(check bool) "symmetric" true (Spirv_fuzz.Fact_manager.are_synonymous f 3 1);
  Alcotest.(check bool) "not related" false (Spirv_fuzz.Fact_manager.are_synonymous f 1 9);
  Alcotest.(check bool) "not self" false (Spirv_fuzz.Fact_manager.are_synonymous f 1 1)

let test_facts_component_synonyms () =
  let f = Spirv_fuzz.Fact_manager.empty in
  let f = Spirv_fuzz.Fact_manager.add_synonym f (10, [ 1 ]) (5, []) in
  Alcotest.(check (list int)) "component lookup" [ 5 ]
    (Spirv_fuzz.Fact_manager.component_synonyms f ~composite:10 ~path:[ 1 ]);
  Alcotest.(check (list int)) "wrong path" []
    (Spirv_fuzz.Fact_manager.component_synonyms f ~composite:10 ~path:[ 0 ])

let test_context_freshness_discipline () =
  let ctx = gen_ctx 1 in
  let bound = ctx.Spirv_fuzz.Context.m.Module_ir.id_bound in
  (* ids at/beyond the bound are fresh; defined ids are not *)
  Alcotest.(check bool) "bound is fresh" true (Spirv_fuzz.Context.is_fresh ctx bound);
  Alcotest.(check bool) "bound+5 is fresh" true (Spirv_fuzz.Context.is_fresh ctx (bound + 5));
  let some_defined = Id.Set.choose (Module_ir.defined_ids ctx.Spirv_fuzz.Context.m) in
  Alcotest.(check bool) "defined id is not fresh" false
    (Spirv_fuzz.Context.is_fresh ctx some_defined);
  (* claim raises the bound past the claimed ids *)
  let ctx' = Spirv_fuzz.Context.claim ctx [ bound + 10; bound + 3 ] in
  Alcotest.(check int) "bound raised" (bound + 11)
    ctx'.Spirv_fuzz.Context.m.Module_ir.id_bound

(* ------------------------------------------------------------------ *)
(* Individual transformations on a generated module *)

(* run one pass deterministically and check: module valid, image unchanged,
   and replaying the emitted sequence from the original reproduces the
   final module *)
let exercise_pass pass_name seed =
  match Spirv_fuzz.Pass.find pass_name with
  | None -> Alcotest.failf "unknown pass %s" pass_name
  | Some pass ->
      let ctx = gen_ctx seed in
      let reference = render_exn ctx.Spirv_fuzz.Context.m default_input in
      let donors = [ Generator.generate (Tbct.Rng.make (seed + 1)) ] in
      let em =
        Spirv_fuzz.Pass.make_emitter ~donors
          ~rng:(Tbct.Rng.make (seed * 3 + 1))
          ctx
      in
      (* enablers so data-dependent passes have something to chew on *)
      Spirv_fuzz.Pass.pass_add_dead_blocks.Spirv_fuzz.Pass.run em;
      Spirv_fuzz.Pass.pass_add_variables.Spirv_fuzz.Pass.run em;
      Spirv_fuzz.Pass.pass_add_copy_objects.Spirv_fuzz.Pass.run em;
      Spirv_fuzz.Pass.pass_add_functions.Spirv_fuzz.Pass.run em;
      Spirv_fuzz.Pass.pass_add_parameters.Spirv_fuzz.Pass.run em;
      pass.Spirv_fuzz.Pass.run em;
      let final = em.Spirv_fuzz.Pass.ctx in
      check_valid (pass_name ^ " result") final.Spirv_fuzz.Context.m;
      (* variants run on their own input: AddUniform extends it in sync *)
      let image = render_exn final.Spirv_fuzz.Context.m final.Spirv_fuzz.Context.input in
      if not (Image.equal reference image) then
        Alcotest.failf "pass %s changed the image" pass_name;
      (* replay stability *)
      let replayed =
        Spirv_fuzz.Lang.replay ctx (List.rev em.Spirv_fuzz.Pass.emitted)
      in
      if not (Module_ir.equal_ignoring_bound replayed.Spirv_fuzz.Context.m final.Spirv_fuzz.Context.m) then
        Alcotest.failf "pass %s: replay diverged" pass_name;
      List.length em.Spirv_fuzz.Pass.emitted

let test_pass pass_name () =
  let total = ref 0 in
  for seed = 1 to 5 do
    total := !total + exercise_pass pass_name seed
  done;
  if !total = 0 then Alcotest.failf "pass %s never applied anything" pass_name

(* ------------------------------------------------------------------ *)
(* Whole-fuzzer properties *)

let fuzz_once ?(config = Spirv_fuzz.Fuzzer.default_config) seed =
  let ctx = gen_ctx seed in
  let donors = [ Generator.generate (Tbct.Rng.make (seed + 7919)) ] in
  let config = { config with Spirv_fuzz.Fuzzer.donors } in
  (ctx, Spirv_fuzz.Fuzzer.run ~config ~seed:(seed * 2 + 1) ctx)

let prop_fuzzer_preserves_semantics =
  QCheck.Test.make ~name:"fuzzed variants render the same image" ~count:50
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let ctx, result = fuzz_once seed in
      let reference = render_exn ctx.Spirv_fuzz.Context.m default_input in
      let final = result.Spirv_fuzz.Fuzzer.final in
      let image = render_exn final.Spirv_fuzz.Context.m final.Spirv_fuzz.Context.input in
      Image.equal reference image)

let prop_fuzzer_produces_valid_modules =
  QCheck.Test.make ~name:"fuzzed variants validate" ~count:50
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let _, result = fuzz_once seed in
      Validate.is_valid result.Spirv_fuzz.Fuzzer.final.Spirv_fuzz.Context.m)

let prop_fuzzer_deterministic =
  QCheck.Test.make ~name:"fuzzing is deterministic in the seed" ~count:10
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let _, r1 = fuzz_once seed in
      let _, r2 = fuzz_once seed in
      Module_ir.equal r1.Spirv_fuzz.Fuzzer.final.Spirv_fuzz.Context.m
        r2.Spirv_fuzz.Fuzzer.final.Spirv_fuzz.Context.m)

let prop_replay_reproduces_fuzzer_output =
  QCheck.Test.make ~name:"replaying the recorded sequence reproduces the variant"
    ~count:20
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let ctx, result = fuzz_once seed in
      let replayed = Spirv_fuzz.Lang.replay ctx result.Spirv_fuzz.Fuzzer.transformations in
      Module_ir.equal_ignoring_bound replayed.Spirv_fuzz.Context.m
        result.Spirv_fuzz.Fuzzer.final.Spirv_fuzz.Context.m)

let prop_subsequences_preserve_semantics =
  QCheck.Test.make
    ~name:"random subsequences of recorded transformations preserve the image"
    ~count:40
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (seed, subseed) ->
      let ctx, result = fuzz_once seed in
      let reference = render_exn ctx.Spirv_fuzz.Context.m default_input in
      let rng = Tbct.Rng.make subseed in
      let subseq =
        List.filter (fun _ -> Tbct.Rng.bool rng) result.Spirv_fuzz.Fuzzer.transformations
      in
      let replayed = Spirv_fuzz.Lang.replay ctx subseq in
      Validate.is_valid replayed.Spirv_fuzz.Context.m
      && Image.equal reference
           (render_exn replayed.Spirv_fuzz.Context.m replayed.Spirv_fuzz.Context.input))

let prop_variants_roundtrip_assembler =
  QCheck.Test.make
    ~name:"fuzzed variants round-trip the assembler (dead blocks, kills, donations)"
    ~count:15
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let _, result = fuzz_once seed in
      let m = result.Spirv_fuzz.Fuzzer.final.Spirv_fuzz.Context.m in
      Module_ir.equal m (Asm.of_string (Disasm.to_string m)))

let test_fuzzer_emits_transformations () =
  let config =
    { Spirv_fuzz.Fuzzer.default_config with Spirv_fuzz.Fuzzer.continue_probability = 100 }
  in
  let _, result = fuzz_once ~config 42 in
  Alcotest.(check bool) "emitted some" true
    (List.length result.Spirv_fuzz.Fuzzer.transformations > 10)

let test_fuzzer_respects_cap () =
  let config = { Spirv_fuzz.Fuzzer.default_config with Spirv_fuzz.Fuzzer.max_transformations = 5 } in
  let ctx = gen_ctx 3 in
  let result = Spirv_fuzz.Fuzzer.run ~config ~seed:9 ctx in
  (* the cap is checked between passes, so a single pass may overshoot a
     little; it must stay within one pass's worth of the cap *)
  Alcotest.(check bool) "bounded" true
    (List.length result.Spirv_fuzz.Fuzzer.transformations < 200)

(* ------------------------------------------------------------------ *)
(* Reducer *)

let test_reducer_finds_kill_culprit () =
  (* interestingness: the variant contains an OpKill; 1-minimal sequences
     should be small (the enabling AddDeadBlock chain + the kill) *)
  let found = ref false in
  let seed = ref 0 in
  let config =
    { Spirv_fuzz.Fuzzer.default_config with Spirv_fuzz.Fuzzer.continue_probability = 100 }
  in
  while (not !found) && !seed < 100 do
    incr seed;
    let ctx, result = fuzz_once ~config !seed in
    let has_kill (c : Spirv_fuzz.Context.t) =
      List.exists
        (fun (f : Func.t) ->
          List.exists
            (fun (b : Block.t) -> b.Block.terminator = Block.Kill)
            f.Func.blocks)
        c.Spirv_fuzz.Context.m.Module_ir.functions
    in
    if has_kill result.Spirv_fuzz.Fuzzer.final then begin
      found := true;
      let r =
        Spirv_fuzz.Reducer.reduce ~original:ctx ~is_interesting:has_kill
          result.Spirv_fuzz.Fuzzer.transformations
      in
      (* must keep the bug triggering *)
      Alcotest.(check bool) "reduced still interesting" true
        (has_kill r.Spirv_fuzz.Reducer.reduced);
      (* 1-minimality *)
      List.iteri
        (fun i _ ->
          let without =
            List.filteri (fun j _ -> j <> i) r.Spirv_fuzz.Reducer.transformations
          in
          Alcotest.(check bool)
            (Printf.sprintf "dropping %d breaks it" i)
            false
            (has_kill (Spirv_fuzz.Lang.replay ctx without)))
        r.Spirv_fuzz.Reducer.transformations;
      (* the kept sequence should be much shorter than the full one *)
      Alcotest.(check bool) "substantial reduction" true
        (List.length r.Spirv_fuzz.Reducer.transformations
        <= List.length result.Spirv_fuzz.Fuzzer.transformations)
    end
  done;
  if not !found then Alcotest.fail "no seed produced an OpKill variant"

let test_shrink_add_functions () =
  (* donate a function, then shrink its body while keeping "a donated
     function exists and the module is valid" interesting *)
  let ctx = gen_ctx 21 in
  let donor = Generator.generate (Tbct.Rng.make 2222) in
  match Spirv_fuzz.Donor.eligible_functions donor with
  | [] -> Alcotest.fail "donor has no eligible functions at this seed"
  | g :: _ -> (
      match Spirv_fuzz.Donor.encode ctx donor g with
      | None -> Alcotest.fail "donor encoding failed"
      | Some (ctx, payload) ->
          let fn_id = payload.Spirv_fuzz.Transformation.af_function.Func.id in
          let seq = [ Spirv_fuzz.Transformation.Add_function payload ] in
          let is_interesting (c : Spirv_fuzz.Context.t) =
            Module_ir.find_function c.Spirv_fuzz.Context.m fn_id <> None
          in
          let before_size =
            List.fold_left
              (fun acc (b : Block.t) -> acc + List.length b.Block.instrs)
              0 payload.Spirv_fuzz.Transformation.af_function.Func.blocks
          in
          let shrunk =
            Spirv_fuzz.Reducer.shrink_add_functions ~original:ctx ~is_interesting seq
          in
          (match shrunk with
          | [ Spirv_fuzz.Transformation.Add_function p' ] ->
              let after_size =
                List.fold_left
                  (fun acc (b : Block.t) -> acc + List.length b.Block.instrs)
                  0 p'.Spirv_fuzz.Transformation.af_function.Func.blocks
              in
              Alcotest.(check bool) "body shrank or held" true (after_size <= before_size);
              (* the shrunk payload must still apply to a valid module *)
              let ctx' = Spirv_fuzz.Lang.replay ctx shrunk in
              Alcotest.(check bool) "still valid" true
                (Validate.is_valid ctx'.Spirv_fuzz.Context.m);
              Alcotest.(check bool) "still interesting" true (is_interesting ctx')
          | _ -> Alcotest.fail "sequence shape changed"))

let test_delta_size_zero_for_empty_sequence () =
  let ctx = gen_ctx 5 in
  Alcotest.(check int) "no delta" 0 (Spirv_fuzz.Reducer.delta_size ~original:ctx ctx)

(* ------------------------------------------------------------------ *)
(* Dedup *)

let mk_case label tys =
  (* build dummy transformations of the named types for dedup testing *)
  let of_ty = function
    | "AddLoad" ->
        Spirv_fuzz.Transformation.Add_load
          { fn = 0; block = 0; point = Spirv_fuzz.Transformation.At_end; fresh = 0; pointer = 0 }
    | "AddStore" ->
        Spirv_fuzz.Transformation.Add_store
          { fn = 0; block = 0; point = Spirv_fuzz.Transformation.At_end; pointer = 0; value = 0 }
    | "SplitBlock" ->
        Spirv_fuzz.Transformation.Split_block
          { fn = 0; block = 0; point = Spirv_fuzz.Transformation.At_end; fresh = 0 }
    | "AddDeadBlock" ->
        Spirv_fuzz.Transformation.Add_dead_block { fn = 0; existing = 0; fresh = 0; cond = 0 }
    | "MoveBlockDown" -> Spirv_fuzz.Transformation.Move_block_down { fn = 0; block = 0 }
    | "AddType" -> Spirv_fuzz.Transformation.Add_type { fresh = 0; ty = Ty.Bool }
    | other -> Alcotest.failf "unknown type %s" other
  in
  { Spirv_fuzz.Dedup.label; Spirv_fuzz.Dedup.transformations = List.map of_ty tys }

let test_dedup_ignores_supporting_types () =
  let tests =
    [
      mk_case "a" [ "AddType"; "SplitBlock"; "AddLoad" ];
      mk_case "b" [ "AddType"; "SplitBlock"; "AddStore" ];
    ]
  in
  let selected = Spirv_fuzz.Dedup.select tests in
  (* AddType and SplitBlock are ignored, so the effective sets {AddLoad} and
     {AddStore} are disjoint: both selected *)
  Alcotest.(check int) "both selected" 2 (List.length selected)

let test_dedup_conflicting_types () =
  let tests =
    [ mk_case "a" [ "AddLoad"; "MoveBlockDown" ]; mk_case "b" [ "AddLoad" ] ] in
  let selected = Spirv_fuzz.Dedup.select tests in
  Alcotest.(check int) "one selected" 1 (List.length selected);
  Alcotest.(check string) "the smaller set wins" "b"
    (List.hd selected).Spirv_fuzz.Dedup.label

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Contract checker (debug mode) *)

(* a full fuzz run with contract checking on: every applied transformation
   passes precondition/validate/lint/image checks *)
let test_contracts_pass_on_fuzz () =
  let config =
    { Spirv_fuzz.Fuzzer.default_config with Spirv_fuzz.Fuzzer.check_contracts = true }
  in
  let total = ref 0 in
  for seed = 1 to 5 do
    let _, result = fuzz_once ~config seed in
    total := !total + List.length result.Spirv_fuzz.Fuzzer.transformations
  done;
  Alcotest.(check bool) "some transformations applied" true (!total > 0)

(* the checker consumes no randomness: the recorded stream is bit-identical
   with checking on or off *)
let prop_contracts_do_not_disturb_rng =
  QCheck.Test.make ~name:"contract checking never changes the stream" ~count:15
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let on =
        { Spirv_fuzz.Fuzzer.default_config with Spirv_fuzz.Fuzzer.check_contracts = true }
      in
      let _, plain = fuzz_once seed in
      let _, checked = fuzz_once ~config:on seed in
      plain.Spirv_fuzz.Fuzzer.transformations
      = checked.Spirv_fuzz.Fuzzer.transformations
      && Module_ir.equal plain.Spirv_fuzz.Fuzzer.final.Spirv_fuzz.Context.m
           checked.Spirv_fuzz.Fuzzer.final.Spirv_fuzz.Context.m)

(* inject a transformation whose precondition is deliberately violated
   (Add_type for an already-declared type) and apply it anyway: the checker
   must flag the precondition stage *)
let test_contracts_catch_bad_transformation () =
  let ctx = gen_ctx 3 in
  let bad =
    Spirv_fuzz.Transformation.Add_type
      { fresh = ctx.Spirv_fuzz.Context.m.Module_ir.id_bound; ty = Ty.Float }
  in
  Alcotest.(check bool) "precondition is indeed false" false
    (Spirv_fuzz.Registry.precondition ctx bad);
  let after = Spirv_fuzz.Registry.apply ctx bad in
  let checker = Spirv_fuzz.Contract.create ctx in
  match Spirv_fuzz.Contract.check checker ~before:ctx bad ~after with
  | () -> Alcotest.fail "violated precondition not caught"
  | exception Spirv_fuzz.Contract.Violation v ->
      Alcotest.(check string) "stage" "precondition" v.Spirv_fuzz.Contract.v_stage;
      Alcotest.(check string) "culprit" "AddType"
        v.Spirv_fuzz.Contract.v_transformation

(* a transformation that silently breaks the module (a use that its
   definition does not dominate) is caught by the validate stage *)
let test_contracts_catch_invalid_module () =
  let ctx = gen_ctx 4 in
  let checker = Spirv_fuzz.Contract.create ctx in
  let m = ctx.Spirv_fuzz.Context.m in
  let nop =
    Spirv_fuzz.Transformation.Add_constant
      {
        fresh = m.Module_ir.id_bound;
        ty = Option.get (Module_ir.find_type_id m Ty.Float);
        value = Constant.Float 1234.5;
      }
  in
  Alcotest.(check bool) "harmless precondition holds" true
    (Spirv_fuzz.Registry.precondition ctx nop);
  (* pretend the transformation was applied but hand the checker a broken
     module: entry function retyped to a dangling type id *)
  let broken =
    {
      m with
      Module_ir.constants =
        m.Module_ir.constants
        @ [
            {
              Module_ir.cd_id = m.Module_ir.id_bound;
              cd_ty = 99999;
              cd_value = Constant.Float 1234.5;
            };
          ];
      Module_ir.id_bound = m.Module_ir.id_bound + 1;
    }
  in
  let after = { ctx with Spirv_fuzz.Context.m = broken } in
  match Spirv_fuzz.Contract.check checker ~before:ctx nop ~after with
  | () -> Alcotest.fail "invalid module not caught"
  | exception Spirv_fuzz.Contract.Violation v ->
      Alcotest.(check string) "stage" "validate" v.Spirv_fuzz.Contract.v_stage

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let pass_tests =
  List.map
    (fun (p : Spirv_fuzz.Pass.t) ->
      Alcotest.test_case ("pass " ^ p.Spirv_fuzz.Pass.name) `Quick
        (test_pass p.Spirv_fuzz.Pass.name))
    Spirv_fuzz.Pass.all

let () =
  Alcotest.run "spirv_fuzz"
    [
      ( "facts",
        [
          Alcotest.test_case "dead blocks" `Quick test_facts_dead_blocks;
          Alcotest.test_case "synonym closure" `Quick test_facts_synonym_closure;
          Alcotest.test_case "component synonyms" `Quick test_facts_component_synonyms;
          Alcotest.test_case "context freshness discipline" `Quick
            test_context_freshness_discipline;
        ] );
      ("passes", pass_tests);
      ( "fuzzer",
        [
          Alcotest.test_case "emits transformations" `Quick test_fuzzer_emits_transformations;
          Alcotest.test_case "respects the cap" `Quick test_fuzzer_respects_cap;
        ]
        @ qcheck
            [
              prop_fuzzer_preserves_semantics;
              prop_fuzzer_produces_valid_modules;
              prop_fuzzer_deterministic;
              prop_replay_reproduces_fuzzer_output;
              prop_subsequences_preserve_semantics;
              prop_variants_roundtrip_assembler;
            ] );
      ( "contracts",
        [
          Alcotest.test_case "checked fuzz run passes" `Quick
            test_contracts_pass_on_fuzz;
          Alcotest.test_case "violated precondition caught" `Quick
            test_contracts_catch_bad_transformation;
          Alcotest.test_case "invalid module caught" `Quick
            test_contracts_catch_invalid_module;
        ]
        @ qcheck [ prop_contracts_do_not_disturb_rng ] );
      ( "reducer",
        [
          Alcotest.test_case "finds the kill culprit chain" `Quick
            test_reducer_finds_kill_culprit;
          Alcotest.test_case "delta size zero on empty" `Quick
            test_delta_size_zero_for_empty_sequence;
          Alcotest.test_case "shrink AddFunction bodies (spirv-reduce analog)" `Quick
            test_shrink_add_functions;
        ] );
      ( "dedup",
        [
          Alcotest.test_case "ignores supporting types" `Quick test_dedup_ignores_supporting_types;
          Alcotest.test_case "conflicting types" `Quick test_dedup_conflicting_types;
        ] );
    ]
