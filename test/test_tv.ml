(* Tests for the translation validator (Symval + Tv + Optimizer.run_tv):
   zero false positives on clean-flag runs over the corpus and fuzzed
   variants, correct per-pass blame for the TV-visible injected
   miscompilation bugs, and per-target attribution of every optimizer-hosted
   bug to its documented pass. *)

open Spirv_ir

let std = Compilers.Optimizer.standard
let clean = Compilers.Passes.no_bugs

let pass_t =
  Alcotest.testable Compilers.Optimizer.pp_pass_name
    Compilers.Optimizer.equal_pass_name

(* ------------------------------------------------------------------ *)
(* Trigger modules: the smallest shapes each injected optimizer bug
   fires on *)

let mk_module build =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let l = Builder.new_label fb in
  Builder.start_block fb l;
  let result = build b fb in
  let one = Builder.cfloat b 1.0 in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ result; one; one; one ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  (match Validate.check m with
  | Ok () -> ()
  | Error (e :: _) ->
      Alcotest.failf "crafted module invalid: %s" (Validate.error_to_string e)
  | Error [] -> Alcotest.fail "invalid");
  m

(* a dynamic x - 0.0: bug_fold_sub_zero rewrites it to 0.0 *)
let sub_zero_trigger () =
  mk_module (fun b fb ->
      let frag = Builder.load fb (Builder.frag_coord b) in
      let x = Builder.extract fb frag [ 0 ] in
      Builder.fsub fb x (Builder.cfloat b 0.0))

(* a call with two same-typed constant arguments:
   bug_inline_swaps_const_args swaps them while inlining *)
let inline_swap_trigger () =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let float_t = Builder.float_ty b in
  let out = Builder.output_color b in
  let hb, h, params =
    Builder.begin_function b ~name:"h" ~ret:float_t ~params:[ float_t; float_t ]
  in
  let lh = Builder.new_label hb in
  Builder.start_block hb lh;
  (match params with
  | [ p0; p1 ] -> Builder.ret_value hb (Builder.fsub hb p0 p1)
  | _ -> assert false);
  ignore (Builder.end_function hb);
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let l0 = Builder.new_label fb in
  Builder.start_block fb l0;
  let v = Builder.call fb h [ Builder.cfloat b 0.25; Builder.cfloat b 0.75 ] in
  let one = Builder.cfloat b 1.0 in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ v; one; one; one ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  (match Validate.check m with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "inline-swap trigger invalid");
  m

(* an integer division by constant zero: bug_fold_div_crash crashes on it;
   the clean folder's total semantics folds it to 0 *)
let div_zero_trigger () =
  mk_module (fun b fb ->
      let q = Builder.sdiv fb (Builder.cint b 7) (Builder.cint b 0) in
      let c = Builder.ieq fb q (Builder.cint b 1) in
      Builder.select fb c (Builder.cfloat b 0.0) (Builder.cfloat b 1.0))

(* a constant branch into a join φ: bug_keep_stale_phi_entries leaves the
   untaken predecessor's φ entry behind — invalid IR *)
let stale_phi_trigger () =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let l0 = Builder.new_label fb in
  let lt = Builder.new_label fb in
  let le = Builder.new_label fb in
  let lm = Builder.new_label fb in
  Builder.start_block fb l0;
  let c = Builder.cbool b true in
  let one = Builder.cfloat b 1.0 in
  let half = Builder.cfloat b 0.5 in
  Builder.branch_cond fb c lt le;
  Builder.start_block fb lt;
  let vt = Builder.fadd fb one half in
  Builder.branch fb lm;
  Builder.start_block fb le;
  let ve = Builder.fmul fb one half in
  Builder.branch fb lm;
  Builder.start_block fb lm;
  let p = Builder.phi fb ~ty:(Builder.float_ty b) [ (vt, lt); (ve, le) ] in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ p; p; p; p ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  Builder.finish b ~entry:main

(* ------------------------------------------------------------------ *)
(* Clean-flag runs: zero Mismatch (and, today, zero abstentions) *)

let assert_clean ?(allow_abstain = false) name
    (report : Compilers.Optimizer.tv_report) =
  (match report.Compilers.Optimizer.tv_guilty with
  | None -> ()
  | Some p ->
      Alcotest.failf "%s: clean pipeline blamed %s" name
        (Compilers.Optimizer.show_pass_name p));
  List.iter
    (fun (p, v) ->
      match v with
      | Compilers.Tv.Mismatch w ->
          Alcotest.failf "%s: false positive in %s: %s vs %s" name
            (Compilers.Optimizer.show_pass_name p)
            w.Compilers.Tv.w_before w.Compilers.Tv.w_after
      | Compilers.Tv.Abstained r ->
          (* abstention is always sound — but the corpus and generator
             shapes are all within Symval's fragment, so for those a new
             abstention is a precision regression worth failing loudly on.
             Fuzzed variants may blow the evaluation budget legitimately. *)
          if not allow_abstain then
            Alcotest.failf "%s: %s abstained: %s" name
              (Compilers.Optimizer.show_pass_name p)
              r
      | Compilers.Tv.Equivalent -> ())
    report.Compilers.Optimizer.tv_steps

let test_corpus_clean () =
  List.iter
    (fun (name, m) ->
      match Compilers.Optimizer.run_tv std m with
      | Ok report -> assert_clean name report
      | Error e -> Alcotest.failf "%s: clean pipeline crashed: %s" name e)
    (Lazy.force Corpus.lowered_references)

(* the acceptance bar: >= 100 fuzzed/generated variants, zero Mismatch *)
let test_generated_clean () =
  for seed = 0 to 109 do
    let m = Generator.generate (Tbct.Rng.make seed) in
    match Compilers.Optimizer.run_tv std m with
    | Ok report -> assert_clean (Printf.sprintf "generated seed %d" seed) report
    | Error e -> Alcotest.failf "seed %d: clean pipeline crashed: %s" seed e
  done

let test_fuzzed_clean () =
  for seed = 1 to 8 do
    let m = Generator.generate (Tbct.Rng.make seed) in
    let ctx = Spirv_fuzz.Context.make m Generator.default_input in
    let result = Spirv_fuzz.Fuzzer.run ~seed:(seed * 13 + 1) ctx in
    let variant = result.Spirv_fuzz.Fuzzer.final.Spirv_fuzz.Context.m in
    match Compilers.Optimizer.run_tv std variant with
    | Ok report ->
        assert_clean ~allow_abstain:true
          (Printf.sprintf "fuzzed seed %d" seed)
          report
    | Error e -> Alcotest.failf "fuzzed seed %d: crashed: %s" seed e
  done

(* ------------------------------------------------------------------ *)
(* Blame: each TV-visible injected miscompilation is pinned on its pass *)

let guilty_of name flags pipeline m =
  match Compilers.Optimizer.run_tv ~flags pipeline m with
  | Error e -> Alcotest.failf "%s: pipeline crashed: %s" name e
  | Ok report -> report.Compilers.Optimizer.tv_guilty

let test_blames_const_fold () =
  let m = sub_zero_trigger () in
  let buggy = { clean with Compilers.Passes.bug_fold_sub_zero = true } in
  (match guilty_of "sub-zero" buggy std m with
  | Some p -> Alcotest.check pass_t "guilty pass" Compilers.Optimizer.Const_fold p
  | None -> Alcotest.fail "fold_sub_zero miscompilation not detected");
  (* the same module with clean flags validates *)
  Alcotest.(check bool) "clean run not blamed" true
    (guilty_of "sub-zero clean" clean std m = None)

let test_blames_inline () =
  let m = inline_swap_trigger () in
  let buggy = { clean with Compilers.Passes.bug_inline_swaps_const_args = true } in
  (match guilty_of "inline-swap" buggy std m with
  | Some p -> Alcotest.check pass_t "guilty pass" Compilers.Optimizer.Inline p
  | None -> Alcotest.fail "inline_swaps_const_args miscompilation not detected");
  Alcotest.(check bool) "clean run not blamed" true
    (guilty_of "inline-swap clean" clean std m = None)

(* every mismatch witness names a slot and both symbolic values *)
let test_witness_shape () =
  let m = sub_zero_trigger () in
  let buggy = { clean with Compilers.Passes.bug_fold_sub_zero = true } in
  match Compilers.Optimizer.run_tv ~flags:buggy std m with
  | Error e -> Alcotest.failf "crashed: %s" e
  | Ok report -> (
      match
        List.find_opt
          (fun (_, v) -> match v with Compilers.Tv.Mismatch _ -> true | _ -> false)
          report.Compilers.Optimizer.tv_steps
      with
      | Some (_, Compilers.Tv.Mismatch w) ->
          Alcotest.(check string) "slot" "output" w.Compilers.Tv.w_slot;
          Alcotest.(check bool) "witness values differ" false
            (String.equal w.Compilers.Tv.w_before w.Compilers.Tv.w_after)
      | _ -> Alcotest.fail "no mismatch step recorded")

(* ------------------------------------------------------------------ *)
(* Satellite: every target's optimizer-hosted bugs attribute to the
   documented pass (and bug-free targets validate everything clean) *)

let test_target_attribution () =
  List.iter
    (fun (t : Compilers.Target.t) ->
      let name = t.Compilers.Target.name in
      let flags = t.Compilers.Target.opt_flags in
      let pipeline = t.Compilers.Target.pipeline in
      (* bug_fold_sub_zero -> Const_fold (documented in Passes) *)
      if flags.Compilers.Passes.bug_fold_sub_zero then
        (match guilty_of name flags pipeline (sub_zero_trigger ()) with
        | Some p -> Alcotest.check pass_t (name ^ ": sub-zero blame") Compilers.Optimizer.Const_fold p
        | None -> Alcotest.failf "%s: fold_sub_zero not blamed" name);
      (* bug_inline_swaps_const_args -> Inline *)
      if flags.Compilers.Passes.bug_inline_swaps_const_args then
        (match guilty_of name flags pipeline (inline_swap_trigger ()) with
        | Some p -> Alcotest.check pass_t (name ^ ": inline blame") Compilers.Optimizer.Inline p
        | None -> Alcotest.failf "%s: inline_swaps_const_args not blamed" name);
      (* bug_fold_div_crash -> a crash attributed to Const_fold *)
      if flags.Compilers.Passes.bug_fold_div_crash then
        (match
           Compilers.Optimizer.run_checked ~flags pipeline (div_zero_trigger ())
         with
        | Ok _ -> Alcotest.failf "%s: fold_div_crash did not fire" name
        | Error [] -> Alcotest.failf "%s: empty failure list" name
        | Error ((p, detail) :: _) ->
            Alcotest.check pass_t (name ^ ": div-crash blame") Compilers.Optimizer.Const_fold p;
            Alcotest.(check bool) (name ^ ": crash entry") true
              (String.length detail >= 6 && String.sub detail 0 6 = "crash:"));
      (* bug_keep_stale_phi_entries -> invalid IR out of Simplify_cfg *)
      if flags.Compilers.Passes.bug_keep_stale_phi_entries then
        (match
           Compilers.Optimizer.run_checked ~flags
             [ Compilers.Optimizer.Simplify_cfg ]
             (stale_phi_trigger ())
         with
        | Ok _ -> Alcotest.failf "%s: stale-phi bug not caught" name
        | Error [] -> Alcotest.failf "%s: empty failure list" name
        | Error ((p, _) :: _) ->
            Alcotest.check pass_t (name ^ ": stale-phi blame") Compilers.Optimizer.Simplify_cfg p);
      (* bug-free optimizers validate both triggers clean: no false blame *)
      if
        flags = clean
      then begin
        Alcotest.(check bool) (name ^ ": sub-zero clean") true
          (guilty_of name flags pipeline (sub_zero_trigger ()) = None);
        Alcotest.(check bool) (name ^ ": inline clean") true
          (guilty_of name flags pipeline (inline_swap_trigger ()) = None)
      end)
    Compilers.Target.all

(* ------------------------------------------------------------------ *)
(* Satellite: run_checked reports every failing pass, not the first *)

let test_run_checked_reports_all_failures () =
  let m = stale_phi_trigger () in
  let buggy = { clean with Compilers.Passes.bug_keep_stale_phi_entries = true } in
  match
    Compilers.Optimizer.run_checked ~flags:buggy
      [ Compilers.Optimizer.Simplify_cfg; Compilers.Optimizer.Dce ]
      m
  with
  | Ok _ -> Alcotest.fail "stale-phi bug not caught"
  | Error failures ->
      Alcotest.(check bool) "more than one failing pass" true
        (List.length failures >= 2);
      (match failures with
      | (p, _) :: _ ->
          Alcotest.check pass_t "original culprit first" Compilers.Optimizer.Simplify_cfg p
      | [] -> Alcotest.fail "empty");
      (* every recorded pass is from the pipeline, in order *)
      Alcotest.(check (list pass_t)) "downstream passes also flagged"
        [ Compilers.Optimizer.Simplify_cfg; Compilers.Optimizer.Dce ]
        (List.map fst failures)

(* ------------------------------------------------------------------ *)
(* TV-aware harness: the pipeline refines miscompilation signatures *)

let test_pipeline_tv_detects_on_non_executing_target () =
  (* a tooling-style target that cannot render but hosts the inline bug:
     only the TV oracle can see the miscompilation *)
  let t =
    {
      Compilers.Target.name = "tv-tooling";
      version = "-";
      gpu = Compilers.Target.Tooling;
      pipeline = std;
      opt_flags = { clean with Compilers.Passes.bug_inline_swaps_const_args = true };
      crash_bug_ids = [];
      miscompile_bug_ids = [];
      executes = false;
    }
  in
  let m = inline_swap_trigger () in
  let engine = Harness.Engine.create () in
  (match
     Harness.Pipeline.run_variant ~tv:true engine t ~ref_name:"trigger"
       ~original:m ~variant:m Corpus.default_input
   with
  | Some d ->
      Alcotest.(check string) "pass-granular signature"
        "miscompile:tv-tooling:Inline" d.Harness.Pipeline.signature;
      Alcotest.(check bool) "is a miscompilation" true
        (Harness.Signature.is_miscompilation d.Harness.Pipeline.signature);
      Alcotest.(check (option string)) "blamed pass" (Some "Inline")
        (Harness.Signature.blamed_pass d.Harness.Pipeline.signature)
  | None -> Alcotest.fail "TV oracle missed the miscompilation");
  (* without TV the non-executing target reports nothing *)
  Alcotest.(check bool) "invisible without TV" true
    (Harness.Pipeline.run_variant engine t ~ref_name:"trigger" ~original:m
       ~variant:m Corpus.default_input
    = None);
  (* the TV interestingness test holds on the very module that witnessed it *)
  let detection =
    { Harness.Pipeline.signature = "miscompile:tv-tooling:Inline"; via_opt = false }
  in
  Alcotest.(check bool) "interesting on the witness" true
    (Harness.Pipeline.interestingness engine t ~ref_name:"trigger" ~original:m
       ~detection Corpus.default_input m Corpus.default_input);
  Alcotest.(check bool) "not interesting on a clean module" false
    (Harness.Pipeline.interestingness engine t ~ref_name:"trigger" ~original:m
       ~detection Corpus.default_input (sub_zero_trigger ()) Corpus.default_input)

let test_signature_helpers () =
  let t = List.hd Compilers.Target.all in
  let s =
    Harness.Signature.miscompile ~target:t
      ~pass:(Some Compilers.Optimizer.Const_fold)
  in
  Alcotest.(check string) "pass signature"
    ("miscompile:" ^ t.Compilers.Target.name ^ ":Const_fold") s;
  Alcotest.(check bool) "prefix-aware is_miscompilation" true
    (Harness.Signature.is_miscompilation s);
  Alcotest.(check bool) "legacy signature still recognised" true
    (Harness.Signature.is_miscompilation Harness.Signature.miscompilation);
  Alcotest.(check string) "ground-truth bug id" "miscompilation"
    (Harness.Signature.bug_id_of_signature s);
  let backend = Harness.Signature.miscompile ~target:t ~pass:None in
  Alcotest.(check (option string)) "backend blame has no pass" None
    (Harness.Signature.blamed_pass backend);
  Alcotest.(check (option string)) "pass blame extracted" (Some "Const_fold")
    (Harness.Signature.blamed_pass s)

(* ------------------------------------------------------------------ *)
(* QCheck: soundness on the adversarial corner — check_pass never
   mismatches when the two modules are Interp-equivalent on the grid *)

let tv_soundness_prop seed =
  let m = Generator.generate (Tbct.Rng.make seed) in
  let input = Generator.default_input in
  let _final =
    List.fold_left
      (fun before p ->
        let after = Compilers.Optimizer.run_pass clean before p in
        (match Compilers.Tv.check_pass before after with
        | Compilers.Tv.Mismatch w ->
            (* only a genuine semantic divergence excuses a mismatch; a
               clean pass is Interp-equivalent, so this is a false
               positive *)
            let equivalent =
              match (Interp.render before input, Interp.render after input) with
              | Ok a, Ok b -> Image.equal a b
              | _ -> false
            in
            if equivalent then
              QCheck.Test.fail_reportf
                "seed %d: false positive in %s (%s slot): %s vs %s" seed
                (Compilers.Optimizer.show_pass_name p)
                w.Compilers.Tv.w_slot w.Compilers.Tv.w_before
                w.Compilers.Tv.w_after
        | Compilers.Tv.Equivalent | Compilers.Tv.Abstained _ ->
            (* abstention is always allowed; only Mismatch needs excusing *)
            ());
        after)
      m std
  in
  true

let qcheck_tv_sound =
  QCheck.Test.make ~count:40 ~name:"check_pass sound vs Interp on clean passes"
    QCheck.(int_bound 1_000_000)
    tv_soundness_prop

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "tv"
    [
      ( "clean",
        [
          Alcotest.test_case "corpus validates through -O" `Quick test_corpus_clean;
          Alcotest.test_case "110 generated modules validate" `Slow test_generated_clean;
          Alcotest.test_case "fuzzed variants validate" `Slow test_fuzzed_clean;
        ] );
      ( "blame",
        [
          Alcotest.test_case "fold_sub_zero blamed on Const_fold" `Quick test_blames_const_fold;
          Alcotest.test_case "inline swap blamed on Inline" `Quick test_blames_inline;
          Alcotest.test_case "mismatch witness names slot and values" `Quick test_witness_shape;
          Alcotest.test_case "every target's bugs attribute to the documented pass" `Quick
            test_target_attribution;
          Alcotest.test_case "run_checked reports all failing passes" `Quick
            test_run_checked_reports_all_failures;
        ] );
      ( "harness",
        [
          Alcotest.test_case "TV oracle detects on non-executing targets" `Quick
            test_pipeline_tv_detects_on_non_executing_target;
          Alcotest.test_case "signature refinement helpers" `Quick test_signature_helpers;
        ] );
      ("soundness", [ QCheck_alcotest.to_alcotest qcheck_tv_sound ]);
    ]
