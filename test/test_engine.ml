(* Tests for the execution engine: content digests, the content-addressed
   run cache, and domain-parallel campaigns.

   The load-bearing properties are (a) memoization is invisible — cached
   and uncached campaigns produce identical hit lists — and (b) the
   domain-parallel campaign merge is bit-identical to the sequential
   order. *)

let scale = { Harness.Experiments.default_scale with Harness.Experiments.seeds = 30 }
let tool = Harness.Pipeline.Spirv_fuzz_tool

(* the sequential, fresh-engine baseline every other campaign is compared to *)
let baseline_hits = lazy (Harness.Experiments.run_campaign ~scale tool)

let check_same_hits msg expected actual =
  Alcotest.(check int) (msg ^ ": count") (List.length expected) (List.length actual);
  Alcotest.(check bool) (msg ^ ": identical hits in identical order") true
    (expected = actual)

(* ------------------------------------------------------------------ *)
(* Digests *)

let test_digest_asm_roundtrip () =
  List.iter
    (fun (name, m) ->
      let d = Spirv_ir.Digest.of_module m in
      match Spirv_ir.Asm.of_string_result (Spirv_ir.Disasm.to_string m) with
      | Error e -> Alcotest.failf "%s does not re-assemble: %s" name e
      | Ok m' ->
          Alcotest.(check string)
            (name ^ ": digest stable across disasm/asm round trip") d
            (Spirv_ir.Digest.of_module m'))
    (Lazy.force Corpus.lowered_references)

let test_digest_distinguishes_modules () =
  let refs = Lazy.force Corpus.lowered_references in
  let digests = List.map (fun (_, m) -> Spirv_ir.Digest.of_module m) refs in
  Alcotest.(check int) "corpus references all digest differently"
    (List.length refs)
    (List.length (List.sort_uniq String.compare digests))

let test_digest_input () =
  let i1 = Spirv_ir.Input.make ~width:8 ~height:8 [] in
  let i2 = Spirv_ir.Input.make ~width:8 ~height:8 [] in
  let i3 = Spirv_ir.Input.make ~width:4 ~height:8 [] in
  Alcotest.(check string) "equal inputs digest equally"
    (Spirv_ir.Digest.of_input i1) (Spirv_ir.Digest.of_input i2);
  Alcotest.(check bool) "different grids digest differently" false
    (String.equal (Spirv_ir.Digest.of_input i1) (Spirv_ir.Digest.of_input i3))

(* ------------------------------------------------------------------ *)
(* Engine cache semantics *)

let test_engine_memoizes () =
  let engine = Harness.Engine.create () in
  let m = List.assoc "gradient" (Lazy.force Corpus.lowered_references) in
  let t = Compilers.Target.swiftshader in
  let r1 = Harness.Engine.run engine t m Corpus.default_input in
  let r2 = Harness.Engine.run engine t m Corpus.default_input in
  Alcotest.(check bool) "memoized result identical" true (r1 = r2);
  let s = Harness.Engine.stats engine in
  Alcotest.(check int) "one execution" 1 s.Harness.Engine.runs_executed;
  Alcotest.(check int) "one memo hit" 1 s.Harness.Engine.cache_hits;
  Harness.Engine.reset engine;
  let s' = Harness.Engine.stats engine in
  Alcotest.(check int) "reset clears counters" 0 s'.Harness.Engine.runs_executed

let test_cached_campaign_identical () =
  let expected = Lazy.force baseline_hits in
  let engine = Harness.Engine.create () in
  let cold = Harness.Experiments.run_campaign ~scale ~engine tool in
  check_same_hits "cold shared-engine campaign" expected cold;
  let after_cold = Harness.Engine.stats engine in
  Alcotest.(check bool) "campaign saves runs via the baseline cache" true
    (after_cold.Harness.Engine.runs_saved > 0);
  (* rerun on the warm engine: served from cache, still identical *)
  let warm = Harness.Experiments.run_campaign ~scale ~engine tool in
  check_same_hits "warm-cache campaign" expected warm;
  let after_warm = Harness.Engine.stats engine in
  Alcotest.(check bool) "warm rerun hits the content-addressed memo" true
    (after_warm.Harness.Engine.cache_hits > after_cold.Harness.Engine.cache_hits);
  Alcotest.(check int) "warm rerun executes nothing new"
    after_cold.Harness.Engine.runs_executed
    after_warm.Harness.Engine.runs_executed

let test_reduction_hits_cache () =
  match
    List.find_opt
      (fun (h : Harness.Experiments.hit) ->
        not
          (Harness.Signature.is_miscompilation
             h.Harness.Experiments.hit_detection.Harness.Pipeline.signature))
      (Lazy.force baseline_hits)
  with
  | None -> Alcotest.fail "no crash hit in the campaign"
  | Some h -> (
      let engine = Harness.Engine.create () in
      match Harness.Experiments.reduce_hit engine h with
      | None -> Alcotest.fail "hit did not reproduce"
      | Some _ ->
          let s = Harness.Engine.stats engine in
          Alcotest.(check bool)
            "ddmin's replayed prefixes hit the content-addressed cache" true
            (s.Harness.Engine.cache_hits > 0);
          Alcotest.(check bool) "baseline cache used during reduction" true
            (s.Harness.Engine.baseline_hits > 0))

(* ------------------------------------------------------------------ *)
(* Domain-parallel campaigns *)

let test_parallel_campaign domains () =
  let expected = Lazy.force baseline_hits in
  let par = Harness.Experiments.run_campaign ~scale ~domains tool in
  check_same_hits (Printf.sprintf "%d-domain campaign" domains) expected par

let test_parallel_shared_engine () =
  (* domains share one mutex-guarded engine and the merge stays canonical *)
  let expected = Lazy.force baseline_hits in
  let engine = Harness.Engine.create () in
  let par = Harness.Experiments.run_campaign ~scale ~domains:3 ~engine tool in
  check_same_hits "3-domain shared-engine campaign" expected par;
  let s = Harness.Engine.stats engine in
  Alcotest.(check bool) "parallel campaign executed runs" true
    (s.Harness.Engine.runs_executed > 0);
  (* per-domain accounting: the breakdown partitions runs_executed, and a
     3-worker pool really did spread executions over several domains *)
  Alcotest.(check int) "per-domain runs sum to runs_executed"
    s.Harness.Engine.runs_executed
    (List.fold_left (fun acc (_, n) -> acc + n) 0
       s.Harness.Engine.per_domain_runs);
  Alcotest.(check bool) "more than one domain executed runs" true
    (List.length s.Harness.Engine.per_domain_runs > 1)

let test_domains_exceed_seeds () =
  (* regression: --domains beyond the seed count used to spawn domains
     with empty ranges; the pool clamp must keep the hit list identical *)
  let small = { scale with Harness.Experiments.seeds = 5 } in
  let expected = Harness.Experiments.run_campaign ~scale:small tool in
  let par = Harness.Experiments.run_campaign ~scale:small ~domains:16 tool in
  check_same_hits "16 domains over 5 seeds" expected par

let test_caller_pool_both_phases () =
  (* one caller-owned pool serving campaign then reduction, as the CLI
     does; both phases must match their sequential runs *)
  let expected = Lazy.force baseline_hits in
  let seq_engine = Harness.Engine.create () in
  let eligible =
    Harness.Experiments.cap_hits
      ~per_signature:scale.Harness.Experiments.max_reductions_per_signature
      expected
  in
  let seq_outcomes = Harness.Experiments.reduce_hits seq_engine eligible in
  Harness.Pool.with_pool ~workers:4 (fun pool ->
      let engine = Harness.Engine.create () in
      let hits = Harness.Experiments.run_campaign ~scale ~pool ~engine tool in
      check_same_hits "campaign through a caller-owned pool" expected hits;
      let outcomes = Harness.Experiments.reduce_hits ~pool engine eligible in
      Alcotest.(check bool)
        "parallel reduction outcomes identical to sequential" true
        (outcomes = seq_outcomes));
  Alcotest.(check bool) "reduction outcomes non-trivial" true
    (List.exists Option.is_some seq_outcomes)

let test_parallel_reduce_hits workers () =
  let hits = Lazy.force baseline_hits in
  let eligible =
    Harness.Experiments.cap_hits
      ~per_signature:scale.Harness.Experiments.max_reductions_per_signature
      hits
  in
  let seq = Harness.Experiments.reduce_hits (Harness.Engine.create ()) eligible in
  Harness.Pool.with_pool ~workers (fun pool ->
      let par =
        Harness.Experiments.reduce_hits ~pool (Harness.Engine.create ()) eligible
      in
      Alcotest.(check bool)
        (Printf.sprintf "%d-worker reduce_hits identical to sequential" workers)
        true (par = seq))

exception Hook_failure

let test_raising_on_seed_propagates () =
  (* a raising on_seed hook must surface from the parallel campaign (the
     pool drains, then re-raises) rather than deadlocking or vanishing *)
  match
    Harness.Experiments.run_campaign ~scale ~domains:3
      ~on_seed:(fun seed _ -> if seed = 7 then raise Hook_failure)
      tool
  with
  | _ -> Alcotest.fail "raising on_seed did not propagate"
  | exception Hook_failure -> ()

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "engine"
    [
      ( "digest",
        [
          Alcotest.test_case "stable across disasm/asm round trip" `Quick
            test_digest_asm_roundtrip;
          Alcotest.test_case "distinguishes corpus modules" `Quick
            test_digest_distinguishes_modules;
          Alcotest.test_case "input digests" `Quick test_digest_input;
        ] );
      ( "cache",
        [
          Alcotest.test_case "memoizes backend runs" `Quick test_engine_memoizes;
          Alcotest.test_case "cached campaign identical to uncached" `Slow
            test_cached_campaign_identical;
          Alcotest.test_case "reduction hits the cache" `Slow
            test_reduction_hits_cache;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "2 domains = sequential" `Slow
            (test_parallel_campaign 2);
          Alcotest.test_case "3 domains = sequential" `Slow
            (test_parallel_campaign 3);
          Alcotest.test_case "4 domains = sequential" `Slow
            (test_parallel_campaign 4);
          Alcotest.test_case "8 domains = sequential" `Slow
            (test_parallel_campaign 8);
          Alcotest.test_case "shared engine across domains" `Slow
            test_parallel_shared_engine;
          Alcotest.test_case "domains > seeds (clamped)" `Slow
            test_domains_exceed_seeds;
          Alcotest.test_case "one pool, both phases" `Slow
            test_caller_pool_both_phases;
          Alcotest.test_case "2-worker reduction = sequential" `Slow
            (test_parallel_reduce_hits 2);
          Alcotest.test_case "4-worker reduction = sequential" `Slow
            (test_parallel_reduce_hits 4);
          Alcotest.test_case "raising on_seed propagates" `Slow
            test_raising_on_seed_propagates;
        ] );
    ]
