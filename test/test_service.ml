(* Tests for the campaign service: the JSON wire codec, the request
   protocol, the persistent job store, and the fleet scheduler that
   multiplexes campaigns over one shared engine.

   The load-bearing properties: (a) both codecs round-trip exactly, so
   nothing is lost between client and daemon; (b) two concurrent jobs
   interleave progress fairly and the second earns cross-job memo hits
   from the first's executions; (c) a scheduler abandoned mid-campaign
   (the in-process stand-in for kill -9 — the journals are in the same
   state) is resumed by a fresh scheduler to a hit list bit-identical to
   an uninterrupted batch run. *)

module Json = Tbct_service.Json
module Protocol = Tbct_service.Protocol
module Scheduler = Tbct_service.Scheduler
module Jobs = Tbct_store.Jobs

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "tbct-test-service-%d-%d" (Unix.getpid ()) !counter)
    in
    let rec rm path =
      match (Unix.lstat path).Unix.st_kind with
      | Unix.S_DIR ->
          Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
          Unix.rmdir path
      | _ -> Sys.remove path
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
    in
    rm dir;
    dir

(* ------------------------------------------------------------------ *)
(* JSON codec *)

let json_gen =
  let open QCheck.Gen in
  (* any byte may appear in strings: control bytes get \u-escaped, high
     bytes pass through raw *)
  let str = string_size ~gen:char (0 -- 12) in
  sized (fun n ->
      fix
        (fun self n ->
          let base =
            oneof
              [
                return Json.Null;
                map (fun b -> Json.Bool b) bool;
                map (fun i -> Json.Int i) int;
                (* non-finite floats deliberately excluded: they encode as
                   null (documented lossy case) *)
                map
                  (fun f -> Json.Float (if Float.is_finite f then f else 0.0))
                  float;
                map (fun s -> Json.Str s) str;
              ]
          in
          if n <= 0 then base
          else
            oneof
              [
                base;
                map (fun l -> Json.List l) (list_size (0 -- 4) (self (n / 2)));
                map
                  (fun l -> Json.Obj l)
                  (list_size (0 -- 4) (pair str (self (n / 2))));
              ])
        n)

let test_json_roundtrip =
  QCheck.Test.make ~name:"json codec round-trips exactly" ~count:500
    (QCheck.make json_gen) (fun v ->
      match Json.of_string (Json.to_string v) with
      | Ok v' -> v = v'
      | Error _ -> false)

let test_json_single_line =
  QCheck.Test.make ~name:"json encoding never contains a raw newline"
    ~count:500 (QCheck.make json_gen) (fun v ->
      not (String.contains (Json.to_string v) '\n'))

let test_json_edges () =
  Alcotest.(check string)
    "escapes" "{\"a\\nb\":\"q\\\"\\\\\\t\"}"
    (Json.to_string (Json.Obj [ ("a\nb", Json.Str "q\"\\\t") ]));
  Alcotest.(check bool)
    "control bytes escape" true
    (Json.to_string (Json.Str "\x01") = "\"\\u0001\"");
  Alcotest.(check bool)
    "nan encodes as null" true
    (Json.to_string (Json.Float Float.nan) = "null");
  (match Json.of_string "  {\"x\" : [1, 2.5, true, null, \"\\u0041\"]} " with
  | Ok
      (Json.Obj
        [
          ( "x",
            Json.List
              [ Json.Int 1; Json.Float 2.5; Json.Bool true; Json.Null;
                Json.Str "A" ] );
        ]) -> ()
  | Ok v -> Alcotest.failf "unexpected parse: %s" (Json.to_string v)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Json.of_string "{} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match Json.of_string "{\"a\":" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated object accepted"

(* ------------------------------------------------------------------ *)
(* Protocol codec *)

let request_gen =
  let open QCheck.Gen in
  let str = string_size ~gen:printable (0 -- 10) in
  let spec =
    map
      (fun (tool, seeds, targets, weights, tv) ->
        {
          Protocol.sub_tool = tool;
          sub_seeds = seeds;
          sub_targets = targets;
          sub_weights = weights;
          sub_tv = tv;
        })
      (tup5
         (oneofl
            [
              Harness.Pipeline.Spirv_fuzz_tool;
              Harness.Pipeline.Spirv_fuzz_simple;
              Harness.Pipeline.Glsl_fuzz_tool;
            ])
         (1 -- 10_000)
         (list_size (0 -- 3) str)
         str bool)
  in
  oneof
    [
      return Protocol.Ping;
      map (fun s -> Protocol.Submit s) spec;
      map
        (fun id -> Protocol.Status (if id = "" then None else Some id))
        str;
      return Protocol.Jobs;
      map (fun id -> Protocol.Attach id) str;
      map (fun id -> Protocol.Hits id) str;
      map (fun id -> Protocol.Cancel id) str;
      return Protocol.Drain;
      return Protocol.Shutdown;
    ]

(* Status (Some "") encodes identically to Status None; the generator
   above never produces it, and real job ids are never empty *)
let test_protocol_roundtrip =
  QCheck.Test.make ~name:"protocol codec round-trips exactly" ~count:500
    (QCheck.make request_gen) (fun req ->
      match Protocol.parse_request (Protocol.encode_request req) with
      | Ok req' -> req = req'
      | Error _ -> false)

let test_protocol_errors () =
  (match Protocol.parse_request "not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  (match Protocol.parse_request "{\"cmd\":\"launch-missiles\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown command accepted");
  (match Protocol.parse_request "{\"cmd\":\"submit\",\"seeds\":0}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zero seeds accepted");
  match Protocol.parse_request "{\"cmd\":\"attach\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "attach without job accepted"

(* ------------------------------------------------------------------ *)
(* Job store *)

let record id seeds : Jobs.record =
  {
    Jobs.id;
    tool = "spirv-fuzz";
    seeds;
    targets = [ "SwiftShader"; "Mesa" ];
    weights = "control_flow=2";
    tv = false;
  }

let test_jobs_store_roundtrip () =
  let dir = fresh_dir () in
  let t = Jobs.open_ ~dir () in
  Alcotest.(check string) "first id" "job-1" (Jobs.fresh_id t);
  Jobs.add t (record "job-1" 10);
  Jobs.add t (record "job-2" 20);
  Jobs.set_state t ~id:"job-1" Jobs.Running;
  Jobs.set_state t ~id:"job-1" Jobs.Done;
  Jobs.set_state t ~id:"job-2" Jobs.Cancelled;
  (match Jobs.add t (record "job-1" 5) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate id accepted");
  Jobs.close t;
  (* a fresh daemon replays the same queue *)
  let t2 = Jobs.open_ ~dir () in
  (match Jobs.entries t2 with
  | [ (r1, Jobs.Done); (r2, Jobs.Cancelled) ] ->
      Alcotest.(check string) "order" "job-1" r1.Jobs.id;
      Alcotest.(check string) "order" "job-2" r2.Jobs.id;
      Alcotest.(check (list string)) "targets survive"
        [ "SwiftShader"; "Mesa" ] r1.Jobs.targets;
      Alcotest.(check string) "weights survive" "control_flow=2"
        r1.Jobs.weights
  | _ -> Alcotest.fail "replay mismatch");
  (* ids stay monotonic across restarts: no dead job's id is reused *)
  Alcotest.(check string) "monotonic id" "job-3" (Jobs.fresh_id t2);
  Jobs.close t2

let test_jobs_store_torn_tail () =
  let dir = fresh_dir () in
  let t = Jobs.open_ ~dir () in
  Jobs.add t (record "job-1" 10);
  Jobs.set_state t ~id:"job-1" Jobs.Running;
  Jobs.close t;
  (* chop bytes off the tail: the last record is torn, like kill -9
     mid-append *)
  let path = Filename.concat dir "jobs.log" in
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let all = really_input_string ic n in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (String.sub all 0 (n - 3));
  close_out oc;
  let t2 = Jobs.open_ ~dir () in
  (match Jobs.entries t2 with
  | [ (r, Jobs.Queued) ] ->
      (* the torn state record is dropped; the job survives as Queued *)
      Alcotest.(check string) "job survives" "job-1" r.Jobs.id
  | _ -> Alcotest.fail "torn-tail replay mismatch");
  (* and the truncated journal accepts new appends cleanly *)
  Jobs.set_state t2 ~id:"job-1" Jobs.Done;
  Jobs.close t2;
  let t3 = Jobs.open_ ~dir () in
  (match Jobs.find t3 ~id:"job-1" with
  | Some (_, Jobs.Done) -> ()
  | _ -> Alcotest.fail "post-truncation append lost");
  Jobs.close t3

(* ------------------------------------------------------------------ *)
(* Scheduler *)

let submit_spec ?(seeds = 8) () =
  {
    Protocol.sub_tool = Harness.Pipeline.Spirv_fuzz_tool;
    sub_seeds = seeds;
    sub_targets = [ "SwiftShader" ];
    sub_weights = "";
    sub_tv = false;
  }

let hit_lines hits = List.map Harness.Persist.hit_line hits

(* the reference: an uninterrupted plain campaign at the same parameters *)
let plain_campaign ~seeds =
  let scale =
    { Harness.Experiments.default_scale with Harness.Experiments.seeds }
  in
  Harness.Experiments.run_campaign ~scale
    ~targets:[ Compilers.Target.swiftshader ]
    ~engine:(Harness.Engine.create ())
    Harness.Pipeline.Spirv_fuzz_tool

let test_scheduler_fairness_and_sharing () =
  let root = fresh_dir () in
  Harness.Pool.with_pool ~workers:1 @@ fun pool ->
  let events = ref [] in
  let sched =
    Scheduler.create ~quantum:2 ~on_event:(fun e -> events := e :: !events)
      ~root ~pool ()
  in
  let j1 = Result.get_ok (Scheduler.submit sched (submit_spec ())) in
  let j2 = Result.get_ok (Scheduler.submit sched (submit_spec ())) in
  (* drive to completion, recording which job each slice advanced *)
  let trace = ref [] in
  let rec drive guard =
    if guard = 0 then Alcotest.fail "scheduler did not converge";
    match Scheduler.step sched with
    | `Idle -> ()
    | `Sliced j | `Finished j ->
        trace := Scheduler.id j :: !trace;
        drive (guard - 1)
    | `Halted j ->
        Alcotest.failf "job halted: %s"
          (Option.value ~default:"?" (Scheduler.last_error j))
  in
  drive 100;
  let trace = List.rev !trace in
  Alcotest.(check bool) "both jobs done" true
    (Scheduler.state j1 = Jobs.Done && Scheduler.state j2 = Jobs.Done);
  (* fairness: while both jobs were live, slices strictly alternated *)
  let both_live =
    (* both appear after this prefix position — trim the tail where only
       one job remained *)
    let last_of id =
      List.fold_left
        (fun (i, found) x -> (i + 1, if x = id then i else found))
        (0, -1) trace
      |> snd
    in
    let cutoff = min (last_of (Scheduler.id j1)) (last_of (Scheduler.id j2)) in
    List.filteri (fun i _ -> i <= cutoff) trace
  in
  Alcotest.(check bool) "interleaved progress" true
    (List.length both_live >= 4);
  List.iteri
    (fun i id ->
      if i > 0 && List.nth both_live (i - 1) = id then
        Alcotest.failf "round-robin violated at slice %d (%s twice)" i id)
    both_live;
  (* shared engine: the second job's identical seeds are served from the
     first job's executions *)
  Alcotest.(check bool) "cross-job memo hits" true
    (Scheduler.cross_job_memo_hits sched > 0);
  Alcotest.(check bool) "one job executed, one shared" true
    (Scheduler.runs_executed j1 + Scheduler.runs_executed j2 > 0);
  (* both hit lists are bit-identical to the uninterrupted batch run *)
  let reference = hit_lines (plain_campaign ~seeds:8) in
  List.iter
    (fun j ->
      match Scheduler.hits sched j with
      | Ok (hits, true) ->
          Alcotest.(check (list string)) "job hits = batch hits" reference
            (hit_lines hits)
      | Ok (_, false) -> Alcotest.fail "finished job reported incomplete"
      | Error e -> Alcotest.failf "hits failed: %s" e)
    [ j1; j2 ];
  (* the event stream saw every lifecycle stage *)
  let count p = List.length (List.filter p !events) in
  Alcotest.(check int) "2 submits" 2
    (count (function Scheduler.Submitted _ -> true | _ -> false));
  Alcotest.(check int) "2 finishes" 2
    (count (function Scheduler.Finished _ -> true | _ -> false));
  Alcotest.(check int) "16 seed events" 16
    (count (function Scheduler.Seed_done _ -> true | _ -> false));
  Scheduler.close sched

let test_scheduler_cancel_mid_campaign () =
  let root = fresh_dir () in
  Harness.Pool.with_pool ~workers:1 @@ fun pool ->
  let sched = Scheduler.create ~quantum:2 ~root ~pool () in
  let j = Result.get_ok (Scheduler.submit sched (submit_spec ~seeds:50 ())) in
  (match Scheduler.step sched with
  | `Sliced _ -> ()
  | _ -> Alcotest.fail "expected a slice");
  let done_before = Scheduler.seeds_done j in
  Alcotest.(check bool) "partial progress" true
    (done_before > 0 && done_before < 50);
  (match Scheduler.cancel sched ~id:(Scheduler.id j) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "cancel failed: %s" e);
  Alcotest.(check bool) "cancelled" true (Scheduler.state j = Jobs.Cancelled);
  Alcotest.(check bool) "no longer runnable" true
    (not (Scheduler.runnable sched));
  (match Scheduler.step sched with
  | `Idle -> ()
  | _ -> Alcotest.fail "cancelled job still scheduled");
  (* double-cancel and unknown ids are errors, not crashes *)
  (match Scheduler.cancel sched ~id:(Scheduler.id j) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double cancel accepted");
  (match Scheduler.cancel sched ~id:"job-999" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown id accepted");
  Scheduler.close sched;
  (* cancellation is durable: a restarted daemon agrees *)
  let sched2 = Scheduler.create ~root ~pool () in
  (match Scheduler.job sched2 ~id:(Scheduler.id j) with
  | Some j' ->
      Alcotest.(check bool) "cancel persisted" true
        (Scheduler.state j' = Jobs.Cancelled)
  | None -> Alcotest.fail "job lost across restart");
  Scheduler.close sched2

let test_scheduler_crash_resume_bit_identical () =
  let root = fresh_dir () in
  let seeds = 16 in
  Harness.Pool.with_pool ~workers:1 @@ fun pool ->
  (* first daemon: a few slices, then the process "dies" — the scheduler
     is simply abandoned, exactly the journal state kill -9 leaves *)
  let sched = Scheduler.create ~quantum:3 ~root ~pool () in
  let j = Result.get_ok (Scheduler.submit sched (submit_spec ~seeds ())) in
  (match Scheduler.step sched with
  | `Sliced _ -> ()
  | _ -> Alcotest.fail "expected a slice");
  (match Scheduler.step sched with
  | `Sliced _ -> ()
  | _ -> Alcotest.fail "expected a second slice");
  Alcotest.(check bool) "mid-campaign" true
    (Scheduler.seeds_done j > 0 && Scheduler.seeds_done j < seeds);
  (* second daemon on the same store: the job is still Running and
     resumes from its journal *)
  let sched2 = Scheduler.create ~quantum:3 ~root ~pool () in
  let j2 =
    match Scheduler.job sched2 ~id:(Scheduler.id j) with
    | Some j2 -> j2
    | None -> Alcotest.fail "interrupted job not restored"
  in
  Alcotest.(check bool) "restored as running" true
    (Scheduler.state j2 = Jobs.Running);
  let rec drive guard =
    if guard = 0 then Alcotest.fail "resume did not converge";
    match Scheduler.step sched2 with
    | `Finished _ -> ()
    | `Sliced _ -> drive (guard - 1)
    | `Idle -> Alcotest.fail "went idle before finishing"
    | `Halted j ->
        Alcotest.failf "job halted: %s"
          (Option.value ~default:"?" (Scheduler.last_error j))
  in
  drive 50;
  (match Scheduler.hits sched2 j2 with
  | Ok (hits, true) ->
      Alcotest.(check (list string)) "resumed = uninterrupted"
        (hit_lines (plain_campaign ~seeds))
        (hit_lines hits)
  | Ok (_, false) -> Alcotest.fail "resumed job incomplete"
  | Error e -> Alcotest.failf "hits failed: %s" e);
  Scheduler.close sched2

let test_scheduler_interrupt_checkpoints () =
  let root = fresh_dir () in
  Harness.Pool.with_pool ~workers:1 @@ fun pool ->
  let sched = Scheduler.create ~quantum:4 ~root ~pool () in
  let j = Result.get_ok (Scheduler.submit sched (submit_spec ~seeds:40 ())) in
  (match Scheduler.step sched with
  | `Sliced _ -> ()
  | _ -> Alcotest.fail "expected a slice");
  (* graceful shutdown: the flag stops the next slice's fresh seeds, and
     submissions are refused *)
  Scheduler.interrupt sched;
  (match Scheduler.submit sched (submit_spec ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "submit accepted during shutdown");
  let before = Scheduler.seeds_done j in
  (match Scheduler.step sched with
  | `Sliced _ -> ()
  | _ -> Alcotest.fail "expected a checkpoint slice");
  Alcotest.(check int) "no fresh seeds after interrupt" before
    (Scheduler.seeds_done j);
  Alcotest.(check bool) "still running (resumable)" true
    (Scheduler.state j = Jobs.Running);
  Scheduler.close sched

(* ------------------------------------------------------------------ *)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "service"
    [
      ( "json",
        qcheck [ test_json_roundtrip; test_json_single_line ]
        @ [ Alcotest.test_case "edge cases" `Quick test_json_edges ] );
      ( "protocol",
        qcheck [ test_protocol_roundtrip ]
        @ [ Alcotest.test_case "bad requests" `Quick test_protocol_errors ] );
      ( "jobs-store",
        [
          Alcotest.test_case "round trip + monotonic ids" `Quick
            test_jobs_store_roundtrip;
          Alcotest.test_case "torn tail recovery" `Quick
            test_jobs_store_torn_tail;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "fairness + cross-job sharing" `Slow
            test_scheduler_fairness_and_sharing;
          Alcotest.test_case "cancel mid-campaign" `Slow
            test_scheduler_cancel_mid_campaign;
          Alcotest.test_case "crash + resume bit-identical" `Slow
            test_scheduler_crash_resume_bit_identical;
          Alcotest.test_case "interrupt checkpoints" `Slow
            test_scheduler_interrupt_checkpoints;
        ] );
    ]
